"""Ensure the in-tree package is importable when the repo is not installed.

The environment has no network access and no `wheel` package, so
``pip install -e .`` cannot build an editable wheel.  Adding ``src/`` to
``sys.path`` here keeps ``pytest`` working either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
