#!/usr/bin/env python3
"""Design-space exploration over ResNet-18 accelerator configurations.

Instead of compiling one hand-picked configuration (see
``resnet18_dataflow.py``), this example sweeps the HIDA option space —
unroll-factor budget, external-memory tile size, fusion depth — across
worker processes, caches every QoR result by content hash, and reports the
Pareto frontier over (latency, DSP, BRAM).  Re-running the script is nearly
instant: every point replays from the cache.

Run with:  python examples/dse_resnet18.py [--workers N]
"""

import argparse

from repro.dse import DesignPoint, DesignSpace, explore
from repro.estimation import get_platform


def build_resnet_space() -> DesignSpace:
    """ResNet-18 on one VU9P SLR under a grid of optimization budgets.

    ``DesignPoint.for_workload`` resolves the workload through the
    :mod:`repro.workloads` registry, so swapping the swept model (or a
    parameterized variant like ``"resnet18@batch=4"``) is a one-string edit.
    """
    space = DesignSpace()
    for factor in (16, 64, 128):
        for tile in (0, 16, 32):
            for top_k in (0, 2):
                space.add(
                    DesignPoint.for_workload(
                        "resnet18",
                        platform="vu9p-slr",
                        max_parallel_factor=factor,
                        tile_size=tile,
                        top_k_fusion=top_k,
                    )
                )
    return space


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    args = parser.parse_args()

    space = build_resnet_space()
    print(f"exploring {len(space)} ResNet-18 design points with {args.workers} workers")
    result = explore(space, workers=args.workers)

    print()
    print(result.frontier_table())

    platform = get_platform("vu9p-slr")
    fitting = [r for r in result.frontier if r.get("fits")]
    print()
    print(
        f"{result.num_points} points in {result.elapsed_seconds:.2f}s, "
        f"{result.num_cached} from cache; "
        f"{len(fitting)}/{len(result.frontier)} frontier designs fit {platform.name}"
    )
    best = result.best_by("throughput", minimize=False)
    if best is not None:
        summary = best["summary"]
        print(
            f"fastest design: {best['label']} — "
            f"{summary['throughput']:.1f} images/s, "
            f"{summary['dsp']:.0f} DSP, {summary['bram']:.0f} BRAM"
        )


if __name__ == "__main__":
    main()
