#!/usr/bin/env python3
"""Compare DSE search strategies against the exhaustive frontier.

Enumerating a design space stops scaling long before ``--space full`` runs
out of points; the adaptive strategies in :mod:`repro.dse.search` find
near-optimal frontiers on a fraction of the evaluations.  This script runs
the exhaustive sweep once (establishing the true frontier and a shared
hypervolume reference), then gives every adaptive strategy 25 % of the
space as its evaluation budget and reports how much of the exhaustive
frontier's hypervolume each one recovers.

Everything is seeded and cache-backed: re-running the script replays from
the QoR cache, and a fixed ``--seed`` reproduces the exact same search
trajectory for any ``--workers`` count.

Run with:  python examples/dse_search_strategies.py [--workers N] [--seed S]
"""

import argparse

from repro.dse import (
    build_space,
    explore,
    hypervolume,
    hypervolume_reference,
    polybench_suite,
)
from repro.evaluation import print_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--kernel", default="2mm", help="PolyBench kernel to sweep (default: 2mm)"
    )
    args = parser.parse_args()

    suite = [s for s in polybench_suite() if s.name == args.kernel]
    if not suite:
        parser.error(f"unknown kernel {args.kernel!r}")
    space = build_space("full", suite=suite)
    budget = max(1, len(space) // 4)
    print(
        f"exploring {len(space)} {args.kernel} design points; "
        f"adaptive strategies get a budget of {budget} ({budget * 100 // len(space)}%)"
    )

    exhaustive = explore(space, workers=args.workers)
    scored = [r for r in exhaustive.records if "error" not in r]
    reference = hypervolume_reference(scored, exhaustive.objectives)
    full_hv = hypervolume(exhaustive.frontier, exhaustive.objectives, reference)

    rows = [
        [
            "exhaustive (full)",
            exhaustive.num_points,
            len(exhaustive.frontier),
            "100.0%",
            f"{exhaustive.elapsed_seconds:.2f}s",
        ]
    ]
    for strategy in ("random", "genetic", "anneal"):
        result = explore(
            space,
            workers=args.workers,
            strategy=strategy,
            budget=budget,
            seed=args.seed,
        )
        ratio = hypervolume(result.frontier, result.objectives, reference) / full_hv
        rows.append(
            [
                f"{strategy} (25% budget)",
                result.num_points,
                len(result.frontier),
                f"{100.0 * ratio:.1f}%",
                f"{result.elapsed_seconds:.2f}s",
            ]
        )

    print_table(
        ["strategy", "evaluations", "frontier", "hypervolume", "elapsed"],
        rows,
        title=f"Frontier quality vs evaluation budget ({args.kernel}, full space)",
    )
    print(
        "hypervolume is measured against the exhaustive run's reference point; "
        "re-run with another --seed to see different (still deterministic) "
        "trajectories"
    )


if __name__ == "__main__":
    main()
