#!/usr/bin/env python3
"""Quickstart: compile a small C++-style kernel with HIDA and inspect the result.

Builds the Listing-1 kernel from the paper, runs the full HIDA pipeline
(Functional construction, task fusion, Structural lowering, dataflow
optimization, IA+CA parallelization), prints the chosen design parameters,
the QoR estimate, and the generated HLS C++.

Run with:  python examples/quickstart.py
"""

from repro import Compiler, emit_hls_cpp
from repro.frontend.cpp import build_listing1
from repro.hida import collect_band_infos, collect_connections, connection_table
from repro.ir import print_op


def main() -> None:
    # 1. Build the input program (this is what Polygeist would produce from
    #    the paper's Listing 1 C++ code).
    module = build_listing1()
    print("=== Input affine-loop IR (excerpt) ===")
    print("\n".join(print_op(module).splitlines()[:20]))

    # 2. Compile with HIDA through the textual-pipeline front door.  The
    #    spec is the Figure-3 flow with task fusion and tiling dropped
    #    (equivalently: HidaOptions(fuse_tasks=False, tile_size=0)).
    compiler = Compiler.from_spec(
        "construct-dataflow,lower-linalg,lower-structural,"
        "eliminate-multi-producers,balance,parallelize{factor=32},estimate",
        platform="zu3eg",
    )
    print(f"\n=== Pipeline ===\n{compiler.spec_text()}  [{compiler.spec_hash()}]")
    result = compiler.run(module)

    # 3. Inspect the dataflow design HIDA produced.
    print("\n=== Dataflow schedule ===")
    schedule = result.schedules[0]
    for node in schedule.nodes:
        print(f"  node {node.label!r}: "
              f"{len(node.inputs)} inputs, {len(node.outputs)} outputs")
    for buffer in schedule.buffers:
        print(f"  buffer {buffer.result().name_hint!r}: "
              f"{buffer.memref_type}, partition {buffer.partition}, "
              f"ping-pong depth {buffer.depth}")

    print("\n=== Connection analysis (Table 4) ===")
    bands = collect_band_infos(schedule)
    for row in connection_table(collect_connections(schedule, bands)):
        print(f"  {row['source']} -> {row['target']} via {row['buffer']}: "
              f"permutation {row['s_to_t_permutation']}, "
              f"scaling {row['s_to_t_scaling']}")

    print("\n=== Chosen unroll factors (Table 5) ===")
    for label, factors in result.parallelization.unroll_factors.items():
        print(f"  {label}: {factors}")

    print("\n=== QoR estimate ===")
    for key, value in result.summary().items():
        print(f"  {key}: {value:.2f}" if isinstance(value, float) else f"  {key}: {value}")

    # 4. Emit HLS C++ for a downstream HLS tool.
    code = emit_hls_cpp(result.module)
    print("\n=== Generated HLS C++ (excerpt) ===")
    print("\n".join(code.splitlines()[:30]))


if __name__ == "__main__":
    main()
