#!/usr/bin/env python3
"""Write a custom loop kernel with the builder DSL and explore HIDA's options.

Shows the third entry path (besides the model zoo and PolyBench): a
hand-written kernel with three dataflow stages, compiled under the four
parallelization ablation modes of the paper (IA+CA / IA / CA / naive) and
with/without coarse-grained dataflow, so the effect of every HIDA
optimization is visible on a small example.

One ``@register_workload`` decorator makes the kernel a first-class
workload: after that it is addressable by name (``"blur-scale"``,
parameterized as ``"blur-scale@height=32,width=32"``) from the Compiler,
``python -m repro.compiler``, DSE spaces and the baselines — no other
module needs editing.

Run with:  python examples/custom_kernel_ablation.py
"""

from repro import Compiler
from repro.baselines import ablation_pipeline_spec, run_ablation_mode
from repro.evaluation import format_table
from repro.frontend.cpp import KernelBuilder
from repro.workloads import register_workload


@register_workload("blur-scale", kind="kernel", tags=("custom",))
def build_blur_then_scale(height: int = 64, width: int = 64):
    """A two-stage image pipeline: 3x3 mean blur followed by scaling."""
    kb = KernelBuilder("blur_scale")
    kb.add_input("image", (height, width))
    kb.add_output("out", (height - 2, width - 2))
    kb.add_local("blurred", (height - 2, width - 2))

    # Stage 1: 3x3 blur into an on-chip intermediate.
    with kb.loop_nest(("y", "x"), (height - 2, width - 2)) as (y, x):
        acc = kb.constant(0.0)
        for dy in range(3):
            for dx in range(3):
                acc = acc + kb.load("image", [y + dy, x + dx])
        kb.store("blurred", [y, x], acc * (1.0 / 9.0))

    # Stage 2: scale and clamp.
    with kb.loop_nest(("y", "x"), (height - 2, width - 2)) as (y, x):
        kb.store("out", [y, x], kb.maximum(kb.load("blurred", [y, x]) * 2.0, 0.0))
    return kb.finish()


def main() -> None:
    # Dataflow on vs off — one pipeline spec per variant, differing only in
    # the estimate stage's dataflow switch.
    rows = []
    for dataflow in (True, False):
        result = Compiler.from_spec(
            "construct-dataflow,fuse-tasks,lower-linalg,lower-structural,"
            "eliminate-multi-producers,balance,parallelize{factor=16},"
            f"estimate{{dataflow={int(dataflow)}}}",
            platform="zu3eg",
        ).run(workload="blur-scale")
        rows.append([
            "dataflow" if dataflow else "sequential",
            f"{result.throughput:.1f}",
            round(result.estimate.resources.dsp),
            round(result.estimate.resources.bram),
        ])
    print(format_table(
        ["Execution", "Throughput (frames/s)", "DSP", "BRAM"],
        rows,
        title="Coarse-grained dataflow on the custom kernel",
    ))

    # Parallelization ablation (Figure 11 style, on the custom kernel).
    # Every mode is a printed pipeline spec — show them before running.
    for mode in ("ia+ca", "ia", "ca", "naive"):
        print(f"  {mode:6s} = {ablation_pipeline_spec(mode, 16, tile_size=0)}")
    rows = []
    for mode in ("ia+ca", "ia", "ca", "naive"):
        outcome = run_ablation_mode(
            build_blur_then_scale(), mode, max_parallel_factor=16,
            platform="zu3eg", tile_size=0,
        )
        rows.append([
            mode,
            f"{outcome.throughput:.1f}",
            round(outcome.dsp),
            round(outcome.bram),
            outcome.misalignments,
        ])
    print(format_table(
        ["Mode", "Throughput (frames/s)", "DSP", "BRAM", "Misaligned"],
        rows,
        title="IA/CA parallelization ablation on the custom kernel",
    ))


if __name__ == "__main__":
    main()
