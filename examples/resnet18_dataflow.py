#!/usr/bin/env python3
"""Compile a PyTorch-style ResNet-18 into a dataflow accelerator with HIDA.

This example walks the DNN path of the paper's Figure 3: a model defined
with the nn-module frontend is traced to linalg-level IR, optimized by
HIDA-OPT into a hierarchical dataflow design for one VU9P SLR, and compared
against the ScaleHLS-style baseline under the same resource budget.

Run with:  python examples/resnet18_dataflow.py
"""

from repro import HidaCompiler, get_target, get_workload
from repro.baselines import compile_scalehls_baseline
from repro.estimation import dsp_efficiency, memory_reduction
from repro.frontend.nn import layer_summary


def main() -> None:
    platform = get_target("vu9p-slr").platform

    # 1. Resolve the workload from the registry and inspect the traced model.
    workload = get_workload("resnet18")
    module = workload.build_module()
    summary = layer_summary(module)
    total_macs = sum(row[3] for row in summary)
    print(f"ResNet-18: {len(summary)} layers, {total_macs / 1e9:.2f} GMACs per image")
    for name, label, shape, macs in summary[:6]:
        print(f"  {label:<28} {name:<26} out={shape} macs={macs:,}")
    print("  ...")

    # 2. Compile with HIDA at a parallel factor that fits the SLR.
    compiler = HidaCompiler()
    result = compiler.compile_model("resnet18", max_parallel_factor=128)
    resources = result.estimate.resources
    efficiency = dsp_efficiency(
        result.throughput, total_macs, resources.dsp, platform.clock_hz
    )
    print("\n=== HIDA design ===")
    print(f"  dataflow nodes       : {sum(len(s.nodes) for s in result.schedules)}")
    print(f"  balanced buffers     : {result.balance_report.buffers_deepened}")
    print(f"  throughput           : {result.throughput:.1f} images/s")
    print(f"  DSPs / BRAMs / kLUTs : {resources.dsp:.0f} / {resources.bram:.0f} / {resources.lut / 1000:.0f}")
    print(f"  DSP efficiency       : {efficiency * 100:.1f}%")
    print(f"  compile time         : {result.compile_seconds:.2f} s")

    # 3. Compare with the ScaleHLS-style baseline (resolved by name).
    baseline = compile_scalehls_baseline("resnet18", max_parallel_factor=32)
    print("\n=== ScaleHLS baseline ===")
    print(f"  throughput           : {baseline.throughput:.1f} images/s")
    print(f"  DSPs / BRAMs         : {baseline.estimate.resources.dsp:.0f} / "
          f"{baseline.estimate.resources.bram:.0f}")
    print(f"\nHIDA speedup: {result.throughput / baseline.throughput:.1f}x, "
          f"on-chip memory reduction: "
          f"{memory_reduction(baseline.estimate.resources.bram, resources.bram):.1f}x")


if __name__ == "__main__":
    main()
