#!/usr/bin/env python3
"""Multi-fidelity exploration: analytic estimates raced against simulation.

The analytic QoR model scores a design point in microseconds but assumes
loop bands stream element-wise and overlap perfectly inside every dataflow
node.  The dataflow simulator (:func:`repro.estimation.simulate_design`)
replays the final design frame by frame — bands execute atomically, nodes
pipeline internally at their band-chain interval, and channel capacities
apply back-pressure — which is slower but closer to cycle truth, and
routinely *reorders* near-tied designs.

This script sweeps one kernel twice: once at the base fidelity and once
with promotion racing (``fidelity="simulate"``), then prints where the two
frontiers disagree and how far the analytic scores drifted on every
promoted point.

Run with:  python examples/dse_multifidelity.py [--workers N] [--promote-top F]
"""

import argparse

from repro.dse import build_space, explore, polybench_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--kernel", default="2mm", help="PolyBench kernel to sweep (default: 2mm)"
    )
    parser.add_argument(
        "--promote-top",
        type=float,
        default=0.5,
        help="fraction of the sweep promoted to the simulator (default: 0.5)",
    )
    args = parser.parse_args()

    suite = [s for s in polybench_suite() if s.name == args.kernel]
    if not suite:
        parser.error(f"unknown kernel {args.kernel!r}")
    space = build_space("medium", suite=suite)

    estimate_only = explore(space, workers=args.workers)
    multi = explore(
        space,
        workers=args.workers,
        fidelity="simulate",
        promote_top=args.promote_top,
    )

    print(f"\n=== estimate-only frontier ({args.kernel}, medium space) ===")
    print(estimate_only.frontier_table())
    print(f"\n=== multi-fidelity frontier (promote top {args.promote_top:.0%}) ===")
    print(multi.frontier_table())
    print()
    print(multi.disagreement_table())

    estimate_keys = set(estimate_only.frontier_keys())
    multi_keys = set(multi.frontier_keys())
    entered = multi_keys - estimate_keys
    left = estimate_keys - multi_keys
    print(
        f"\nsimulation promoted {multi.num_promoted} point(s); "
        f"{len(entered)} design(s) entered the frontier and "
        f"{len(left)} left it once simulated records re-ranked the race"
    )


if __name__ == "__main__":
    main()
