"""repro.targets — the unified target registry (*for which hardware*).

The mirror of :mod:`repro.workloads`: every FPGA device of the paper's
evaluation is registered as a :class:`Target` wrapping the
:class:`~repro.estimation.platform.Platform` resource model, with aliases
(``vu9p`` -> ``vu9p-slr``), per-device metadata and did-you-mean errors::

    from repro.targets import get_target, list_targets

    list_targets()                  # ['pynq-z2', 'zu3eg', 'vu9p-slr']
    target = get_target("vu9p")     # alias-aware
    target.platform.dsps            # the Platform resource model

``repro.estimation.get_platform`` resolves through this registry, so every
platform lookup in the codebase shares the same aliases and error style.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple, Union

from .._naming import closest_names, unknown_name_message
from ..estimation.platform import PYNQ_Z2, VU9P_SLR, ZU3EG, Platform

__all__ = [
    "Target",
    "UnknownTargetError",
    "get_target",
    "iter_targets",
    "list_targets",
    "register_target",
    "target_names",
    "target_registry",
]


class UnknownTargetError(KeyError):
    """An unresolvable target/platform name, with closest-match suggestions."""

    def __init__(self, message: str, suggestions: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.message = message
        self.suggestions = list(suggestions)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.message


@dataclasses.dataclass(frozen=True)
class Target:
    """A registered hardware target: the resource model plus metadata."""

    platform: Platform
    aliases: Tuple[str, ...] = ()
    metadata: Mapping[str, object] = dataclasses.field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.platform.name

    @property
    def description(self) -> str:
        return str(self.metadata.get("description", ""))

    def summary(self) -> Dict[str, object]:
        """Flat JSON-safe description of the target (resources + aliases)."""
        return {
            "name": self.name,
            "aliases": list(self.aliases),
            "luts": self.platform.luts,
            "dsps": self.platform.dsps,
            "bram_18k": self.platform.bram_18k,
            "clock_mhz": self.platform.clock_mhz,
            "description": self.description,
        }

    def __repr__(self) -> str:
        return f"Target({self.name!r})"


_REGISTRY: Dict[str, Target] = {}
_ALIASES: Dict[str, str] = {}


def register_target(
    platform: Platform,
    aliases: Sequence[str] = (),
    replace: bool = False,
    **metadata: object,
) -> Target:
    """Register a platform resource model as a named target."""
    name = platform.name.lower()
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"target {name!r} is already registered; pass replace=True to override"
        )
    target = Target(platform=platform, aliases=tuple(a.lower() for a in aliases),
                    metadata=dict(metadata))
    _REGISTRY[name] = target
    for alias in target.aliases:
        existing = _ALIASES.get(alias)
        if existing is not None and existing != name and not replace:
            raise ValueError(f"target alias {alias!r} already points at {existing!r}")
        _ALIASES[alias] = name
    return target


def target_registry() -> Dict[str, Target]:
    """A snapshot of the registry (name -> target, registration order)."""
    return dict(_REGISTRY)


def get_target(name: Union[str, Target, Platform]) -> Target:
    """Resolve a target by name or alias with did-you-mean errors."""
    if isinstance(name, Target):
        return name
    if isinstance(name, Platform):
        registered = _REGISTRY.get(name.name.lower())
        return registered if registered is not None else Target(platform=name)
    key = name.lower().strip()
    key = _ALIASES.get(key, key)
    target = _REGISTRY.get(key)
    if target is None:
        candidates = target_names(include_aliases=True)
        raise UnknownTargetError(
            unknown_name_message("target platform", key, candidates),
            closest_names(key, candidates),
        )
    return target


def iter_targets() -> Iterator[Target]:
    return iter(_REGISTRY.values())


def list_targets() -> List[str]:
    """Registered target names, registration order."""
    return list(_REGISTRY)


def target_names(include_aliases: bool = False) -> List[str]:
    names = list(_REGISTRY)
    if include_aliases:
        names += sorted(_ALIASES)
    return names


# ---------------------------------------------------------------------------
# The paper's three evaluation devices.
# ---------------------------------------------------------------------------

register_target(
    PYNQ_Z2,
    aliases=("pynq", "zynq-7020", "z2"),
    vendor="AMD",
    description="PYNQ-Z2 (Zynq-7020) — the Section-2 LeNet case study board",
)
register_target(
    ZU3EG,
    aliases=("zu3", "ultra96"),
    vendor="AMD",
    description="Zynq UltraScale+ ZU3EG — the Table-7 PolyBench target",
)
register_target(
    VU9P_SLR,
    aliases=("vu9p", "u250-slr"),
    vendor="AMD",
    description="One SLR of a Virtex UltraScale+ VU9P — the Table-8 DNN target",
)
