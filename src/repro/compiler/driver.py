"""The ``Compiler`` front door: run a pipeline spec with observer hooks.

``Compiler.from_spec("construct-dataflow,...,estimate", platform="zu3eg")``
builds a stage list from the registry; ``.run(module)`` threads a
:class:`~repro.compiler.stages.CompilationState` through the stages and
returns the same :class:`~repro.hida.pipeline.CompileResult` the legacy
``compile_module`` produced, so every downstream consumer (baselines, DSE,
benchmark harnesses, the HLS emitter) works unchanged.

Observers (:class:`PipelineObserver`) receive per-stage begin/end events,
per-stage IR snapshots (:class:`SnapshotObserver`), wall-clock timings
(:class:`TimingObserver`) and structured diagnostics as they are emitted.

The legacy ``HidaOptions`` surface maps losslessly onto pipeline specs via
:func:`spec_from_options` / :func:`options_from_spec`; the canonical printed
form of that mapping is what the QoR cache hashes.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

from .. import obs
from ..estimation.platform import get_platform
from ..ir.builtin import ModuleOp
from ..ir.verifier import VerificationError, verify
from .ircache import IRSnapshotCache, workload_cache_key
from .spec import PipelineSpec, PipelineSpecError, parse_pipeline
from .stages import (
    CompilationStage,
    CompilationState,
    Diagnostic,
    build_stages,
)

__all__ = [
    "Compiler",
    "PipelineObserver",
    "TimingObserver",
    "TracingObserver",
    "SnapshotObserver",
    "DiagnosticsObserver",
    "DEFAULT_PIPELINE",
    "default_pipeline_spec",
    "spec_from_options",
    "options_from_spec",
]

#: The canonical Figure-3 pipeline with every optimization enabled.
DEFAULT_PIPELINE = (
    "construct-dataflow,fuse-tasks,lower-linalg,lower-structural,"
    "eliminate-multi-producers,balance,tile,parallelize,estimate"
)


def default_pipeline_spec() -> PipelineSpec:
    return parse_pipeline(DEFAULT_PIPELINE)


#: Key template for the :attr:`Compiler.ir_cache_stats` view (the values
#: live as ``ir_cache.*`` counters on :attr:`Compiler.metrics`).
_ZERO_IR_STATS = {
    "prefix_hits": 0,
    "stages_skipped": 0,
    "stages_run": 0,
    "frontend_traces": 0,
    "snapshots_stored": 0,
}


# ---------------------------------------------------------------------------
# Observers
# ---------------------------------------------------------------------------


class PipelineObserver:
    """Hook interface for watching a pipeline run; all methods are no-ops."""

    def on_pipeline_start(self, compiler: "Compiler", module: ModuleOp) -> None:
        pass

    def on_stage_start(self, stage: CompilationStage, state: CompilationState) -> None:
        pass

    def on_stage_end(
        self, stage: CompilationStage, state: CompilationState, seconds: float
    ) -> None:
        pass

    def on_diagnostic(self, diagnostic: Diagnostic) -> None:
        pass

    def on_pipeline_end(self, result) -> None:
        pass


class TimingObserver(PipelineObserver):
    """Collects per-stage wall-clock seconds keyed by *stage* name.

    Unlike ``CompileResult.stage_seconds`` (which buckets by the legacy
    timing keys), this keeps one entry per stage instance in run order —
    useful when a spec runs the same stage twice.
    """

    def __init__(self) -> None:
        self.timings: List[tuple] = []

    def on_stage_end(self, stage, state, seconds: float) -> None:
        self.timings.append((stage.name, seconds))

    def by_stage(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for name, seconds in self.timings:
            totals[name] = totals.get(name, 0.0) + seconds
        return totals


class TracingObserver(TimingObserver):
    """A :class:`TimingObserver` that also traces stages as obs spans.

    Each stage becomes a child span (category ``"stage"``) of the run's
    ``compile`` span on the live :mod:`repro.obs` session, and structured
    diagnostics mirror as instant events.  :meth:`Compiler.run` attaches one
    automatically whenever telemetry is enabled, so ``--trace`` needs no
    caller cooperation; with telemetry disabled it degrades to the plain
    timing behaviour (``obs.span`` hands out a shared no-op span).
    """

    def __init__(self) -> None:
        super().__init__()
        self._stage_span = None

    def on_stage_start(self, stage, state) -> None:
        self._stage_span = obs.span(stage.name, cat="stage")

    def on_stage_end(self, stage, state, seconds: float) -> None:
        super().on_stage_end(stage, state, seconds)
        span = self._stage_span
        if span is not None:
            span.set_attr(seconds=round(seconds, 6))
            span.finish()
            self._stage_span = None

    def on_diagnostic(self, diagnostic: Diagnostic) -> None:
        obs.event(
            "diagnostic",
            cat="pipeline",
            stage=diagnostic.stage,
            severity=diagnostic.severity,
            message=diagnostic.message,
        )


class SnapshotObserver(PipelineObserver):
    """Captures a printed-IR snapshot of the module after every stage."""

    def __init__(self, stages: Optional[Sequence[str]] = None) -> None:
        #: Restrict snapshots to these stage names (None = every stage).
        self.only = set(stages) if stages is not None else None
        self.snapshots: List[tuple] = []

    def on_stage_end(self, stage, state, seconds: float) -> None:
        if self.only is not None and stage.name not in self.only:
            return
        from ..ir.printer import print_op

        self.snapshots.append((stage.name, print_op(state.module)))


class DiagnosticsObserver(PipelineObserver):
    """Collects every structured diagnostic emitted during the run."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    def on_diagnostic(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)


# ---------------------------------------------------------------------------
# The Compiler
# ---------------------------------------------------------------------------


class Compiler:
    """A composed compilation pipeline bound to a target platform."""

    def __init__(
        self,
        stages: Sequence[CompilationStage],
        platform: str = "vu9p-slr",
        verify_each: bool = False,
        observers: Sequence[PipelineObserver] = (),
    ) -> None:
        self.stages: List[CompilationStage] = list(stages)
        self.platform = platform
        self.verify_each = verify_each
        self.observers: List[PipelineObserver] = list(observers)
        self._legacy_options = None
        #: Typed per-run metrics of the most recent :meth:`run` (the
        #: ``ir_cache.*`` counters back :attr:`ir_cache_stats`).  Lives on
        #: the compiler rather than :class:`CompileResult` so result records
        #: stay byte-identical with telemetry/caching on or off.
        self.metrics = obs.MetricsRegistry()
        #: Observer exceptions swallowed during the most recent :meth:`run`,
        #: as structured ``observer-error`` diagnostics.
        self.observer_errors: List[Diagnostic] = []
        self._run_observers: List[PipelineObserver] = self.observers

    # ------------------------------------------------------------- builders
    @classmethod
    def from_spec(
        cls,
        spec: Union[str, PipelineSpec],
        platform: str = "vu9p-slr",
        verify_each: bool = False,
        observers: Sequence[PipelineObserver] = (),
    ) -> "Compiler":
        """Build a compiler from a textual (or parsed) pipeline spec."""
        parsed = parse_pipeline(spec) if isinstance(spec, str) else spec
        return cls(
            build_stages(parsed),
            platform=platform,
            verify_each=verify_each,
            observers=observers,
        )

    @classmethod
    def from_options(
        cls, options, observers: Sequence[PipelineObserver] = ()
    ) -> "Compiler":
        """Build a compiler equivalent to legacy ``compile_module(options)``."""
        compiler = cls(
            _stages_from_options(options),
            platform=options.platform,
            verify_each=options.verify,
            observers=observers,
        )
        if options.fusion_patterns is not None:
            # Hand the live pattern instances through so custom
            # FusionPattern subclasses (which textual specs cannot name)
            # keep working exactly as they did pre-refactor.
            for stage in compiler.stages:
                if stage.name == "fuse-tasks":
                    stage._pattern_instances = list(options.fusion_patterns)
        return compiler

    # ----------------------------------------------------------------- spec
    def spec(self) -> PipelineSpec:
        """Canonical spec of this pipeline (defaults omitted, stable order)."""
        return PipelineSpec([stage.to_spec() for stage in self.stages])

    def spec_text(self) -> str:
        return self.spec().print()

    def spec_hash(self) -> str:
        return self.spec().spec_hash()

    def add_observer(self, observer: PipelineObserver) -> "Compiler":
        self.observers.append(observer)
        return self

    @property
    def ir_cache_stats(self) -> Dict[str, int]:
        """Incremental-compilation counters of the most recent :meth:`run`.

        A plain-dict view over the ``ir_cache.*`` counters of
        :attr:`metrics` (all zero when the run had no IR cache), kept as the
        stable public surface now that the counters live on a
        :class:`~repro.obs.MetricsRegistry`.
        """
        return {
            key: int(self.metrics.value(f"ir_cache.{key}"))
            for key in _ZERO_IR_STATS
        }

    def _emit_diagnostic(self, diagnostic: Diagnostic) -> None:
        self._dispatch("on_diagnostic", diagnostic)

    def _dispatch(self, hook: str, *args, _depth: int = 0) -> None:
        """Call ``hook`` on every active observer, isolating observer faults.

        An observer that raises must not abort the compilation it is merely
        watching: the exception is swallowed, recorded as a structured
        ``observer-error`` diagnostic (kept in :attr:`observer_errors` and
        fanned out through ``on_diagnostic``) and counted on the telemetry
        session.  ``_depth`` caps the recursion when an ``on_diagnostic``
        hook itself fails while reporting a failure.
        """
        for observer in self._run_observers:
            try:
                getattr(observer, hook)(*args)
            except Exception as error:
                if _depth >= 1:
                    continue
                diagnostic = Diagnostic(
                    stage="observer-error",
                    severity="warning",
                    message=(
                        f"{type(observer).__name__}.{hook} raised "
                        f"{type(error).__name__}: {error}"
                    ),
                    data={
                        "observer": type(observer).__name__,
                        "hook": hook,
                        "error": type(error).__name__,
                    },
                )
                self.observer_errors.append(diagnostic)
                obs.event(
                    "observer-error",
                    cat="pipeline",
                    observer=type(observer).__name__,
                    hook=hook,
                    error=type(error).__name__,
                )
                obs.inc("compiler.observer_errors")
                self._dispatch("on_diagnostic", diagnostic, _depth=_depth + 1)

    # -------------------------------------------------- incremental helpers
    def snapshot_boundaries(self) -> List[int]:
        """Stage counts ``i`` whose exit boundary is snapshot-reconstructible.

        A boundary after ``stages[:i]`` is usable only when *every* stage in
        that prefix declares :attr:`~CompilationStage.snapshot_safe` — one
        unsafe stage poisons all later boundaries, because its (module-
        external) results would be missing from any resumed state.
        """
        boundaries: List[int] = []
        for i, stage in enumerate(self.stages, start=1):
            if not stage.snapshot_safe:
                break
            boundaries.append(i)
        return boundaries

    def prefix_hashes(self) -> List[str]:
        """``prefix_hashes()[i]`` hashes the canonical spec of ``stages[:i]``."""
        specs = [stage.to_spec().print() for stage in self.stages]
        return [
            IRSnapshotCache.prefix_hash(",".join(specs[:i]))
            for i in range(len(specs) + 1)
        ]

    # ------------------------------------------------------------ execution
    def run(
        self,
        module: Optional[ModuleOp] = None,
        *,
        workload=None,
        ir_cache: Optional[IRSnapshotCache] = None,
        workload_key: Optional[str] = None,
    ):
        """Run every stage over ``module`` (modified in place).

        Instead of a pre-built module, ``workload`` accepts anything the
        :mod:`repro.workloads` registry resolves — a workload id such as
        ``"resnet18@batch=4"``, a bound :class:`~repro.workloads.Workload`
        handle or a :class:`~repro.hida.pipeline.WorkloadSpec` — and builds
        the module first (``Compiler.from_spec(...).run(workload="2mm")``).

        With an :class:`~repro.compiler.ircache.IRSnapshotCache`, the run
        first probes for the *longest* cached snapshot-safe stage prefix of
        this pipeline and, on a hit, rehydrates the compilation state from
        printed IR and resumes mid-pipeline — skipping the frontend trace
        entirely on the workload path.  On a miss it compiles normally and
        stores a snapshot at every snapshot-safe boundary it crosses.
        ``workload_key`` overrides the cache identity of the input (needed
        when passing a raw module that nevertheless has a stable identity);
        by default it derives from ``workload`` or, for raw modules, from
        the module's content fingerprint.  Counters for the run land in
        :attr:`ir_cache_stats`; results are bit-for-bit independent of the
        cache (snapshots self-verify at store time), with one observable
        difference: skipped stages emit no diagnostics and re-run no
        observers.

        Returns a :class:`~repro.hida.pipeline.CompileResult`.  Raises
        :class:`~repro.compiler.spec.PipelineSpecError` when the pipeline
        produced no QoR estimate (i.e. it lacks an ``estimate`` stage);
        partial-pipeline inspection is served by observers instead.
        """
        from ..hida.pipeline import CompileResult

        if workload is not None and module is not None:
            raise TypeError("pass either module or workload=..., not both")
        if workload is None and module is None:
            raise TypeError("Compiler.run() needs a module or workload=...")
        if module is not None and not isinstance(module, ModuleOp):
            # Convenience: run("2mm") / run(handle) resolve via the registry.
            workload, module = module, None

        self.metrics = obs.MetricsRegistry()
        self.observer_errors = []

        def count(name: str, amount: int = 1) -> None:
            # Per-run registry plus the live obs session (no-op if disabled).
            self.metrics.inc(name, amount)
            obs.inc(name, amount)

        observers = list(self.observers)
        if obs.enabled() and not any(
            isinstance(observer, TracingObserver) for observer in observers
        ):
            # `--trace` needs no caller cooperation: any run under a live
            # telemetry session gets per-stage spans attached automatically.
            observers.append(TracingObserver())
        self._run_observers = observers

        with obs.span(
            "compile", cat="pipeline", platform=self.platform, spec=self.spec_text()
        ) as run_span:
            if ir_cache is not None and workload_key is None:
                if workload is not None:
                    workload_key = workload_cache_key(workload)
                else:
                    # Raw modules have no registry identity; their content
                    # fingerprint still lets identical inputs share snapshots.
                    from ..ir.printer import fingerprint_op

                    workload_key = f"fp:{fingerprint_op(module)}"

            state: Optional[CompilationState] = None
            resume_index = 0
            boundaries = (
                self.snapshot_boundaries()
                if ir_cache is not None and workload_key is not None
                else []
            )
            hashes = self.prefix_hashes() if boundaries else []
            for i in reversed(boundaries):
                restored = ir_cache.load(workload_key, self.platform, hashes[i])
                if restored is None:
                    continue
                module, schedules, balance_report, misalignments = restored
                state = CompilationState(
                    module=module,
                    platform=get_platform(self.platform),
                    schedules=schedules,
                    balance_report=balance_report,
                    misalignments=misalignments,
                )
                resume_index = i
                count("ir_cache.prefix_hits")
                count("ir_cache.stages_skipped", i)
                obs.event(
                    "ircache.resume",
                    cat="cache",
                    skipped=i,
                    prefix=hashes[i][:12],
                )
                break

            if state is None:
                if module is None:
                    from ..workloads import as_module

                    with obs.span(
                        "frontend-trace", cat="frontend", workload=str(workload)[:80]
                    ):
                        module = as_module(workload)
                    count("ir_cache.frontend_traces")
                state = CompilationState(
                    module=module, platform=get_platform(self.platform)
                )
            state._sink = self._emit_diagnostic
            stage_seconds: Dict[str, float] = {}
            start = time.perf_counter()
            self._dispatch("on_pipeline_start", self, module)
            for index, stage in enumerate(self.stages):
                if index < resume_index:
                    continue  # resumed past this stage from a snapshot
                self._dispatch("on_stage_start", stage, state)
                stage_start = time.perf_counter()
                stage.run(state)
                elapsed = time.perf_counter() - stage_start
                key = stage.timing_key or stage.name
                stage_seconds[key] = stage_seconds.get(key, 0.0) + elapsed
                self._dispatch("on_stage_end", stage, state, elapsed)
                if self.verify_each:
                    with obs.span("verify", cat="stage", after=stage.name):
                        issues = verify(module, raise_on_error=False)
                    if issues:
                        # Surface every issue as a structured diagnostic
                        # before aborting, so observers (and the CLI) can
                        # report which stage corrupted what instead of a
                        # bare traceback.
                        for issue in issues:
                            state.emit(
                                "verify", issue, severity="error", after=stage.name
                            )
                        raise VerificationError(
                            f"IR verification failed after stage {stage.name!r}: "
                            f"{len(issues)} issue(s); first: {issues[0]}"
                        )
                count("ir_cache.stages_run")
                boundary = index + 1
                if (
                    boundary in boundaries
                    and boundary > resume_index
                    and ir_cache.store(
                        workload_key, self.platform, hashes[boundary], state
                    )
                ):
                    count("ir_cache.snapshots_stored")
            if state.estimate is None:
                raise PipelineSpecError(
                    f"pipeline {self.spec_text()!r} produced no QoR estimate; "
                    "append an 'estimate' stage (observers can inspect "
                    "partial runs)"
                )
            if self._legacy_options is None:
                self._legacy_options = _options_from_stages(
                    self.stages, platform=self.platform, verify=self.verify_each
                )
            result = CompileResult(
                module=module,
                schedules=state.schedules,
                estimate=state.estimate,
                parallelization=state.parallelization,
                balance_report=state.balance_report,
                options=self._legacy_options,
                compile_seconds=time.perf_counter() - start,
                stage_seconds=stage_seconds,
                misalignments=state.misalignments,
            )
            run_span.set_attr(compile_seconds=round(result.compile_seconds, 6))
            self._dispatch("on_pipeline_end", result)
        return result

    def run_workload(self, workload):
        """Resolve a workload (id, handle or spec) via the registry and run it."""
        return self.run(workload=workload)

    def __repr__(self) -> str:
        return f"Compiler({self.spec_text()!r}, platform={self.platform!r})"


# ---------------------------------------------------------------------------
# HidaOptions <-> pipeline spec bridge
# ---------------------------------------------------------------------------


def _stages_from_options(options) -> List[CompilationStage]:
    """Typed stage instances equivalent to legacy ``compile_module(options)``."""
    from ..hida.functional import fusion_pattern_name
    from .stages import get_stage_class

    def stage(name: str, **values) -> CompilationStage:
        return get_stage_class(name)(**values)

    stages: List[CompilationStage] = [stage("construct-dataflow")]
    if options.fuse_tasks:
        patterns = None
        if options.fusion_patterns is not None:
            patterns = [fusion_pattern_name(p) for p in options.fusion_patterns]
        stages.append(stage("fuse-tasks", patterns=patterns))
    stages.append(stage("lower-linalg"))
    stages.append(stage("lower-structural"))
    if options.eliminate_multi_producers:
        stages.append(stage("eliminate-multi-producers"))
    if options.balance_paths:
        stages.append(stage("balance", budget=options.on_chip_bit_budget))
    if options.tile_size > 0:
        stages.append(stage("tile", size=options.tile_size))
    stages.append(
        stage(
            "parallelize",
            factor=options.max_parallel_factor,
            ia=options.intensity_aware,
            ca=options.connection_aware,
            target_ii=options.target_ii,
        )
    )
    stages.append(stage("estimate", dataflow=options.enable_dataflow))
    return stages


def spec_from_options(options) -> PipelineSpec:
    """The pipeline spec equivalent to legacy ``compile_module(options)``.

    Boolean ablation flags map to stage presence (``fuse_tasks=False`` drops
    the ``fuse-tasks`` stage), scalar knobs map to stage options, and the
    result prints canonically (defaults omitted) — the form the QoR cache
    hashes.
    """
    return PipelineSpec([s.to_spec() for s in _stages_from_options(options)])


def _options_from_stages(
    stages: Sequence[CompilationStage], platform: str, verify: bool
):
    from ..hida.pipeline import HidaOptions

    present = {stage.name for stage in stages}
    options = HidaOptions(
        platform=platform,
        verify=verify,
        fuse_tasks="fuse-tasks" in present,
        eliminate_multi_producers="eliminate-multi-producers" in present,
        balance_paths="balance" in present,
        tile_size=0,
    )
    for stage in stages:
        if stage.name == "fuse-tasks":
            options.fusion_patterns = stage.resolved_patterns()
        elif stage.name == "balance":
            options.on_chip_bit_budget = stage.budget
        elif stage.name == "tile":
            options.tile_size = stage.size
        elif stage.name == "parallelize":
            options.max_parallel_factor = stage.factor
            options.intensity_aware = stage.ia
            options.connection_aware = stage.ca
            options.target_ii = stage.target_ii
        elif stage.name == "estimate":
            options.enable_dataflow = stage.dataflow
    return options


def options_from_spec(
    spec: Union[str, PipelineSpec], platform: str = "vu9p-slr", verify: bool = False
):
    """Best-effort legacy ``HidaOptions`` view of a pipeline spec.

    Stage presence/options fold back onto the boolean flags and scalar
    knobs; later duplicates win.  Used to populate ``CompileResult.options``
    so legacy consumers keep working; specs exercising compositions the flag
    surface cannot express (reordered or repeated stages) still compile —
    only this summary view is lossy.
    """
    parsed = parse_pipeline(spec) if isinstance(spec, str) else spec
    return _options_from_stages(build_stages(parsed), platform, verify)
