"""Textual pipeline specifications: parse, print, hash.

The compiler front door accepts MLIR-style textual pass pipelines::

    construct-dataflow,fuse-tasks{patterns=elementwise,init},lower-structural,
    balance,parallelize{ia=1,ca=1,target-ii=2},estimate

Grammar (whitespace around separators is ignored)::

    pipeline := stage ("," stage)*
    stage    := NAME ("{" options "}")?
    options  := option ("," option)*
    option   := KEY "=" TOKEN | TOKEN        # a bare TOKEN extends the
                                             # previous option's value list
    NAME/KEY/TOKEN := [A-Za-z0-9_.+-]+       # TOKEN may also be empty

The bare-token rule is what lets list-valued options stay comma separated
(``patterns=elementwise,init`` is one option with two values, because
``init`` carries no ``=``).  Parsing is strictly positional: every
:class:`PipelineSpecError` names the offending token and its character
offset so CLI users can point at the exact spot in a long spec.

``parse_pipeline`` / ``PipelineSpec.print`` round-trip: printing a parsed
spec and re-parsing it yields an equal spec.  Canonicalization (dropping
options that equal their stage defaults) happens one layer up, in
:mod:`repro.compiler.driver`, where the typed stage declarations live.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterator, List, Tuple

__all__ = [
    "PipelineSpecError",
    "StageSpec",
    "PipelineSpec",
    "parse_pipeline",
]

#: Characters allowed in stage names, option keys and option value tokens.
_TOKEN_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.+-"
)


class PipelineSpecError(ValueError):
    """A malformed pipeline spec; ``offset`` locates the problem."""

    def __init__(self, message: str, offset: int = -1) -> None:
        if offset >= 0:
            message = f"{message} (at offset {offset})"
        super().__init__(message)
        self.offset = offset


@dataclasses.dataclass
class StageSpec:
    """One ``name{key=value,...}`` element of a pipeline spec.

    ``options`` maps each key to its list of value tokens (one entry per
    comma-separated token; scalar options are single-element lists).
    ``offset`` and ``option_offsets`` record source positions for
    diagnostics and are ignored by equality.
    """

    name: str
    options: Dict[str, List[str]] = dataclasses.field(default_factory=dict)
    offset: int = dataclasses.field(default=-1, compare=False)
    option_offsets: Dict[str, int] = dataclasses.field(
        default_factory=dict, compare=False
    )

    def print(self) -> str:
        if not self.options:
            return self.name
        rendered = ",".join(
            f"{key}={','.join(values)}" for key, values in self.options.items()
        )
        return f"{self.name}{{{rendered}}}"

    def __str__(self) -> str:
        return self.print()


@dataclasses.dataclass
class PipelineSpec:
    """An ordered sequence of stage specs."""

    stages: List[StageSpec] = dataclasses.field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "PipelineSpec":
        return parse_pipeline(text)

    def print(self) -> str:
        return ",".join(stage.print() for stage in self.stages)

    def spec_hash(self) -> str:
        """Stable content hash of the printed form (QoR-cache friendly)."""
        return hashlib.sha256(self.print().encode("utf-8")).hexdigest()[:16]

    def __str__(self) -> str:
        return self.print()

    def __iter__(self) -> Iterator[StageSpec]:
        return iter(self.stages)

    def __len__(self) -> int:
        return len(self.stages)


class _Scanner:
    """Character scanner with offset tracking over a spec string."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def token(self) -> Tuple[str, int]:
        """Consume a (possibly empty) token; returns (token, start offset)."""
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _TOKEN_CHARS:
            self.pos += 1
        token = self.text[start : self.pos]
        self.skip_ws()
        return token, start


def _parse_options(scanner: _Scanner, stage: StageSpec) -> None:
    """Parse ``{...}`` with the bare-token list continuation rule."""
    open_offset = scanner.pos
    scanner.pos += 1  # consume "{"
    current_key = None
    while True:
        token, offset = scanner.token()
        if scanner.peek() == "=":
            scanner.pos += 1  # consume "="
            if not token:
                raise PipelineSpecError(
                    f"empty option name in stage {stage.name!r}", offset
                )
            if token in stage.options:
                raise PipelineSpecError(
                    f"duplicate option {token!r} in stage {stage.name!r}", offset
                )
            current_key = token
            value, _ = scanner.token()
            stage.options[current_key] = [value]
            stage.option_offsets[current_key] = offset
        elif token:
            if current_key is None:
                raise PipelineSpecError(
                    f"bare value {token!r} in stage {stage.name!r} "
                    "before any 'key=value' option",
                    offset,
                )
            stage.options[current_key].append(token)
        delim = scanner.peek()
        if delim == ",":
            scanner.pos += 1
            continue
        if delim == "}":
            scanner.pos += 1
            return
        if not delim:
            raise PipelineSpecError(
                f"unterminated '{{' of stage {stage.name!r}", open_offset
            )
        raise PipelineSpecError(
            f"unexpected character {delim!r} in options of stage {stage.name!r}",
            scanner.pos,
        )


def parse_pipeline(text: str) -> PipelineSpec:
    """Parse a textual pipeline spec into a :class:`PipelineSpec`.

    Raises :class:`PipelineSpecError` naming the bad token and its offset on
    any syntax problem.  Stage and option *names* are not validated here —
    the driver checks them against the stage registry so the error can list
    what is available.
    """
    scanner = _Scanner(text)
    spec = PipelineSpec()
    scanner.skip_ws()
    if scanner.eof():
        raise PipelineSpecError("empty pipeline spec")
    while True:
        name, offset = scanner.token()
        if not name:
            raise PipelineSpecError(
                f"expected a stage name, found {scanner.peek()!r}", scanner.pos
            )
        stage = StageSpec(name=name, offset=offset)
        if scanner.peek() == "{":
            _parse_options(scanner, stage)
            scanner.skip_ws()
        spec.stages.append(stage)
        if scanner.eof():
            return spec
        if scanner.peek() != ",":
            raise PipelineSpecError(
                f"expected ',' between stages, found {scanner.peek()!r}",
                scanner.pos,
            )
        scanner.pos += 1
        scanner.skip_ws()
        if scanner.eof():
            raise PipelineSpecError("trailing ',' at end of pipeline spec", scanner.pos - 1)
