"""Compilation stages: typed options, a global registry, and the Figure-3 set.

Every phase of the paper's Figure-3 flow is a :class:`CompilationStage`
subclass registered by name.  A stage declares its options up front
(:class:`StageOption`), so the textual spec layer can coerce and validate
``{key=value}`` tokens with errors that name the bad token and its offset,
and the printer can emit canonical specs (options equal to their defaults
are omitted).

Stages mutate a shared :class:`CompilationState` in place.  They hold no
references to each other: composition order is entirely the pipeline
spec's business, which is what makes ablations (drop a stage) and DSE over
pipeline composition (permute/parametrize stages) serializable one-liners.

``timing_key`` maps each stage onto the legacy ``CompileResult.stage_seconds``
buckets of the monolithic ``compile_module`` (several structural-optimization
stages share the historical ``dataflow-opt`` bucket), keeping result layouts
byte-compatible across the refactor.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, ClassVar, Dict, List, Optional, Tuple, Type

from ..dialects import linalg
from ..dialects.dataflow import ScheduleOp
from ..estimation.platform import Platform
from ..estimation.qor import DesignEstimate, QoREstimator
from ..hida.dataflow_opt import (
    BalanceReport,
    balance_data_paths,
    eliminate_multiple_producers,
)
from ..hida.functional import (
    construct_functional_dataflow,
    fuse_dataflow_tasks,
    fusion_patterns_by_name,
)
from ..hida.parallelize import (
    ParallelizationOptions,
    ParallelizationResult,
    count_misalignments,
    parallelize_function_bands,
    parallelize_schedule,
)
from ..hida.structural import lower_to_structural_dataflow
from ..ir.builtin import ModuleOp
from ..transforms.canonicalize import eliminate_dead_code
from ..transforms.linalg_to_affine import lower_linalg_to_affine
from .spec import PipelineSpecError, StageSpec

__all__ = [
    "StageOption",
    "CompilationStage",
    "CompilationState",
    "Diagnostic",
    "register_stage",
    "get_stage_class",
    "available_stages",
    "stage_registry",
]

#: Default on-chip buffer budget in bits (mirrors ``HidaOptions``).
_DEFAULT_BIT_BUDGET = 4 * 1024 * 1024 * 8


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One structured diagnostic emitted by a stage during a run."""

    stage: str
    severity: str  # "note" | "warning" | "error"
    message: str
    data: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.severity}] {self.stage}: {self.message}"


@dataclasses.dataclass
class CompilationState:
    """Everything a pipeline run accumulates while flowing through stages."""

    module: ModuleOp
    platform: Platform
    schedules: List[ScheduleOp] = dataclasses.field(default_factory=list)
    parallelization: ParallelizationResult = dataclasses.field(
        default_factory=ParallelizationResult
    )
    balance_report: BalanceReport = dataclasses.field(default_factory=BalanceReport)
    misalignments: int = 0
    estimate: Optional[DesignEstimate] = None
    diagnostics: List[Diagnostic] = dataclasses.field(default_factory=list)
    #: Rolling translation-validation reference (set by the ``validate``
    #: stage; see :mod:`repro.analysis.tv`).  Not serialized into IR
    #: snapshots — a warm resume simply re-baselines at its first boundary.
    tv_baseline: Optional[object] = None
    #: Observer fan-out installed by the driver; stages call :meth:`emit`.
    _sink: Optional[Callable[[Diagnostic], None]] = None

    def emit(
        self, stage: str, message: str, severity: str = "note", **data
    ) -> Diagnostic:
        diagnostic = Diagnostic(stage=stage, severity=severity, message=message, data=data)
        self.diagnostics.append(diagnostic)
        if self._sink is not None:
            self._sink(diagnostic)
        return diagnostic


@dataclasses.dataclass(frozen=True)
class StageOption:
    """Typed declaration of one stage option.

    ``kind`` is ``int``, ``bool``, ``str`` or ``list`` (list of string
    tokens).  Spec values arrive as token lists from the parser and are
    coerced here; Python callers pass native values which are validated.
    """

    name: str
    kind: type
    default: object
    help: str = ""

    @property
    def attr(self) -> str:
        return self.name.replace("-", "_")

    # -------------------------------------------------------------- coercion
    def coerce_tokens(self, tokens: List[str], offset: int) -> object:
        if self.kind is list:
            return [token for token in tokens if token]
        if len(tokens) != 1:
            raise PipelineSpecError(
                f"option {self.name!r} takes a single value, got {tokens!r}", offset
            )
        token = tokens[0]
        if self.kind is bool:
            lowered = token.lower()
            if lowered in ("1", "true", "yes"):
                return True
            if lowered in ("0", "false", "no"):
                return False
            raise PipelineSpecError(
                f"option {self.name!r} expects a boolean (0/1/true/false), "
                f"got {token!r}",
                offset,
            )
        if self.kind is int:
            try:
                return int(token)
            except ValueError:
                raise PipelineSpecError(
                    f"option {self.name!r} expects an integer, got {token!r}", offset
                ) from None
        return token

    def validate(self, value: object) -> object:
        if self.kind is list:
            return list(value) if value is not None else None
        if self.kind is bool:
            return bool(value)
        if self.kind is int:
            return int(value)
        return str(value)

    def render(self, value: object) -> str:
        """Canonical token form of a value for spec printing."""
        if self.kind is list:
            return ",".join(value)
        if self.kind is bool:
            return "1" if value else "0"
        return str(value)


class CompilationStage(abc.ABC):
    """One named, option-bearing phase of the compilation pipeline."""

    #: Spec-level stage name (what appears in textual pipelines).
    name: ClassVar[str] = ""
    #: Bucket in ``CompileResult.stage_seconds`` (legacy-compatible).
    timing_key: ClassVar[str] = ""
    #: Declared options, in canonical printing order.
    option_decls: ClassVar[Tuple[StageOption, ...]] = ()
    #: Whether the compilation state at this stage's *exit* boundary can be
    #: reconstructed from a printed-IR snapshot (module text plus the small
    #: JSON extras captured by :mod:`repro.compiler.ircache`).  Stages whose
    #: results live outside the module — e.g. ``parallelize``'s factor maps
    #: or ``estimate``'s :class:`DesignEstimate` — must declare ``False``,
    #: which also blocks snapshotting at every later boundary.
    snapshot_safe: ClassVar[bool] = False

    def __init__(self, **options) -> None:
        decls = {decl.attr: decl for decl in self.option_decls}
        unknown = sorted(set(options) - set(decls))
        if unknown:
            raise TypeError(
                f"stage {self.name!r} has no option(s) {', '.join(map(repr, unknown))}; "
                f"known options: {', '.join(sorted(decls)) or '(none)'}"
            )
        for attr, decl in decls.items():
            value = options.get(attr, decl.default)
            if value is not None or decl.default is not None:
                value = decl.validate(value) if value is not None else None
            setattr(self, attr, value)

    # ----------------------------------------------------------------- spec
    @classmethod
    def from_spec(cls, stage_spec: StageSpec) -> "CompilationStage":
        """Instantiate from a parsed :class:`StageSpec`, coercing options."""
        decls = {decl.name: decl for decl in cls.option_decls}
        values: Dict[str, object] = {}
        for key, tokens in stage_spec.options.items():
            offset = stage_spec.option_offsets.get(key, -1)
            decl = decls.get(key)
            if decl is None:
                raise PipelineSpecError(
                    f"unknown option {key!r} of stage {cls.name!r}; "
                    f"known options: {', '.join(sorted(decls)) or '(none)'}",
                    offset,
                )
            values[decl.attr] = decl.coerce_tokens(tokens, offset)
        return cls(**values)

    def spec_options(self) -> Dict[str, str]:
        """Non-default options in canonical rendered form."""
        rendered: Dict[str, str] = {}
        for decl in self.option_decls:
            value = getattr(self, decl.attr)
            if value is None or value == decl.default:
                continue
            rendered[decl.name] = decl.render(value)
        return rendered

    def to_spec(self) -> StageSpec:
        return StageSpec(
            name=self.name,
            options={key: value.split(",") for key, value in self.spec_options().items()},
        )

    # ------------------------------------------------------------ execution
    @abc.abstractmethod
    def run(self, state: CompilationState) -> None:
        """Apply this stage to ``state`` in place."""

    def __repr__(self) -> str:
        return f"<stage {self.to_spec().print()}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[CompilationStage]] = {}


def register_stage(cls: Type[CompilationStage]) -> Type[CompilationStage]:
    """Class decorator adding a stage to the global registry by name."""
    if not cls.name:
        raise ValueError(f"stage class {cls.__name__} declares no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"stage name {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def get_stage_class(name: str, offset: int = -1) -> Type[CompilationStage]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PipelineSpecError(
            f"unknown stage {name!r}; known stages: {', '.join(available_stages())}",
            offset,
        ) from None


def available_stages() -> List[str]:
    """Registered stage names in registration (pipeline-canonical) order."""
    return list(_REGISTRY)


def stage_registry() -> Dict[str, Type[CompilationStage]]:
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# The Figure-3 stages
# ---------------------------------------------------------------------------


@register_stage
class ConstructDataflowStage(CompilationStage):
    """Functional dataflow construction (Algorithm 1)."""

    name = "construct-dataflow"
    timing_key = "construct"
    snapshot_safe = True

    def run(self, state: CompilationState) -> None:
        wrapped = construct_functional_dataflow(state.module)
        state.emit(self.name, f"wrapped {wrapped} ops into dataflow tasks", tasks=wrapped)


@register_stage
class FuseTasksStage(CompilationStage):
    """Functional dataflow optimization — task fusion (Algorithm 2)."""

    name = "fuse-tasks"
    timing_key = "fusion"
    snapshot_safe = True
    option_decls = (
        StageOption(
            "patterns",
            list,
            None,
            "fusion pattern names to apply (default: all profitable patterns)",
        ),
    )

    def __init__(self, **options) -> None:
        super().__init__(**options)
        #: Direct pattern-instance override (set by ``Compiler.from_options``
        #: so custom ``FusionPattern`` subclasses survive the spec round
        #: trip; textual specs can only name the registered patterns).
        self._pattern_instances = None

    def resolved_patterns(self):
        """Pattern instances for the configured names (None = defaults)."""
        if self._pattern_instances is not None:
            return list(self._pattern_instances)
        if self.patterns is None:
            return None
        by_name = fusion_patterns_by_name()
        unknown = [name for name in self.patterns if name not in by_name]
        if unknown:
            raise PipelineSpecError(
                f"unknown fusion pattern(s) {', '.join(map(repr, unknown))} "
                f"in stage {self.name!r}; known patterns: "
                f"{', '.join(sorted(by_name))}"
            )
        return [by_name[name] for name in self.patterns]

    def run(self, state: CompilationState) -> None:
        fuse_dataflow_tasks(state.module, self.resolved_patterns())


@register_stage
class LowerLinalgStage(CompilationStage):
    """Bufferize tensor-level (linalg) programs down to affine loops."""

    name = "lower-linalg"
    timing_key = "bufferize"
    snapshot_safe = True

    def run(self, state: CompilationState) -> None:
        has_linalg = any(
            isinstance(op, linalg.LinalgOp) for op in state.module.walk()
        )
        if not has_linalg:
            return
        lower_linalg_to_affine(state.module)
        eliminate_dead_code(state.module)


@register_stage
class LowerStructuralStage(CompilationStage):
    """Structural dataflow construction: dispatch/task -> schedule/node."""

    name = "lower-structural"
    timing_key = "structural"
    snapshot_safe = True

    def run(self, state: CompilationState) -> None:
        state.schedules = list(lower_to_structural_dataflow(state.module))
        state.emit(
            self.name,
            f"lowered to {len(state.schedules)} schedule(s)",
            schedules=len(state.schedules),
        )


@register_stage
class EliminateMultiProducersStage(CompilationStage):
    """Multi-producer elimination (Section 6.4.1)."""

    name = "eliminate-multi-producers"
    timing_key = "dataflow-opt"
    snapshot_safe = True

    def run(self, state: CompilationState) -> None:
        for schedule in state.schedules:
            eliminate_multiple_producers(schedule)


@register_stage
class BalanceStage(CompilationStage):
    """Data-path balancing (Section 6.4.2)."""

    name = "balance"
    timing_key = "dataflow-opt"
    snapshot_safe = True
    option_decls = (
        StageOption(
            "budget", int, _DEFAULT_BIT_BUDGET, "on-chip buffer budget in bits"
        ),
    )

    def run(self, state: CompilationState) -> None:
        for schedule in state.schedules:
            report = balance_data_paths(schedule, on_chip_bit_budget=self.budget)
            state.balance_report.buffers_deepened += report.buffers_deepened
            state.balance_report.copy_nodes_inserted += report.copy_nodes_inserted
            state.balance_report.soft_fifos += report.soft_fifos
            state.balance_report.token_streams += report.token_streams
        if state.balance_report.buffers_deepened or state.balance_report.copy_nodes_inserted:
            state.emit(
                self.name,
                f"deepened {state.balance_report.buffers_deepened} buffer(s), "
                f"inserted {state.balance_report.copy_nodes_inserted} copy node(s)",
                buffers_deepened=state.balance_report.buffers_deepened,
                copy_nodes_inserted=state.balance_report.copy_nodes_inserted,
            )


@register_stage
class TileStage(CompilationStage):
    """External-memory tiling: spill oversized buffers to DRAM tile caches.

    HIDA uses loop tiling plus local tile buffers so that only small tiles
    of intermediate results stay on-chip while the full arrays live in
    external memory.  The reproduction records the tile size on each node
    (consumed by the QoR model for burst/address-generation effects) and
    re-places buffers whose footprint exceeds one tile working set
    (``size^2`` elements per ping-pong stage) into DRAM.
    """

    name = "tile"
    timing_key = "dataflow-opt"
    snapshot_safe = True
    option_decls = (
        StageOption("size", int, 16, "tile edge length in elements (0 disables)"),
    )

    def run(self, state: CompilationState) -> None:
        if self.size <= 0:
            return
        spilled = 0
        for schedule in state.schedules:
            for node in schedule.nodes:
                node.set_attr("tile_size", self.size)
            per_buffer_budget = self.size * self.size * 8 * 64
            for buffer in schedule.buffers:
                bits = buffer.memref_type.bitwidth * buffer.depth
                if bits > per_buffer_budget:
                    buffer.set_memory_kind("dram")
                    buffer.set_attr("tiled", True)
                    buffer.set_attr("tile_elements", self.size * self.size)
                    spilled += 1
        if spilled:
            state.emit(
                self.name,
                f"spilled {spilled} oversized buffer(s) to external memory",
                spilled=spilled,
            )


@register_stage
class ParallelizeStage(CompilationStage):
    """Structural dataflow parallelization (IA+CA unroll factor selection)."""

    name = "parallelize"
    timing_key = "parallelize"
    option_decls = (
        StageOption("factor", int, 32, "maximum parallel factor per node"),
        StageOption("ia", bool, True, "intensity-aware factor assignment"),
        StageOption("ca", bool, True, "connection-aware factor alignment"),
        StageOption("target-ii", int, 1, "target initiation interval"),
    )

    def parallelization_options(self) -> ParallelizationOptions:
        return ParallelizationOptions(
            max_parallel_factor=self.factor,
            intensity_aware=self.ia,
            connection_aware=self.ca,
            target_ii=self.target_ii,
        )

    def run(self, state: CompilationState) -> None:
        options = self.parallelization_options()
        result = state.parallelization
        for schedule in state.schedules:
            chosen = parallelize_schedule(schedule, options)
            result.unroll_factors.update(chosen.unroll_factors)
            result.parallel_factors.update(chosen.parallel_factors)
            result.intensities.update(chosen.intensities)
            result.constraint_violations += chosen.constraint_violations
            result.proposals_evaluated += chosen.proposals_evaluated
            state.misalignments += count_misalignments(schedule)
        if not state.schedules:
            # Single-band kernels: intra-band loop optimizations only.
            for func in state.module.functions:
                chosen = parallelize_function_bands(func, options)
                result.unroll_factors.update(chosen.unroll_factors)
                result.parallel_factors.update(chosen.parallel_factors)
                result.intensities.update(chosen.intensities)
        if state.misalignments:
            state.emit(
                self.name,
                f"{state.misalignments} misaligned connection(s) remain",
                severity="warning",
                misalignments=state.misalignments,
            )


@register_stage
class EstimateStage(CompilationStage):
    """QoR estimation of the final design (Vitis-HLS-style model)."""

    name = "estimate"
    timing_key = "estimate"
    option_decls = (
        StageOption(
            "dataflow",
            bool,
            True,
            "estimate with coarse-grained (schedule-level) overlap",
        ),
    )

    def run(self, state: CompilationState) -> None:
        estimator = QoREstimator(state.platform)
        if state.schedules:
            estimates = [
                estimator.estimate_schedule(schedule, dataflow=self.dataflow)
                for schedule in state.schedules
            ]
            # The top-level schedule dominates; nested schedules already
            # contribute through their parent node's loops.
            state.estimate = max(estimates, key=lambda e: e.latency)
            return
        # No schedule was formed (single-band kernels): estimate the function.
        func = state.module.functions[0] if state.module.functions else None
        if func is None:
            raise ValueError("module has no function to estimate")
        state.estimate = estimator.estimate_function(func, dataflow=False)


@register_stage
class LintStage(CompilationStage):
    """Static soundness analysis of the structural dataflow design.

    Runs the registered :mod:`repro.analysis` rules (deadlock, token
    balance, memory races, buffer sizing) over the module at this point of
    the pipeline and re-emits every finding as a pipeline diagnostic, so
    observers see lint results exactly like any other stage output.  With
    ``fail-on`` set, findings at or above that severity abort the run with
    an :class:`~repro.analysis.AnalysisError`.
    """

    name = "lint"
    timing_key = "lint"
    snapshot_safe = True
    option_decls = (
        StageOption(
            "fail-on",
            str,
            "never",
            "abort on findings at/above this severity "
            "(never/note/warning/error)",
        ),
        StageOption(
            "rules",
            list,
            None,
            "restrict to these rule ids (default: every registered rule)",
        ),
    )

    def run(self, state: CompilationState) -> None:
        from ..analysis import AnalysisError, analyze_module, severity_rank

        if self.fail_on != "never":
            severity_rank(self.fail_on)  # validates the option value
        report = analyze_module(
            state.module, platform=state.platform, only=self.rules
        )
        for finding in report.diagnostics:
            payload = finding.to_dict()
            payload.pop("severity", None)
            payload.pop("message", None)
            state.emit(
                self.name,
                f"{finding.rule}: {finding.message}",
                severity=finding.severity,
                **payload,
            )
        if report.suppressed:
            state.emit(
                self.name,
                f"{report.suppressed} finding(s) suppressed via lint_suppress",
                suppressed=report.suppressed,
            )
        if report.fails_at(self.fail_on):
            counts = ", ".join(
                f"{rule}={count}" for rule, count in sorted(report.counts().items())
            )
            raise AnalysisError(
                f"lint failed at severity >= {self.fail_on!r}: "
                f"{len(report.diagnostics)} finding(s) ({counts}); "
                f"first: {report.diagnostics[0]}"
            )


@register_stage
class ValidateStage(CompilationStage):
    """Translation validation of the preceding stage boundary.

    Executes the module through the reference interpreter
    (:mod:`repro.ir.interp`) and proves it equivalent to the previous
    ``validate`` boundary — statically when the semantic fingerprint is
    unchanged, bitwise (or within ``tolerance``) otherwise.  The first
    instance in a pipeline records the reference; a behavioral mismatch
    raises :class:`~repro.analysis.tv.TranslationValidationError`.

    ``python -m repro.compiler --validate`` interleaves this stage after
    every other stage automatically.
    """

    name = "validate"
    timing_key = "validate"
    snapshot_safe = True
    option_decls = (
        StageOption("seed", int, 0, "reference-input seed"),
        StageOption(
            "max-ops", int, 0, "interpreter op budget (0 = the default budget)"
        ),
        StageOption(
            "tolerance",
            str,
            "0",
            "relative float tolerance for reassociating transforms "
            "(0 = bitwise)",
        ),
        StageOption(
            "after", str, "", "label of the stage boundary being validated"
        ),
    )

    def run(self, state: CompilationState) -> None:
        from ..analysis.tv import run_validate_stage

        run_validate_stage(self, state)


def build_stages(spec) -> List[CompilationStage]:
    """Instantiate registered stages for every element of a parsed spec."""
    stages: List[CompilationStage] = []
    for stage_spec in spec:
        cls = get_stage_class(stage_spec.name, stage_spec.offset)
        stages.append(cls.from_spec(stage_spec))
    return stages
