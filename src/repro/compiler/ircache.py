"""Content-addressed stage-boundary IR snapshot cache.

Design-space exploration compiles thousands of points that share a pipeline
*prefix*: the same workload, target and leading stages, differing only in
trailing knobs (parallelize factors, estimate flavor).  This module caches
the compilation state at stage boundaries so :meth:`Compiler.run
<repro.compiler.driver.Compiler.run>` can resume mid-pipeline instead of
recompiling from the frontend.

A snapshot is keyed by::

    ir|v<SCHEMA_VERSION>|<workload key>|<platform>|<prefix hash>

* ``workload key`` — the registry workload id with its bound parameters
  (``nn:lenet@batch=4``); runs over raw modules key by the module's
  content fingerprint instead.
* ``platform`` — the target name; stages consult platform parameters, so
  snapshots never cross targets.
* ``prefix hash`` — SHA-256 of the canonical printed spec of the stage
  prefix the snapshot sits behind.  Canonical spec printing omits
  options equal to their defaults, so equivalent prefixes share entries.
* ``SCHEMA_VERSION`` — bumped whenever the payload layout or the printed
  IR grammar changes; stale entries then miss instead of mis-parsing.

The payload is *printed IR text* (see :mod:`repro.ir.printer` /
:mod:`repro.ir.parser`) plus a name-hint sidecar and the small JSON-safe
extras a :class:`~repro.compiler.stages.CompilationState` accumulates
through snapshot-safe stages (balance counters, misalignments).  Schedules
are not serialized separately — they are re-collected by walking the parsed
module, which the snapshot self-verifies at save time: every snapshot is
parsed back, re-printed and byte-compared before it is stored, and — when
the module fits the reference interpreter's op budget — *executed* against
the live state (:mod:`repro.ir.interp`), refusing any snapshot whose
behavior differs.  A cache can therefore never serve a state that differs
from what the cold compile produced.

Storage reuses the :class:`~repro.dse.cache.QoRCache` store: two-level
fan-out of JSON files under ``~/.cache/repro/ir`` (override with
``$REPRO_IR_CACHE`` or ``--ir-cache-dir``), atomic tmp+rename writes, and
deterministic size-capped LRU eviction (mtime with path tiebreak).

Alongside snapshots the cache keeps a tiny *frontend fingerprint memo*
(workload key -> module content fingerprint), which lets DSE workers
compute QoR-cache keys for warm workloads without re-tracing the frontend
at all.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..dialects.dataflow import ScheduleOp
from ..hida.dataflow_opt import BalanceReport
from ..ir.builtin import ModuleOp
from ..ir.parser import IRParseError, assign_name_hints, collect_name_hints, parse_op
from ..ir.printer import print_op
from .stages import CompilationState

__all__ = [
    "IRSnapshotCache",
    "default_ir_cache_dir",
    "workload_cache_key",
    "SCHEMA_VERSION",
]

#: Snapshot schema version: bump when the payload layout, the printed IR
#: grammar, or the semantics of any snapshot-safe stage change.
SCHEMA_VERSION = 1

#: Interpreter op budget for the execute-and-compare snapshot check.
#: Kept small: store() runs on the compile hot path, so large modules skip
#: the executed check (the print->parse->print round-trip still gates them).
_EXEC_VERIFY_MAX_OPS = 250_000


def default_ir_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_IR_CACHE`` or ``~/.cache/repro/ir``."""
    override = os.environ.get("REPRO_IR_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "ir"


def workload_cache_key(workload: object) -> Optional[str]:
    """Stable identity string for a workload reference, or None.

    Accepts everything :func:`repro.workloads.as_module` accepts except a
    pre-built module: a workload id string, a bound
    :class:`~repro.workloads.registry.Workload` handle, or a
    :class:`~repro.hida.pipeline.WorkloadSpec`.  Raw modules have no
    registry identity — callers key those by content fingerprint instead.
    """
    if isinstance(workload, str):
        return workload
    from ..workloads.registry import Workload

    if isinstance(workload, Workload):
        return workload.workload_id
    from ..hida.pipeline import WorkloadSpec

    if isinstance(workload, WorkloadSpec):
        params = ",".join(
            f"{key}={value}" for key, value in sorted(workload.params)
        )
        return f"{workload.kind}:{workload.name}@batch={workload.batch}|{params}"
    return None


class IRSnapshotCache:
    """File-backed store of stage-boundary compilation-state snapshots."""

    def __init__(
        self, root: Optional[os.PathLike] = None, max_entries: int = 4096
    ) -> None:
        # Imported lazily: repro.dse pulls in the DSE runner (and thus this
        # package) at import time, so a module-level import would cycle.
        from ..dse.cache import QoRCache

        self._store = QoRCache(
            root=Path(root) if root is not None else default_ir_cache_dir(),
            max_entries=max_entries,
        )
        #: Snapshots served this process (longest-prefix probe successes).
        self.hits = 0
        #: Probes that found nothing usable.
        self.misses = 0
        #: Snapshots written this process.
        self.stores = 0
        #: Snapshots refused because the print->parse->print round-trip or
        #: the schedule re-collection failed self-verification.
        self.verify_failures = 0
        #: Snapshots whose parsed form also *executed* identically to the
        #: live state (reference-interpreter compare at store time).
        self.exec_verified = 0
        #: Snapshots stored without the executed check (module exceeded the
        #: interpreter budget or uses ops it cannot execute).
        self.exec_skipped = 0

    @property
    def root(self) -> Path:
        return self._store.root

    # ----------------------------------------------------------------- keys
    @staticmethod
    def snapshot_key(workload_key: str, platform: str, prefix_hash: str) -> str:
        return f"ir|v{SCHEMA_VERSION}|{workload_key}|{platform}|{prefix_hash}"

    @staticmethod
    def fingerprint_key(workload_key: str) -> str:
        return f"irfp|v{SCHEMA_VERSION}|{workload_key}"

    @staticmethod
    def prefix_hash(spec_prefix_text: str) -> str:
        """Hash of a canonical printed pipeline-spec prefix."""
        return hashlib.sha256(spec_prefix_text.encode("utf-8")).hexdigest()[:16]

    # ---------------------------------------------------- frontend fingerprints
    def get_fingerprint(self, workload_key: str) -> Optional[str]:
        """Cached frontend-module content fingerprint for a workload."""
        payload = self._store.get(self.fingerprint_key(workload_key))
        if payload is None:
            return None
        fingerprint = payload.get("fingerprint")
        return fingerprint if isinstance(fingerprint, str) else None

    def put_fingerprint(self, workload_key: str, fingerprint: str) -> None:
        self._store.put(
            self.fingerprint_key(workload_key), {"fingerprint": fingerprint}
        )

    # ------------------------------------------------------------- snapshots
    def store(
        self,
        workload_key: str,
        platform: str,
        prefix_hash: str,
        state: CompilationState,
    ) -> bool:
        """Snapshot ``state`` at a stage boundary; returns True if written.

        The snapshot is self-verified before it is written: the printed
        module must parse back to byte-identical text (with the name-hint
        sidecar applied) and re-collect exactly the schedules the live
        state holds.  Failing either check refuses the snapshot — the run
        continues uncached rather than risking a divergent warm path.
        """
        key = self.snapshot_key(workload_key, platform, prefix_hash)
        if self._store.get(key) is not None:
            return False  # identical content by construction of the key
        text = print_op(state.module)
        hints = collect_name_hints(state.module)
        try:
            clone = parse_op(text)
            assign_name_hints(clone, hints)
            if print_op(clone) != text:
                raise IRParseError("re-printed snapshot differs")
            recollected = _collect_schedules(clone)
            if len(recollected) != len(state.schedules):
                raise IRParseError(
                    f"snapshot re-collects {len(recollected)} schedule(s), "
                    f"state holds {len(state.schedules)}"
                )
        except IRParseError:
            self.verify_failures += 1
            return False
        # Executed self-check: the parsed snapshot must behave identically
        # to the live state under the reference interpreter.  A textual
        # round-trip can be byte-clean and still lose behavior if printer
        # and parser share a blind spot; execution has no such blind spot.
        from ..ir import interp

        try:
            live = interp.interpret_module(
                state.module, max_ops=_EXEC_VERIFY_MAX_OPS
            )
            warm = interp.interpret_module(clone, max_ops=_EXEC_VERIFY_MAX_OPS)
        except interp.InterpreterError:
            self.exec_skipped += 1
        else:
            if interp.diff_results(live, warm):
                self.verify_failures += 1
                return False
            self.exec_verified += 1
        payload = {
            "ir": text,
            "hints": hints,
            "balance": {
                "buffers_deepened": state.balance_report.buffers_deepened,
                "copy_nodes_inserted": state.balance_report.copy_nodes_inserted,
                "soft_fifos": state.balance_report.soft_fifos,
                "token_streams": state.balance_report.token_streams,
            },
            "misalignments": state.misalignments,
            "num_schedules": len(state.schedules),
        }
        self._store.put(key, payload)
        self.stores += 1
        return True

    def load(
        self, workload_key: str, platform: str, prefix_hash: str
    ) -> Optional[Tuple[ModuleOp, List[ScheduleOp], BalanceReport, int]]:
        """Rehydrate a snapshot: (module, schedules, balance report, misalignments).

        Returns None on a miss or on any payload that fails to parse back
        cleanly (treated as a miss — the caller recompiles and overwrites).
        """
        payload = self._store.get(
            self.snapshot_key(workload_key, platform, prefix_hash)
        )
        if payload is None:
            self.misses += 1
            return None
        try:
            module = parse_op(payload["ir"])
            assign_name_hints(module, payload["hints"])
            if not isinstance(module, ModuleOp):
                raise IRParseError("snapshot root is not a module")
            schedules = _collect_schedules(module)
            if len(schedules) != int(payload["num_schedules"]):
                raise IRParseError("schedule count mismatch")
            balance = BalanceReport(**payload["balance"])
            misalignments = int(payload["misalignments"])
        except (IRParseError, KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return module, schedules, balance, misalignments

    # ----------------------------------------------------------- maintenance
    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        return self._store.clear()

    def __len__(self) -> int:
        return len(self._store)

    def __repr__(self) -> str:
        return (
            f"IRSnapshotCache({str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses}, stores={self.stores})"
        )


def _collect_schedules(module: ModuleOp) -> List[ScheduleOp]:
    """Re-collect schedule ops exactly as ``lower-structural`` ordered them.

    ``CompilationState.schedules`` is the list returned by the structural
    lowering; its order matches a function-order walk of the module, which
    is what makes re-collection from a parsed snapshot faithful (verified
    per-snapshot at store time via the count, and property-tested across
    the workload zoo).
    """
    return [
        op for func in module.functions for op in func.walk_ops(ScheduleOp)
    ]
