"""repro.compiler — the composable compilation front door.

This package replaces the monolithic ``compile_module`` driver with three
composable layers:

* :mod:`repro.compiler.spec` — MLIR-style textual pipeline specs
  (``"construct-dataflow,fuse-tasks{patterns=elementwise,init},..."``),
  round-trippable through parse/print and content-hashable for the QoR
  cache;
* :mod:`repro.compiler.stages` — the :class:`CompilationStage` protocol, a
  global stage registry, and the Figure-3 phases registered by name with
  typed per-stage options;
* :mod:`repro.compiler.driver` — the :class:`Compiler` object
  (``Compiler.from_spec(spec, platform=...)``, ``.run(module)``) with
  observer hooks for per-stage IR snapshots, timings and structured
  diagnostics, plus the lossless bridge to the legacy ``HidaOptions``
  surface.

``python -m repro.compiler`` exposes the same front door on the command
line (``--print-default-pipeline``, ``--list-stages``, ``--spec``).

Quickstart::

    from repro.compiler import Compiler
    from repro.frontend.cpp import build_kernel

    compiler = Compiler.from_spec(
        "construct-dataflow,lower-structural,balance,"
        "parallelize{factor=16},estimate",
        platform="zu3eg",
    )
    result = compiler.run(build_kernel("2mm"))
    print(compiler.spec_text(), result.summary())
"""

from .driver import (
    DEFAULT_PIPELINE,
    Compiler,
    DiagnosticsObserver,
    PipelineObserver,
    SnapshotObserver,
    TimingObserver,
    default_pipeline_spec,
    options_from_spec,
    spec_from_options,
)
from .spec import PipelineSpec, PipelineSpecError, StageSpec, parse_pipeline
from .stages import (
    CompilationStage,
    CompilationState,
    Diagnostic,
    StageOption,
    available_stages,
    build_stages,
    get_stage_class,
    register_stage,
    stage_registry,
)

__all__ = [
    "DEFAULT_PIPELINE",
    "Compiler",
    "DiagnosticsObserver",
    "PipelineObserver",
    "SnapshotObserver",
    "TimingObserver",
    "default_pipeline_spec",
    "options_from_spec",
    "spec_from_options",
    "PipelineSpec",
    "PipelineSpecError",
    "StageSpec",
    "parse_pipeline",
    "CompilationStage",
    "CompilationState",
    "Diagnostic",
    "StageOption",
    "available_stages",
    "build_stages",
    "get_stage_class",
    "register_stage",
    "stage_registry",
]
