"""Command-line compiler front door.

Examples::

    python -m repro.compiler --print-default-pipeline
    python -m repro.compiler --list-stages
    python -m repro.compiler --list-workloads
    python -m repro.compiler --list-targets
    python -m repro.compiler --workload atax --target zu3eg
    python -m repro.compiler --workload resnet18@batch=4 --target vu9p-slr
    python -m repro.compiler --workload lenet \\
        --spec "construct-dataflow,lower-structural,parallelize{factor=8},estimate" \\
        --timings --print-ir parallelize
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .. import obs
from ..workloads import UnknownWorkloadError, get_workload, iter_workloads
from ..targets import UnknownTargetError, get_target, iter_targets
from .driver import (
    DEFAULT_PIPELINE,
    Compiler,
    DiagnosticsObserver,
    SnapshotObserver,
    TimingObserver,
)
from .spec import PipelineSpecError
from .stages import stage_registry


def _parse_workload(text: str):
    """A registry workload id (``resnet18@batch=4``, legacy ``model:lenet@4``)."""
    try:
        return get_workload(text)
    except (UnknownWorkloadError, ValueError) as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler",
        description="Compile a workload through a textual pipeline spec.",
    )
    parser.add_argument(
        "--print-default-pipeline",
        action="store_true",
        help="print the canonical default pipeline spec and exit",
    )
    parser.add_argument(
        "--list-stages",
        action="store_true",
        help="list registered stages with their options and exit",
    )
    parser.add_argument(
        "--list-workloads",
        action="store_true",
        help="list registered workloads (models and kernels) and exit",
    )
    parser.add_argument(
        "--list-targets",
        action="store_true",
        help="list registered target platforms and exit",
    )
    parser.add_argument(
        "--spec",
        default=DEFAULT_PIPELINE,
        help="textual pipeline spec (default: the full Figure-3 pipeline)",
    )
    parser.add_argument(
        "--workload",
        type=_parse_workload,
        default=None,
        metavar="NAME[@PARAM=VALUE,...]",
        help="registered workload id, e.g. atax, resnet18@batch=4 or 2mm@n=16 "
        "(see --list-workloads; legacy kind:name[@batch] still accepted)",
    )
    parser.add_argument(
        "--target",
        "--platform",
        dest="platform",
        default="vu9p-slr",
        metavar="NAME",
        help="registered target platform or alias (default: vu9p-slr; "
        "see --list-targets)",
    )
    parser.add_argument(
        "--fidelity",
        default="estimate",
        metavar="LEVEL",
        help="QoR fidelity of the reported summary: 'estimate' (analytic "
        "model) or 'simulate' (dataflow simulation of the final design); "
        "see --list-fidelities (default: estimate)",
    )
    parser.add_argument(
        "--list-fidelities",
        action="store_true",
        help="list registered QoR fidelity levels and exit",
    )
    parser.add_argument(
        "--verify",
        "--verify-ir",
        dest="verify",
        action="store_true",
        help="verify the IR after every stage; violations surface as "
        "structured diagnostics and exit with status 3",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="append the static-analysis 'lint' stage to the pipeline "
        "(deadlock, token-balance, memory-race and buffer-sizing rules; "
        "see python -m repro.analysis --list-rules)",
    )
    parser.add_argument(
        "--lint-fail-on",
        choices=("never", "note", "warning", "error"),
        default="never",
        metavar="SEVERITY",
        help="with --lint, exit with status 4 when any finding reaches "
        "this severity (default: never)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="translation-validate every stage boundary against the "
        "reference interpreter; a behavioral mismatch exits with status 5",
    )
    parser.add_argument(
        "--validate-tolerance",
        type=float,
        default=0.0,
        metavar="REL",
        help="with --validate, relative float tolerance for reassociating "
        "transforms (default: 0 = bitwise)",
    )
    parser.add_argument(
        "--timings", action="store_true", help="print per-stage wall-clock timings"
    )
    parser.add_argument(
        "--print-ir",
        nargs="?",
        const="*",
        default=None,
        metavar="STAGE",
        help="print the IR after every stage (or only after STAGE)",
    )
    parser.add_argument(
        "--ir-cache",
        action="store_true",
        help="reuse stage-boundary IR snapshots from the incremental "
        "compilation cache (and store new ones)",
    )
    parser.add_argument(
        "--ir-cache-dir",
        default=None,
        metavar="PATH",
        help="IR snapshot cache directory (default: $REPRO_IR_CACHE or "
        "~/.cache/repro/ir; requires --ir-cache)",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="print IR-cache statistics (prefix hits, stages skipped, "
        "frontend traces, snapshots stored) after the run",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the result summary as JSON to PATH",
    )
    obs.add_cli_arguments(parser)
    return parser


def _print_stage_list() -> None:
    for name, cls in stage_registry().items():
        doc = (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ else ""
        print(f"{name:28s} {doc}")
        for decl in cls.option_decls:
            default = decl.render(decl.default) if decl.default is not None else "-"
            print(f"  {decl.name}={default:<12s} {decl.help}")


def _print_workload_list() -> None:
    for handle in iter_workloads():
        definition = handle.definition
        params = ", ".join(
            f"{decl.name}={decl.default}" for decl in definition.params
        )
        print(f"{definition.name:14s} {definition.kind:7s} "
              f"[{params or '-'}]  {definition.description}")


def _print_target_list() -> None:
    for target in iter_targets():
        platform = target.platform
        aliases = ", ".join(target.aliases) or "-"
        print(f"{target.name:10s} {platform.dsps:5d} DSP  "
              f"{platform.bram_18k:5d} BRAM18K  {platform.luts:7,d} LUT  "
              f"{platform.clock_mhz:5.0f} MHz  aliases: {aliases}")
        if target.description:
            print(f"  {target.description}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.print_default_pipeline:
        print(DEFAULT_PIPELINE)
        return 0
    if args.list_stages:
        _print_stage_list()
        return 0
    if args.list_workloads:
        _print_workload_list()
        return 0
    if args.list_targets:
        _print_target_list()
        return 0
    if args.list_fidelities:
        from ..dse.fidelity import describe_fidelities

        for line in describe_fidelities():
            print(line)
        return 0
    from ..dse.fidelity import get_fidelity

    try:
        fidelity = get_fidelity(args.fidelity)
    except ValueError as error:
        parser.error(f"--fidelity: {error}")
    if args.workload is None:
        parser.error(
            "--workload is required unless listing stages/workloads/targets "
            "or the default spec"
        )
    try:
        target = get_target(args.platform)
    except UnknownTargetError as error:
        parser.error(str(error))
    platform_name = target.name
    if args.ir_cache_dir is not None and not args.ir_cache:
        parser.error("--ir-cache-dir requires --ir-cache")
    if args.lint_fail_on != "never" and not args.lint:
        parser.error("--lint-fail-on requires --lint")
    if args.validate_tolerance and not args.validate:
        parser.error("--validate-tolerance requires --validate")
    spec_text = args.spec
    if args.validate:
        from ..analysis.tv import interleave_validate

        spec_text = interleave_validate(
            spec_text, tolerance=args.validate_tolerance
        )
    if args.lint:
        lint_stage = "lint"
        if args.lint_fail_on != "never":
            lint_stage = f"lint{{fail-on={args.lint_fail_on}}}"
        spec_text = f"{spec_text},{lint_stage}"
    ir_cache = None
    if args.ir_cache:
        from .ircache import IRSnapshotCache

        ir_cache = IRSnapshotCache(args.ir_cache_dir)

    timing = TimingObserver()
    diagnostics = DiagnosticsObserver()
    observers = [timing, diagnostics]
    snapshots = None
    if args.print_ir is not None:
        if args.print_ir != "*" and args.print_ir not in stage_registry():
            parser.error(
                f"--print-ir: unknown stage {args.print_ir!r}; "
                f"known stages: {', '.join(stage_registry())}"
            )
        snapshots = SnapshotObserver(None if args.print_ir == "*" else [args.print_ir])
        observers.append(snapshots)

    try:
        compiler = Compiler.from_spec(
            spec_text,
            platform=platform_name,
            verify_each=args.verify,
            observers=observers,
        )
    except PipelineSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"pipeline: {compiler.spec_text()}")
    print(f"platform: {platform_name}   spec-hash: {compiler.spec_hash()}")

    from ..analysis import AnalysisError
    from ..analysis.tv import TranslationValidationError
    from ..ir.verifier import VerificationError

    obs.cli_configure(args)
    try:
        result = compiler.run(workload=args.workload, ir_cache=ir_cache)
    except PipelineSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except VerificationError as error:
        for diagnostic in diagnostics.diagnostics:
            print(f"  {diagnostic}", file=sys.stderr)
        print(f"error: {error}", file=sys.stderr)
        return 3
    except AnalysisError as error:
        for diagnostic in diagnostics.diagnostics:
            print(f"  {diagnostic}", file=sys.stderr)
        print(f"error: {error}", file=sys.stderr)
        return 4
    except TranslationValidationError as error:
        for diagnostic in diagnostics.diagnostics:
            print(f"  {diagnostic}", file=sys.stderr)
        print(f"error: {error}", file=sys.stderr)
        return 5

    if args.cache_stats:
        stats = compiler.ir_cache_stats
        print("\nir-cache stats:")
        for key in (
            "prefix_hits",
            "stages_skipped",
            "stages_run",
            "frontend_traces",
            "snapshots_stored",
        ):
            print(f"  {key}: {stats[key]}")

    if snapshots is not None:
        for stage_name, text in snapshots.snapshots:
            print(f"\n=== IR after {stage_name} ===")
            print(text)
    for diagnostic in diagnostics.diagnostics:
        print(f"  {diagnostic}")
    if args.timings:
        print("\nper-stage timings:")
        for name, seconds in timing.timings:
            print(f"  {name:28s} {seconds * 1e3:8.2f} ms")

    qor = fidelity.apply(result)
    summary = qor["summary"]
    print(f"\n{args.workload.label()} on {platform_name} "
          f"({fidelity.name} fidelity):")
    for key, value in summary.items():
        rendered = f"{value:.2f}" if isinstance(value, float) else str(value)
        print(f"  {key}: {rendered}")

    if args.json:
        payload = {
            "workload": args.workload.label(),
            "platform": platform_name,
            "pipeline_spec": compiler.spec_text(),
            "spec_hash": compiler.spec_hash(),
            "fidelity": fidelity.name,
            "summary": summary,
            "estimate": qor["estimate"],
            "stage_seconds": result.stage_seconds,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    telemetry = obs.cli_finish(args)
    if telemetry is not None:
        print(
            f"telemetry: {telemetry['spans']} spans, "
            f"{telemetry['events']} events; "
            f"compile {telemetry['compile_seconds']:.2f}s, "
            f"simulate {telemetry['simulate_seconds']:.3f}s, "
            f"cache probes {telemetry['cache_probe_seconds']:.3f}s"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
