"""Command-line compiler front door.

Examples::

    python -m repro.compiler --print-default-pipeline
    python -m repro.compiler --list-stages
    python -m repro.compiler --workload kernel:atax --platform zu3eg
    python -m repro.compiler --workload model:lenet@4 \\
        --spec "construct-dataflow,lower-structural,parallelize{factor=8},estimate" \\
        --timings --print-ir parallelize
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .driver import (
    DEFAULT_PIPELINE,
    Compiler,
    DiagnosticsObserver,
    SnapshotObserver,
    TimingObserver,
)
from .spec import PipelineSpecError
from .stages import stage_registry


def _parse_workload(text: str):
    """``kind:name[@batch]`` -> WorkloadSpec (e.g. kernel:atax, model:lenet@4)."""
    from ..hida.pipeline import WorkloadSpec

    kind, sep, name = text.partition(":")
    if not sep or not name:
        raise argparse.ArgumentTypeError(
            f"workload must look like 'kernel:atax' or 'model:lenet[@batch]', got {text!r}"
        )
    batch = 1
    if "@" in name:
        name, _, suffix = name.partition("@")
        try:
            batch = int(suffix)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid batch size {suffix!r} in workload {text!r}"
            ) from None
    return WorkloadSpec(kind=kind, name=name, batch=batch)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compiler",
        description="Compile a workload through a textual pipeline spec.",
    )
    parser.add_argument(
        "--print-default-pipeline",
        action="store_true",
        help="print the canonical default pipeline spec and exit",
    )
    parser.add_argument(
        "--list-stages",
        action="store_true",
        help="list registered stages with their options and exit",
    )
    parser.add_argument(
        "--spec",
        default=DEFAULT_PIPELINE,
        help="textual pipeline spec (default: the full Figure-3 pipeline)",
    )
    parser.add_argument(
        "--workload",
        type=_parse_workload,
        default=None,
        metavar="KIND:NAME[@BATCH]",
        help="what to compile, e.g. kernel:atax or model:lenet@4",
    )
    parser.add_argument(
        "--platform", default="vu9p-slr", help="target platform (default: vu9p-slr)"
    )
    parser.add_argument(
        "--verify", action="store_true", help="verify the IR after every stage"
    )
    parser.add_argument(
        "--timings", action="store_true", help="print per-stage wall-clock timings"
    )
    parser.add_argument(
        "--print-ir",
        nargs="?",
        const="*",
        default=None,
        metavar="STAGE",
        help="print the IR after every stage (or only after STAGE)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the result summary as JSON to PATH",
    )
    return parser


def _print_stage_list() -> None:
    for name, cls in stage_registry().items():
        doc = (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ else ""
        print(f"{name:28s} {doc}")
        for decl in cls.option_decls:
            default = decl.render(decl.default) if decl.default is not None else "-"
            print(f"  {decl.name}={default:<12s} {decl.help}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.print_default_pipeline:
        print(DEFAULT_PIPELINE)
        return 0
    if args.list_stages:
        _print_stage_list()
        return 0
    if args.workload is None:
        parser.error("--workload is required unless listing stages or the default spec")

    timing = TimingObserver()
    diagnostics = DiagnosticsObserver()
    observers = [timing, diagnostics]
    snapshots = None
    if args.print_ir is not None:
        if args.print_ir != "*" and args.print_ir not in stage_registry():
            parser.error(
                f"--print-ir: unknown stage {args.print_ir!r}; "
                f"known stages: {', '.join(stage_registry())}"
            )
        snapshots = SnapshotObserver(None if args.print_ir == "*" else [args.print_ir])
        observers.append(snapshots)

    try:
        compiler = Compiler.from_spec(
            args.spec,
            platform=args.platform,
            verify_each=args.verify,
            observers=observers,
        )
    except PipelineSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"pipeline: {compiler.spec_text()}")
    print(f"platform: {args.platform}   spec-hash: {compiler.spec_hash()}")

    try:
        result = compiler.run(args.workload.build())
    except PipelineSpecError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if snapshots is not None:
        for stage_name, text in snapshots.snapshots:
            print(f"\n=== IR after {stage_name} ===")
            print(text)
    for diagnostic in diagnostics.diagnostics:
        print(f"  {diagnostic}")
    if args.timings:
        print("\nper-stage timings:")
        for name, seconds in timing.timings:
            print(f"  {name:28s} {seconds * 1e3:8.2f} ms")

    summary = result.summary()
    print(f"\n{args.workload.label()} on {args.platform}:")
    for key, value in summary.items():
        rendered = f"{value:.2f}" if isinstance(value, float) else str(value)
        print(f"  {key}: {rendered}")

    if args.json:
        payload = {
            "workload": args.workload.label(),
            "platform": args.platform,
            "pipeline_spec": compiler.spec_text(),
            "spec_hash": compiler.spec_hash(),
            "summary": summary,
            "estimate": result.estimate.to_dict(),
            "stage_seconds": result.stage_seconds,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
