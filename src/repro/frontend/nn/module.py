"""A miniature PyTorch-like module system used as the DNN design entry.

In the paper, PyTorch models are imported through Torch-MLIR.  This module
replaces that path with a small define-by-run tracing frontend: layers are
:class:`Module` objects, ``forward`` composes them over symbolic
:class:`Tensor` handles, and a :class:`repro.frontend.nn.tracer.Tracer`
records every layer invocation as a ``linalg`` operation in an IR module.

Only the layer types needed by the paper's model zoo are provided:
convolution (standard and depthwise), pooling, linear, ReLU, batch norm,
elementwise add (shortcut paths), flatten/reshape, concat and upsample.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...dialects import linalg
from ...ir.core import Value

__all__ = [
    "Tensor",
    "Module",
    "Sequential",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm2d",
    "Flatten",
    "Add",
    "Concat",
    "Upsample",
    "Softmax",
]


@dataclasses.dataclass
class Tensor:
    """A symbolic tensor: wraps the SSA value produced by a traced layer."""

    value: Value

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.type.shape

    @property
    def rank(self) -> int:
        return len(self.shape)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape})"


class Module:
    """Base class of all layers and models."""

    def __init__(self) -> None:
        self._modules: Dict[str, "Module"] = {}
        self.name: str = self.__class__.__name__

    # -------------------------------------------------------------- children
    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Module) and key != "_modules":
            if not hasattr(self, "_modules"):
                object.__setattr__(self, "_modules", {})
            self._modules[key] = value
        object.__setattr__(self, key, value)

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix or self.name, self
        for key, child in self._modules.items():
            child_prefix = f"{prefix}.{key}" if prefix else key
            yield from child.named_modules(child_prefix)

    def num_parameters(self) -> int:
        """Total parameter (weight) element count of this module tree."""
        total = getattr(self, "_own_parameters", 0)
        for child in self.children():
            total += child.num_parameters()
        return total

    # --------------------------------------------------------------- forward
    def __call__(self, *args: Tensor) -> Tensor:
        from .tracer import current_tracer

        tracer = current_tracer()
        if tracer is not None:
            tracer.enter_module(self)
        try:
            return self.forward(*args)
        finally:
            if tracer is not None:
                tracer.exit_module(self)

    def forward(self, *args: Tensor) -> Tensor:
        raise NotImplementedError(
            f"{self.__class__.__name__} does not implement forward()"
        )


def _emit(op_cls, *args, **kwargs) -> Tensor:
    """Emit a linalg op through the active tracer and wrap its result."""
    from .tracer import current_tracer

    tracer = current_tracer()
    if tracer is None:
        raise RuntimeError(
            "layers can only be executed under repro.frontend.nn.trace()"
        )
    op = tracer.builder.insert(op_cls.create(*args, **kwargs))
    tracer.record_layer_op(op)
    return Tensor(op.result())


def _weight(shape: Sequence[int], label: str) -> Value:
    from .tracer import current_tracer

    tracer = current_tracer()
    if tracer is None:
        raise RuntimeError("weights can only be materialized while tracing")
    return tracer.weight(shape, label)


class Sequential(Module):
    """Applies a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers: List[Module] = []
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
            self.layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, module: Module) -> None:
        index = len(self.layers)
        setattr(self, f"layer{index}", module)
        self.layers.append(module)


class Conv2d(Module):
    """2-D convolution over NCHW input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.bias = bias
        self._own_parameters = (
            out_channels * in_channels * kernel_size * kernel_size
            + (out_channels if bias else 0)
        )

    def forward(self, x: Tensor) -> Tensor:
        weight = _weight(
            (self.out_channels, self.in_channels, self.kernel_size, self.kernel_size),
            "conv_weight",
        )
        bias = _weight((self.out_channels,), "conv_bias") if self.bias else None
        return _emit(
            linalg.Conv2DOp,
            x.value,
            weight,
            bias,
            stride=self.stride,
            padding=self.padding,
        )


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (MobileNet building block)."""

    def __init__(
        self, channels: int, kernel_size: int, stride: int = 1, padding: int = 0
    ) -> None:
        super().__init__()
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._own_parameters = channels * kernel_size * kernel_size

    def forward(self, x: Tensor) -> Tensor:
        weight = _weight(
            (self.channels, 1, self.kernel_size, self.kernel_size), "dwconv_weight"
        )
        return _emit(
            linalg.DepthwiseConv2DOp,
            x.value,
            weight,
            stride=self.stride,
            padding=self.padding,
        )


class Linear(Module):
    """Fully connected layer."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.bias = bias
        self._own_parameters = out_features * in_features + (out_features if bias else 0)

    def forward(self, x: Tensor) -> Tensor:
        weight = _weight((self.out_features, self.in_features), "linear_weight")
        bias = _weight((self.out_features,), "linear_bias") if self.bias else None
        return _emit(linalg.LinearOp, x.value, weight, bias)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return _emit(linalg.ReluOp, x.value)


class Softmax(Module):
    def forward(self, x: Tensor) -> Tensor:
        return _emit(linalg.SoftmaxOp, x.value)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return _emit(
            linalg.MaxPool2DOp,
            x.value,
            kernel=self.kernel_size,
            stride=self.stride,
            padding=self.padding,
        )


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return _emit(
            linalg.AvgPool2DOp,
            x.value,
            kernel=self.kernel_size,
            stride=self.stride,
            padding=self.padding,
        )


class BatchNorm2d(Module):
    def __init__(self, channels: int) -> None:
        super().__init__()
        self.channels = channels
        self._own_parameters = 2 * channels

    def forward(self, x: Tensor) -> Tensor:
        scale = _weight((self.channels,), "bn_scale")
        shift = _weight((self.channels,), "bn_shift")
        return _emit(linalg.BatchNormOp, x.value, scale, shift)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        batch = x.shape[0]
        features = 1
        for dim in x.shape[1:]:
            features *= dim
        return _emit(linalg.ReshapeOp, x.value, (batch, features))


class Add(Module):
    """Elementwise add of two tensors (residual shortcut merge)."""

    def forward(self, lhs: Tensor, rhs: Tensor) -> Tensor:
        return _emit(linalg.AddOp, lhs.value, rhs.value)


class Concat(Module):
    def __init__(self, axis: int = 1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, *tensors: Tensor) -> Tensor:
        return _emit(linalg.ConcatOp, [t.value for t in tensors], axis=self.axis)


class Upsample(Module):
    def __init__(self, factor: int = 2) -> None:
        super().__init__()
        self.factor = factor

    def forward(self, x: Tensor) -> Tensor:
        return _emit(linalg.UpsampleOp, x.value, factor=self.factor)
