"""The DNN model zoo used in the paper's evaluation.

Models: LeNet (Section 2 case study), ResNet-18, MobileNet(V1), ZFNet,
VGG-16, a YOLO-style detector and an MLP (Table 8).  Each model is a plain
:class:`~repro.frontend.nn.module.Module`; :func:`build_model` traces it to
linalg-level IR at a given batch size.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...ir.builtin import ModuleOp
from ...ir.types import Type, i8
from ...workloads import register_workload
from .module import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Tensor,
)

__all__ = [
    "LeNet",
    "ResNet18",
    "MobileNet",
    "ZFNet",
    "VGG16",
    "YOLO",
    "MLP",
    "MODEL_ZOO",
    "MODEL_INPUT_SHAPES",
    "build_model",
    "model_names",
]


@register_workload(
    "lenet",
    kind="model",
    input_shape=(1, 28, 28),
    tags=("dnn-zoo", "case-study"),
    description="LeNet-5 CNN, 28x28 grayscale (Section 2 case study, Table 8)",
)
class LeNet(Module):
    """LeNet-5 style CNN for 28x28 grayscale inputs (Section 2 case study).

    The layer structure matches Table 1 of the paper: three Conv+ReLU+Pool
    groups followed by a Linear classifier.
    """

    def __init__(self, num_classes: int = 10) -> None:
        super().__init__()
        self.conv1 = Conv2d(1, 6, 5, padding=2)
        self.relu1 = ReLU()
        self.pool1 = MaxPool2d(2)
        self.conv2 = Conv2d(6, 16, 5)
        self.relu2 = ReLU()
        self.pool2 = MaxPool2d(2)
        self.conv3 = Conv2d(16, 120, 5)
        self.relu3 = ReLU()
        self.flatten = Flatten()
        self.fc = Linear(120, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        x = self.pool1(self.relu1(self.conv1(x)))
        x = self.pool2(self.relu2(self.conv2(x)))
        x = self.relu3(self.conv3(x))
        x = self.flatten(x)
        return self.fc(x)


class _BasicBlock(Module):
    """ResNet basic block with an identity or projection shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        self.add = Add()
        self.relu2 = ReLU()
        self.downsample: Optional[Module] = None
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False),
                BatchNorm2d(out_channels),
            )

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu1(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.downsample is not None:
            identity = self.downsample(x)
        out = self.add(out, identity)
        return self.relu2(out)


@register_workload(
    "resnet18",
    kind="model",
    input_shape=(3, 224, 224),
    tags=("dnn-zoo",),
    description="ResNet-18, 224x224 RGB, shortcut data paths (Table 8)",
)
class ResNet18(Module):
    """ResNet-18 for 224x224 RGB inputs (shortcut data paths)."""

    def __init__(self, num_classes: int = 1000) -> None:
        super().__init__()
        self.stem = Sequential(
            Conv2d(3, 64, 7, stride=2, padding=3, bias=False),
            BatchNorm2d(64),
            ReLU(),
            MaxPool2d(3, stride=2, padding=1),
        )
        self.layer1 = Sequential(_BasicBlock(64, 64), _BasicBlock(64, 64))
        self.layer2 = Sequential(_BasicBlock(64, 128, stride=2), _BasicBlock(128, 128))
        self.layer3 = Sequential(_BasicBlock(128, 256, stride=2), _BasicBlock(256, 256))
        self.layer4 = Sequential(_BasicBlock(256, 512, stride=2), _BasicBlock(512, 512))
        self.pool = AvgPool2d(7)
        self.flatten = Flatten()
        self.fc = Linear(512, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        x = self.pool(x)
        x = self.flatten(x)
        return self.fc(x)


class _DepthwiseSeparable(Module):
    """MobileNet depthwise-separable block: DW conv + BN + ReLU + PW conv."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1) -> None:
        super().__init__()
        self.dw = DepthwiseConv2d(in_channels, 3, stride=stride, padding=1)
        self.bn1 = BatchNorm2d(in_channels)
        self.relu1 = ReLU()
        self.pw = Conv2d(in_channels, out_channels, 1, bias=False)
        self.bn2 = BatchNorm2d(out_channels)
        self.relu2 = ReLU()

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu1(self.bn1(self.dw(x)))
        return self.relu2(self.bn2(self.pw(x)))


@register_workload(
    "mobilenet",
    kind="model",
    input_shape=(3, 224, 224),
    tags=("dnn-zoo",),
    description="MobileNetV1, depthwise-separable convolutions (Table 8)",
)
class MobileNet(Module):
    """MobileNetV1 (width multiplier 1.0) for 224x224 inputs."""

    def __init__(self, num_classes: int = 1000) -> None:
        super().__init__()
        configuration = [
            (32, 64, 1),
            (64, 128, 2),
            (128, 128, 1),
            (128, 256, 2),
            (256, 256, 1),
            (256, 512, 2),
            (512, 512, 1),
            (512, 512, 1),
            (512, 512, 1),
            (512, 512, 1),
            (512, 512, 1),
            (512, 1024, 2),
            (1024, 1024, 1),
        ]
        self.stem = Sequential(
            Conv2d(3, 32, 3, stride=2, padding=1, bias=False),
            BatchNorm2d(32),
            ReLU(),
        )
        self.blocks = Sequential(
            *[_DepthwiseSeparable(i, o, s) for i, o, s in configuration]
        )
        self.pool = AvgPool2d(7)
        self.flatten = Flatten()
        self.fc = Linear(1024, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.blocks(x)
        x = self.pool(x)
        x = self.flatten(x)
        return self.fc(x)


@register_workload(
    "zfnet",
    kind="model",
    input_shape=(3, 224, 224),
    tags=("dnn-zoo",),
    description="ZFNet, irregular 7x7/5x5 convolutions (Table 8)",
)
class ZFNet(Module):
    """ZFNet for 224x224 inputs (irregular convolution sizes: 7x7, 5x5)."""

    def __init__(self, num_classes: int = 1000) -> None:
        super().__init__()
        self.features = Sequential(
            Conv2d(3, 96, 7, stride=2, padding=1),
            ReLU(),
            MaxPool2d(3, stride=2, padding=1),
            Conv2d(96, 256, 5, stride=2),
            ReLU(),
            MaxPool2d(3, stride=2, padding=1),
            Conv2d(256, 384, 3, padding=1),
            ReLU(),
            Conv2d(384, 384, 3, padding=1),
            ReLU(),
            Conv2d(384, 256, 3, padding=1),
            ReLU(),
            MaxPool2d(3, stride=2),
        )
        self.flatten = Flatten()
        self.classifier = Sequential(
            Linear(256 * 6 * 6, 4096),
            ReLU(),
            Linear(4096, 4096),
            ReLU(),
            Linear(4096, num_classes),
        )

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)


@register_workload(
    "vgg16",
    kind="model",
    input_shape=(3, 224, 224),
    tags=("dnn-zoo",),
    description="VGG-16, deep uniform 3x3 convolution stacks (Table 8)",
)
class VGG16(Module):
    """VGG-16 for 224x224 inputs."""

    def __init__(self, num_classes: int = 1000) -> None:
        super().__init__()
        configuration = [
            (3, 64), (64, 64), "pool",
            (64, 128), (128, 128), "pool",
            (128, 256), (256, 256), (256, 256), "pool",
            (256, 512), (512, 512), (512, 512), "pool",
            (512, 512), (512, 512), (512, 512), "pool",
        ]
        layers: List[Module] = []
        for item in configuration:
            if item == "pool":
                layers.append(MaxPool2d(2))
            else:
                in_c, out_c = item
                layers.append(Conv2d(in_c, out_c, 3, padding=1))
                layers.append(ReLU())
        self.features = Sequential(*layers)
        self.flatten = Flatten()
        self.classifier = Sequential(
            Linear(512 * 7 * 7, 4096),
            ReLU(),
            Linear(4096, 4096),
            ReLU(),
            Linear(4096, num_classes),
        )

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = self.flatten(x)
        return self.classifier(x)


@register_workload(
    "yolo",
    kind="model",
    input_shape=(3, 416, 416),
    tags=("dnn-zoo",),
    description="Tiny-YOLO style detector on 416x416 inputs (Table 8)",
)
class YOLO(Module):
    """A Tiny-YOLO style single-shot detector on high-resolution inputs."""

    def __init__(self, num_anchors: int = 5, num_classes: int = 20) -> None:
        super().__init__()
        channels = [16, 32, 64, 128, 256, 512]
        layers: List[Module] = []
        in_c = 3
        for i, out_c in enumerate(channels):
            layers.append(Conv2d(in_c, out_c, 3, padding=1))
            layers.append(BatchNorm2d(out_c))
            layers.append(ReLU())
            if i < 5:
                layers.append(MaxPool2d(2))
            in_c = out_c
        self.backbone = Sequential(*layers)
        self.neck = Sequential(
            Conv2d(512, 1024, 3, padding=1),
            BatchNorm2d(1024),
            ReLU(),
            Conv2d(1024, 1024, 3, padding=1),
            BatchNorm2d(1024),
            ReLU(),
        )
        self.head = Conv2d(1024, num_anchors * (5 + num_classes), 1)

    def forward(self, x: Tensor) -> Tensor:
        x = self.backbone(x)
        x = self.neck(x)
        return self.head(x)


@register_workload(
    "mlp",
    kind="model",
    input_shape=(784,),
    tags=("dnn-zoo",),
    # in_features is coupled to input_shape, so only num_classes is an
    # addressable parameter.
    expose=("num_classes",),
    description="Fully-connected network on 784-dim inputs (Table 8)",
)
class MLP(Module):
    """A fully-connected network for 784-dimensional inputs."""

    def __init__(
        self,
        in_features: int = 784,
        hidden: Sequence[int] = (4096, 4096, 1024),
        num_classes: int = 10,
    ) -> None:
        super().__init__()
        layers: List[Module] = []
        prev = in_features
        for width in hidden:
            layers.append(Linear(prev, width))
            layers.append(ReLU())
            prev = width
        layers.append(Linear(prev, num_classes))
        self.layers = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.layers(x)


MODEL_ZOO: Dict[str, Callable[[], Module]] = {
    "lenet": LeNet,
    "resnet18": ResNet18,
    "mobilenet": MobileNet,
    "zfnet": ZFNet,
    "vgg16": VGG16,
    "yolo": YOLO,
    "mlp": MLP,
}

MODEL_INPUT_SHAPES: Dict[str, Tuple[int, ...]] = {
    "lenet": (1, 28, 28),
    "resnet18": (3, 224, 224),
    "mobilenet": (3, 224, 224),
    "zfnet": (3, 224, 224),
    "vgg16": (3, 224, 224),
    "yolo": (3, 416, 416),
    "mlp": (784,),
}


def model_names() -> List[str]:
    return list(MODEL_ZOO)


def build_model(name: str, batch: int = 1, element_type: Type = i8) -> ModuleOp:
    """Instantiate and trace a model from the zoo at the given batch size.

    .. deprecated:: thin wrapper over the :mod:`repro.workloads` registry —
       new code should use ``get_workload(name).at(batch=...).build_module()``,
       which also understands parameterized ids like ``"resnet18@batch=4"``.

    Models default to 8-bit integer activations and weights, matching the
    post-training quantization typically applied before FPGA deployment (and
    the low-precision MAC mapping discussed in the paper's DSP-efficiency
    analysis); pass ``element_type=f32`` for single-precision models.
    """
    from ...workloads import get_workload

    handle = get_workload(name, kind="model")
    if batch != 1:
        handle = handle.at(batch=batch)
    return handle.build_module(element_type=element_type)
