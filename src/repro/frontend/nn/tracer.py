"""Define-by-run tracer converting nn models into linalg-level IR.

Plays the role Torch-MLIR plays in the paper: executing the model's
``forward`` over a symbolic tensor and recording every layer as a
``linalg`` operation inside a ``func.func`` marked as the design top.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

from ...dialects.linalg import FillOp, LinalgOp
from ...ir.builder import Builder
from ...ir.builtin import FuncOp, ModuleOp, ReturnOp
from ...ir.core import Operation, Value
from ...ir.types import TensorType, Type, f32
from .module import Module, Tensor

__all__ = ["Tracer", "trace", "current_tracer", "layer_summary"]

_STATE = threading.local()


def current_tracer() -> Optional["Tracer"]:
    """The tracer active on this thread, if any."""
    return getattr(_STATE, "tracer", None)


class Tracer:
    """Records layer invocations into an IR module."""

    def __init__(self, name: str, element_type: Type = f32) -> None:
        self.name = name
        self.element_type = element_type
        self.module = ModuleOp.create(name)
        self.func: Optional[FuncOp] = None
        self.builder: Optional[Builder] = None
        self._module_stack: List[Module] = []
        self._layer_ops: List[Tuple[str, Operation]] = []
        self._weight_count = 0

    # ------------------------------------------------------------- lifecycle
    def begin(self, input_shapes: Sequence[Sequence[int]]) -> List[Tensor]:
        input_types = [TensorType(shape, self.element_type) for shape in input_shapes]
        self.func = FuncOp.create(
            "forward",
            input_types=input_types,
            result_types=[],
            top=True,
            arg_names=[f"input{i}" for i in range(len(input_types))],
        )
        self.module.append(self.func)
        self.builder = Builder.at_end(self.func.entry_block)
        return [Tensor(arg) for arg in self.func.arguments]

    def finish(self, outputs: Sequence[Tensor]) -> ModuleOp:
        self.builder.insert(ReturnOp.create([t.value for t in outputs]))
        result_types = tuple(t.value.type for t in outputs)
        func_type = self.func.function_type
        from ...ir.types import FunctionType

        self.func.set_attr(
            "function_type", FunctionType(func_type.inputs, result_types)
        )
        return self.module

    # --------------------------------------------------------------- tracing
    def enter_module(self, module: Module) -> None:
        self._module_stack.append(module)

    def exit_module(self, module: Module) -> None:
        if self._module_stack and self._module_stack[-1] is module:
            self._module_stack.pop()

    def record_layer_op(self, op: Operation) -> None:
        path = ".".join(m.__class__.__name__ for m in self._module_stack[-2:])
        op.set_attr("layer", path or op.name)
        self._layer_ops.append((path, op))

    def weight(self, shape: Sequence[int], label: str) -> Value:
        op = self.builder.insert(
            FillOp.create(shape, value=0.0, element_type=self.element_type)
        )
        op.set_attr("label", f"{label}_{self._weight_count}")
        self._weight_count += 1
        return op.result()

    @property
    def layer_ops(self) -> List[Tuple[str, Operation]]:
        return list(self._layer_ops)


def trace(
    model: Module,
    input_shape: Sequence[int],
    name: Optional[str] = None,
    extra_input_shapes: Sequence[Sequence[int]] = (),
    element_type: Type = f32,
) -> ModuleOp:
    """Trace ``model`` over a symbolic input and return the linalg-level module.

    ``input_shape`` is NCHW for convolutional models and (N, F) for MLPs.
    ``element_type`` selects the activation/weight precision; FPGA DNN
    accelerators typically use ``i8`` (post-training quantization).
    """
    tracer = Tracer(name or model.__class__.__name__.lower(), element_type=element_type)
    if current_tracer() is not None:
        raise RuntimeError("nested tracing is not supported")
    _STATE.tracer = tracer
    try:
        inputs = tracer.begin([input_shape, *extra_input_shapes])
        output = model(*inputs)
        outputs = output if isinstance(output, (list, tuple)) else [output]
        return tracer.finish(list(outputs))
    finally:
        _STATE.tracer = None


def layer_summary(module: ModuleOp) -> List[Tuple[str, str, Tuple[int, ...], int]]:
    """Per-layer summary of a traced module.

    Returns (op name, layer label, output shape, MACs) for every compute op,
    useful for model inspection and for the DNNBuilder-style baselines.
    """
    summary = []
    for op in module.walk():
        if isinstance(op, LinalgOp) and not isinstance(op, FillOp):
            out_shape = op.result().type.shape if op.results else ()
            summary.append((op.name, op.get_attr("layer", ""), out_shape, op.macs()))
    return summary
