"""repro.frontend — design-entry frontends (PyTorch-like NN and C++ kernels)."""

from . import cpp, nn

__all__ = ["cpp", "nn"]
