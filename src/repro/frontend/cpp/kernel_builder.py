"""Kernel builder: a Polygeist-style frontend for C++-like loop kernels.

The builder constructs affine loop-nest IR programmatically — playing the
role Polygeist plays in the paper for HLS C++ inputs.  Kernels are written
as short Python functions::

    kb = KernelBuilder("gemm")
    A = kb.add_input("A", (32, 16))
    B = kb.add_input("B", (16, 16))
    C = kb.add_output("C", (32, 16))
    with kb.loop_nest(("i", "j", "k"), (32, 16, 16)) as (i, j, k):
        kb.store(C, [i, j], kb.load(C, [i, j]) + kb.load(A, [i, k]) * kb.load(B, [k, j]))
    module = kb.finish()

Index expressions support affine arithmetic on induction variables
(``i * 2 + 1``), which is what produces the non-trivial scaling maps of the
paper's Listing 1 / Table 4.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ...dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ...dialects.affine_map import AffineExpr, AffineMap, constant, dim
from ...dialects.arith import AddFOp, DivFOp, ExpOp, MaxFOp, MinFOp, MulFOp, SqrtOp, SubFOp
from ...ir.builder import Builder
from ...ir.builtin import ConstantOp, FuncOp, ModuleOp, ReturnOp
from ...ir.core import Value
from ...ir.types import MemRefType, Type, f32

__all__ = ["IndexExpr", "ScalarExpr", "KernelBuilder"]


@dataclasses.dataclass
class IndexExpr:
    """An affine expression over loop induction variables.

    Internally a linear combination ``sum(coeff_iv * iv) + offset``; supports
    ``+``, ``-`` and ``*`` by integer constants and other index expressions.
    """

    terms: Dict[int, Tuple[Value, int]]  # id(value) -> (value, coefficient)
    offset: int = 0

    @classmethod
    def of(cls, iv: Value) -> "IndexExpr":
        return cls({id(iv): (iv, 1)}, 0)

    @classmethod
    def const(cls, value: int) -> "IndexExpr":
        return cls({}, int(value))

    def _combine(self, other: "IndexExpr", sign: int) -> "IndexExpr":
        terms = dict(self.terms)
        for key, (value, coeff) in other.terms.items():
            existing = terms.get(key)
            new_coeff = (existing[1] if existing else 0) + sign * coeff
            if new_coeff == 0:
                terms.pop(key, None)
            else:
                terms[key] = (value, new_coeff)
        return IndexExpr(terms, self.offset + sign * other.offset)

    def __add__(self, other: Union["IndexExpr", int]) -> "IndexExpr":
        other = other if isinstance(other, IndexExpr) else IndexExpr.const(other)
        return self._combine(other, 1)

    __radd__ = __add__

    def __sub__(self, other: Union["IndexExpr", int]) -> "IndexExpr":
        other = other if isinstance(other, IndexExpr) else IndexExpr.const(other)
        return self._combine(other, -1)

    def __mul__(self, factor: int) -> "IndexExpr":
        if not isinstance(factor, int):
            raise TypeError("index expressions can only be scaled by integers")
        terms = {
            key: (value, coeff * factor) for key, (value, coeff) in self.terms.items()
        }
        return IndexExpr(terms, self.offset * factor)

    __rmul__ = __mul__

    @property
    def values(self) -> List[Value]:
        return [value for value, _ in self.terms.values()]


IndexLike = Union[IndexExpr, Value, int]


def _as_index_expr(item: IndexLike) -> IndexExpr:
    if isinstance(item, IndexExpr):
        return item
    if isinstance(item, Value):
        return IndexExpr.of(item)
    if isinstance(item, int):
        return IndexExpr.const(item)
    raise TypeError(f"cannot use {item!r} as an index expression")


@dataclasses.dataclass
class ScalarExpr:
    """A scalar SSA value wrapper with operator overloading."""

    value: Value
    builder: "KernelBuilder"

    def _binary(self, op_cls, other: Union["ScalarExpr", float, int]) -> "ScalarExpr":
        other_value = self.builder._as_scalar(other, self.value.type)
        op = self.builder._builder.insert(op_cls.create(self.value, other_value))
        return ScalarExpr(op.result(), self.builder)

    def __add__(self, other):
        return self._binary(AddFOp, other)

    def __radd__(self, other):
        return self.builder.scalar(other, self.value.type)._binary(AddFOp, self)

    def __sub__(self, other):
        return self._binary(SubFOp, other)

    def __rsub__(self, other):
        return self.builder.scalar(other, self.value.type)._binary(SubFOp, self)

    def __mul__(self, other):
        return self._binary(MulFOp, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self._binary(DivFOp, other)

    def maximum(self, other):
        return self._binary(MaxFOp, other)

    def minimum(self, other):
        return self._binary(MinFOp, other)


ScalarLike = Union[ScalarExpr, Value, float, int]


class KernelBuilder:
    """Builds a single-function module of affine loop nests."""

    def __init__(self, name: str, element_type: Type = f32) -> None:
        self.name = name
        self.element_type = element_type
        self.module = ModuleOp.create(name)
        self._arg_specs: List[Tuple[str, MemRefType]] = []
        self._func: Optional[FuncOp] = None
        self._builder: Optional[Builder] = None
        self._args: Dict[str, Value] = {}
        self._finished = False
        self._pending_body: List = []

    # ------------------------------------------------------------- arguments
    def add_input(self, name: str, shape: Sequence[int]) -> str:
        return self._add_arg(name, shape)

    def add_output(self, name: str, shape: Sequence[int]) -> str:
        return self._add_arg(name, shape)

    def add_inout(self, name: str, shape: Sequence[int]) -> str:
        return self._add_arg(name, shape)

    def _add_arg(self, name: str, shape: Sequence[int]) -> str:
        if self._func is not None:
            raise RuntimeError("arguments must be declared before building loops")
        self._arg_specs.append((name, MemRefType(shape, self.element_type, "dram")))
        return name

    def _ensure_func(self) -> None:
        if self._func is not None:
            return
        self._func = FuncOp.create(
            self.name,
            input_types=[ty for _, ty in self._arg_specs],
            top=True,
            arg_names=[name for name, _ in self._arg_specs],
        )
        self.module.append(self._func)
        self._builder = Builder.at_end(self._func.entry_block)
        for (name, _), arg in zip(self._arg_specs, self._func.arguments):
            self._args[name] = arg

    def add_local(self, name: str, shape: Sequence[int]) -> str:
        """Declare a function-local on-chip array (``float A[..][..];``)."""
        self._ensure_func()
        from ...dialects.memref import AllocOp

        alloc = self._builder.insert(
            AllocOp.create(MemRefType(shape, self.element_type, "bram"), name_hint=name)
        )
        self._args[name] = alloc.result()
        return name

    def arg(self, name: str) -> Value:
        self._ensure_func()
        return self._args[name]

    # ------------------------------------------------------------------ loops
    @contextlib.contextmanager
    def loop_nest(
        self,
        names: Sequence[str],
        bounds: Sequence[int],
        steps: Optional[Sequence[int]] = None,
    ) -> Iterator[Tuple[IndexExpr, ...]]:
        """Open a perfectly-nested loop band; yields one IndexExpr per loop."""
        self._ensure_func()
        steps = steps or [1] * len(names)
        saved_builder = self._builder
        loops: List[AffineForOp] = []
        builder = self._builder
        for name, bound, step in zip(names, bounds, steps):
            loop = builder.insert(AffineForOp.create(0, bound, step, name_hint=name))
            loops.append(loop)
            builder = Builder.at_end(loop.body)
            self._builder = builder
        try:
            yield tuple(IndexExpr.of(loop.induction_variable) for loop in loops)
        finally:
            self._builder = saved_builder

    @contextlib.contextmanager
    def loop(self, name: str, bound: int, step: int = 1) -> Iterator[IndexExpr]:
        with self.loop_nest([name], [bound], [step]) as (iv,):
            yield iv

    # ---------------------------------------------------------------- scalars
    def scalar(self, value: ScalarLike, type: Optional[Type] = None) -> ScalarExpr:
        return ScalarExpr(self._as_scalar(value, type or self.element_type), self)

    def _as_scalar(self, value: ScalarLike, type: Type) -> Value:
        if isinstance(value, ScalarExpr):
            return value.value
        if isinstance(value, Value):
            return value
        if isinstance(value, (int, float)):
            op = self._builder.insert(ConstantOp.create(float(value), type))
            return op.result()
        raise TypeError(f"cannot use {value!r} as a scalar")

    def constant(self, value: float) -> ScalarExpr:
        self._ensure_func()
        return self.scalar(value)

    # ----------------------------------------------------------- loads/stores
    def _build_access(
        self, indices: Sequence[IndexLike]
    ) -> Tuple[List[Value], AffineMap]:
        exprs = [_as_index_expr(i) for i in indices]
        operand_order: List[Value] = []
        for expr in exprs:
            for value in expr.values:
                if all(value is not existing for existing in operand_order):
                    operand_order.append(value)
        position = {id(v): i for i, v in enumerate(operand_order)}
        results: List[AffineExpr] = []
        for expr in exprs:
            acc: AffineExpr = constant(expr.offset)
            for key, (value, coeff) in expr.terms.items():
                acc = acc + dim(position[key]) * coeff
            results.append(acc)
        access_map = AffineMap(len(operand_order), 0, results)
        return operand_order, access_map

    def load(self, array: str, indices: Sequence[IndexLike]) -> ScalarExpr:
        memref = self.arg(array) if isinstance(array, str) else array
        operands, access_map = self._build_access(indices)
        op = self._builder.insert(AffineLoadOp.create(memref, operands, access_map))
        return ScalarExpr(op.result(), self)

    def store(self, array: str, indices: Sequence[IndexLike], value: ScalarLike) -> None:
        memref = self.arg(array) if isinstance(array, str) else array
        operands, access_map = self._build_access(indices)
        scalar = self._as_scalar(value, memref.type.element_type)
        self._builder.insert(AffineStoreOp.create(scalar, memref, operands, access_map))

    # ------------------------------------------------------------------ math
    def exp(self, value: ScalarLike) -> ScalarExpr:
        scalar = self._as_scalar(value, self.element_type)
        op = self._builder.insert(ExpOp.create(scalar))
        return ScalarExpr(op.result(), self)

    def sqrt(self, value: ScalarLike) -> ScalarExpr:
        scalar = self._as_scalar(value, self.element_type)
        op = self._builder.insert(SqrtOp.create(scalar))
        return ScalarExpr(op.result(), self)

    def maximum(self, lhs: ScalarLike, rhs: ScalarLike) -> ScalarExpr:
        return self.scalar(lhs).maximum(rhs)

    # ---------------------------------------------------------------- finish
    def finish(self) -> ModuleOp:
        """Finalize the function (adds the return) and return the module."""
        self._ensure_func()
        if not self._finished:
            self._builder.insert(ReturnOp.create())
            self._finished = True
        return self.module

    @property
    def func(self) -> FuncOp:
        self._ensure_func()
        return self._func
