"""repro.frontend.cpp — the C++ (Polygeist-style) loop-kernel frontend."""

from .kernel_builder import IndexExpr, KernelBuilder, ScalarExpr
from .listing1 import build_listing1
from .polybench import (
    MULTI_LOOP_KERNELS,
    POLYBENCH_KERNELS,
    SINGLE_LOOP_KERNELS,
    build_kernel,
    kernel_names,
)

__all__ = [
    "IndexExpr",
    "KernelBuilder",
    "ScalarExpr",
    "build_listing1",
    "POLYBENCH_KERNELS",
    "MULTI_LOOP_KERNELS",
    "SINGLE_LOOP_KERNELS",
    "build_kernel",
    "kernel_names",
]
