"""Listing 1 of the HIDA paper: the three-node running example.

The kernel loads an ``A[32][16]`` array and a ``B[16][16]`` array from
external inputs and computes ``C[i][j] = A[i*2][k] * B[k][j]`` over a
``16 x 16 x 16`` iteration space.  Node2 reads ``A`` with a stride of 2 on
its first dimension, producing the non-trivial permutation and scaling maps
of Table 4 and driving the parallelization example of Tables 5 and 6.
"""

from __future__ import annotations

from ...ir.builtin import ModuleOp
from ...workloads import register_workload
from .kernel_builder import KernelBuilder

__all__ = ["build_listing1"]


@register_workload(
    "listing1",
    kind="kernel",
    tags=("listing1", "case-study"),
    description="The paper's Listing-1 three-node running example (Tables 4-6)",
)
def build_listing1() -> ModuleOp:
    """Build the Listing-1 kernel as an affine loop-nest module."""
    kb = KernelBuilder("listing1")
    a_in = kb.add_input("A_in", (32, 16))
    b_in = kb.add_input("B_in", (16, 16))
    c_out = kb.add_output("C_out", (16, 16))

    kb.add_local("A", (32, 16))
    kb.add_local("B", (16, 16))

    # NODE0: load array A.
    with kb.loop_nest(("i", "k"), (32, 16)) as (i, k):
        kb.store("A", [i, k], kb.load(a_in, [i, k]))

    # NODE1: load array B.
    with kb.loop_nest(("k", "j"), (16, 16)) as (k, j):
        kb.store("B", [k, j], kb.load(b_in, [k, j]))

    # NODE2: C[i][j] = A[i*2][k] * B[k][j].
    with kb.loop_nest(("i", "j", "k"), (16, 16, 16)) as (i, j, k):
        kb.store(c_out, [i, j], kb.load("A", [i * 2, k]) * kb.load("B", [k, j]))

    return kb.finish()
