"""PolyBench kernels used in the C++ evaluation of the paper (Table 7).

Each kernel is built as an affine loop-nest module via the
:class:`~repro.frontend.cpp.kernel_builder.KernelBuilder`.  Kernels are
grouped as in the paper:

* blas routines: ``gesummv``, ``symm``, ``syr2k``;
* linear algebra: ``2mm``, ``3mm``, ``atax``, ``bicg``, ``mvt``;
* data mining: ``correlation``;
* stencils: ``jacobi-2d``, ``seidel-2d``.

The kernels the paper classifies as *single-loop* (``bicg``, ``gesummv``,
``seidel-2d``, ``symm``, ``syr2k``) are written as one loop band, so they
expose no inter-task dataflow opportunity; the *multi-loop* kernels contain
several bands and are where HIDA's dataflow optimizations show gains.

Problem sizes follow the PolyBench ``SMALL`` dataset scaled to keep the
analytical evaluation fast; relative comparisons are size-independent.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ...ir.builtin import ModuleOp
from ...workloads import register_workload
from .kernel_builder import KernelBuilder

__all__ = [
    "POLYBENCH_KERNELS",
    "MULTI_LOOP_KERNELS",
    "SINGLE_LOOP_KERNELS",
    "build_kernel",
    "kernel_names",
]

N = 40  # base problem dimension
TSTEPS = 4  # time steps for stencils


@register_workload("2mm", kind="kernel", tags=("polybench", "linear-algebra", "multi-loop"))
def build_2mm(n: int = N) -> ModuleOp:
    """D := alpha*A*B*C + beta*D (two chained matrix multiplications)."""
    kb = KernelBuilder("2mm")
    kb.add_input("A", (n, n))
    kb.add_input("B", (n, n))
    kb.add_input("C", (n, n))
    kb.add_inout("D", (n, n))
    kb.add_local("tmp", (n, n))
    alpha, beta = 1.5, 1.2

    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("tmp", [i, j], kb.constant(0.0))
    with kb.loop_nest(("i", "j", "k"), (n, n, n)) as (i, j, k):
        acc = kb.load("tmp", [i, j]) + kb.load("A", [i, k]) * kb.load("B", [k, j]) * alpha
        kb.store("tmp", [i, j], acc)
    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("D", [i, j], kb.load("D", [i, j]) * beta)
    with kb.loop_nest(("i", "j", "k"), (n, n, n)) as (i, j, k):
        acc = kb.load("D", [i, j]) + kb.load("tmp", [i, k]) * kb.load("C", [k, j])
        kb.store("D", [i, j], acc)
    return kb.finish()


@register_workload("3mm", kind="kernel", tags=("polybench", "linear-algebra", "multi-loop"))
def build_3mm(n: int = N) -> ModuleOp:
    """G := (A*B) * (C*D) (three matrix multiplications)."""
    kb = KernelBuilder("3mm")
    kb.add_input("A", (n, n))
    kb.add_input("B", (n, n))
    kb.add_input("C", (n, n))
    kb.add_input("D", (n, n))
    kb.add_output("G", (n, n))
    kb.add_local("E", (n, n))
    kb.add_local("F", (n, n))

    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("E", [i, j], kb.constant(0.0))
    with kb.loop_nest(("i", "j", "k"), (n, n, n)) as (i, j, k):
        kb.store("E", [i, j], kb.load("E", [i, j]) + kb.load("A", [i, k]) * kb.load("B", [k, j]))
    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("F", [i, j], kb.constant(0.0))
    with kb.loop_nest(("i", "j", "k"), (n, n, n)) as (i, j, k):
        kb.store("F", [i, j], kb.load("F", [i, j]) + kb.load("C", [i, k]) * kb.load("D", [k, j]))
    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("G", [i, j], kb.constant(0.0))
    with kb.loop_nest(("i", "j", "k"), (n, n, n)) as (i, j, k):
        kb.store("G", [i, j], kb.load("G", [i, j]) + kb.load("E", [i, k]) * kb.load("F", [k, j]))
    return kb.finish()


@register_workload("atax", kind="kernel", tags=("polybench", "linear-algebra", "multi-loop"))
def build_atax(n: int = N) -> ModuleOp:
    """y := A^T (A x)."""
    kb = KernelBuilder("atax")
    kb.add_input("A", (n, n))
    kb.add_input("x", (n,))
    kb.add_output("y", (n,))
    kb.add_local("tmp", (n,))

    with kb.loop("i", n) as i:
        kb.store("tmp", [i], kb.constant(0.0))
    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("tmp", [i], kb.load("tmp", [i]) + kb.load("A", [i, j]) * kb.load("x", [j]))
    with kb.loop("j", n) as j:
        kb.store("y", [j], kb.constant(0.0))
    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("y", [j], kb.load("y", [j]) + kb.load("A", [i, j]) * kb.load("tmp", [i]))
    return kb.finish()


@register_workload("bicg", kind="kernel", tags=("polybench", "linear-algebra", "single-loop"))
def build_bicg(n: int = N) -> ModuleOp:
    """s := A^T r ; q := A p (fused into one band -> single-loop kernel)."""
    kb = KernelBuilder("bicg")
    kb.add_input("A", (n, n))
    kb.add_input("p", (n,))
    kb.add_input("r", (n,))
    kb.add_inout("s", (n,))
    kb.add_inout("q", (n,))

    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("s", [j], kb.load("s", [j]) + kb.load("r", [i]) * kb.load("A", [i, j]))
        kb.store("q", [i], kb.load("q", [i]) + kb.load("A", [i, j]) * kb.load("p", [j]))
    return kb.finish()


@register_workload("mvt", kind="kernel", tags=("polybench", "linear-algebra", "multi-loop"))
def build_mvt(n: int = N) -> ModuleOp:
    """x1 := x1 + A y1 ; x2 := x2 + A^T y2 (two independent bands)."""
    kb = KernelBuilder("mvt")
    kb.add_input("A", (n, n))
    kb.add_input("y1", (n,))
    kb.add_input("y2", (n,))
    kb.add_inout("x1", (n,))
    kb.add_inout("x2", (n,))

    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("x1", [i], kb.load("x1", [i]) + kb.load("A", [i, j]) * kb.load("y1", [j]))
    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        kb.store("x2", [i], kb.load("x2", [i]) + kb.load("A", [j, i]) * kb.load("y2", [j]))
    return kb.finish()


@register_workload("gesummv", kind="kernel", tags=("polybench", "blas", "single-loop"))
def build_gesummv(n: int = N) -> ModuleOp:
    """y := alpha*A*x + beta*B*x (single band)."""
    kb = KernelBuilder("gesummv")
    kb.add_input("A", (n, n))
    kb.add_input("B", (n, n))
    kb.add_input("x", (n,))
    kb.add_inout("y", (n,))
    alpha, beta = 1.5, 1.2

    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        contribution = (
            kb.load("A", [i, j]) * kb.load("x", [j]) * alpha
            + kb.load("B", [i, j]) * kb.load("x", [j]) * beta
        )
        kb.store("y", [i], kb.load("y", [i]) + contribution)
    return kb.finish()


@register_workload("correlation", kind="kernel", tags=("polybench", "data-mining", "multi-loop"))
def build_correlation(n: int = N) -> ModuleOp:
    """Correlation matrix of an (n x n) data set (mean, stddev, normalize, corr)."""
    kb = KernelBuilder("correlation")
    kb.add_inout("data", (n, n))
    kb.add_output("corr", (n, n))
    kb.add_local("mean", (n,))
    kb.add_local("stddev", (n,))
    float_n = float(n)

    with kb.loop_nest(("j", "i"), (n, n)) as (j, i):
        kb.store("mean", [j], kb.load("mean", [j]) + kb.load("data", [i, j]))
    with kb.loop("j", n) as j:
        kb.store("mean", [j], kb.load("mean", [j]) / float_n)
    with kb.loop_nest(("j", "i"), (n, n)) as (j, i):
        diff = kb.load("data", [i, j]) - kb.load("mean", [j])
        kb.store("stddev", [j], kb.load("stddev", [j]) + diff * diff)
    with kb.loop("j", n) as j:
        kb.store("stddev", [j], kb.sqrt(kb.load("stddev", [j]) / float_n))
    with kb.loop_nest(("i", "j"), (n, n)) as (i, j):
        normalized = (kb.load("data", [i, j]) - kb.load("mean", [j])) / kb.load("stddev", [j])
        kb.store("data", [i, j], normalized)
    with kb.loop_nest(("i", "j", "k"), (n, n, n)) as (i, j, k):
        acc = kb.load("corr", [i, j]) + kb.load("data", [k, i]) * kb.load("data", [k, j])
        kb.store("corr", [i, j], acc)
    return kb.finish()


@register_workload("jacobi-2d", kind="kernel", tags=("polybench", "stencil", "multi-loop"))
def build_jacobi_2d(n: int = N, tsteps: int = TSTEPS) -> ModuleOp:
    """2-D Jacobi stencil alternating between arrays A and B."""
    kb = KernelBuilder("jacobi-2d")
    kb.add_inout("A", (n, n))
    kb.add_inout("B", (n, n))
    inner = n - 2

    for _ in range(tsteps):
        with kb.loop_nest(("i", "j"), (inner, inner)) as (i, j):
            acc = (
                kb.load("A", [i + 1, j + 1])
                + kb.load("A", [i + 1, j])
                + kb.load("A", [i + 1, j + 2])
                + kb.load("A", [i + 2, j + 1])
                + kb.load("A", [i, j + 1])
            ) * 0.2
            kb.store("B", [i + 1, j + 1], acc)
        with kb.loop_nest(("i", "j"), (inner, inner)) as (i, j):
            acc = (
                kb.load("B", [i + 1, j + 1])
                + kb.load("B", [i + 1, j])
                + kb.load("B", [i + 1, j + 2])
                + kb.load("B", [i + 2, j + 1])
                + kb.load("B", [i, j + 1])
            ) * 0.2
            kb.store("A", [i + 1, j + 1], acc)
    return kb.finish()


@register_workload("seidel-2d", kind="kernel", tags=("polybench", "stencil", "single-loop"))
def build_seidel_2d(n: int = N, tsteps: int = TSTEPS) -> ModuleOp:
    """2-D Gauss-Seidel stencil (loop-carried dependences, single band)."""
    kb = KernelBuilder("seidel-2d")
    kb.add_inout("A", (n, n))
    inner = n - 2

    with kb.loop_nest(("t", "i", "j"), (tsteps, inner, inner)) as (t, i, j):
        acc = (
            kb.load("A", [i, j])
            + kb.load("A", [i, j + 1])
            + kb.load("A", [i, j + 2])
            + kb.load("A", [i + 1, j])
            + kb.load("A", [i + 1, j + 1])
            + kb.load("A", [i + 1, j + 2])
            + kb.load("A", [i + 2, j])
            + kb.load("A", [i + 2, j + 1])
            + kb.load("A", [i + 2, j + 2])
        ) / 9.0
        kb.store("A", [i + 1, j + 1], acc)
    return kb.finish()


@register_workload("symm", kind="kernel", tags=("polybench", "blas", "single-loop"))
def build_symm(n: int = N) -> ModuleOp:
    """Symmetric matrix multiply C := alpha*A*B + beta*C (single band)."""
    kb = KernelBuilder("symm")
    kb.add_input("A", (n, n))
    kb.add_input("B", (n, n))
    kb.add_inout("C", (n, n))
    alpha, beta = 1.5, 1.2

    with kb.loop_nest(("i", "j", "k"), (n, n, n)) as (i, j, k):
        acc = (
            kb.load("C", [i, j]) * beta
            + kb.load("A", [i, k]) * kb.load("B", [k, j]) * alpha
        )
        kb.store("C", [i, j], acc)
    return kb.finish()


@register_workload("syr2k", kind="kernel", tags=("polybench", "blas", "single-loop"))
def build_syr2k(n: int = N) -> ModuleOp:
    """Symmetric rank-2k update C := alpha*(A*B^T + B*A^T) + beta*C (single band)."""
    kb = KernelBuilder("syr2k")
    kb.add_input("A", (n, n))
    kb.add_input("B", (n, n))
    kb.add_inout("C", (n, n))
    alpha = 1.5

    with kb.loop_nest(("i", "j", "k"), (n, n, n)) as (i, j, k):
        acc = (
            kb.load("C", [i, j])
            + kb.load("A", [i, k]) * kb.load("B", [j, k]) * alpha
            + kb.load("B", [i, k]) * kb.load("A", [j, k]) * alpha
        )
        kb.store("C", [i, j], acc)
    return kb.finish()


POLYBENCH_KERNELS: Dict[str, Callable[[], ModuleOp]] = {
    "2mm": build_2mm,
    "3mm": build_3mm,
    "atax": build_atax,
    "bicg": build_bicg,
    "correlation": build_correlation,
    "gesummv": build_gesummv,
    "jacobi-2d": build_jacobi_2d,
    "mvt": build_mvt,
    "seidel-2d": build_seidel_2d,
    "symm": build_symm,
    "syr2k": build_syr2k,
}

#: Kernels with more than one loop band, where dataflow optimization applies.
MULTI_LOOP_KERNELS: List[str] = [
    "2mm",
    "3mm",
    "atax",
    "correlation",
    "jacobi-2d",
    "mvt",
]

#: Single-band kernels where HIDA performs on par with ScaleHLS.
SINGLE_LOOP_KERNELS: List[str] = ["bicg", "gesummv", "seidel-2d", "symm", "syr2k"]


def kernel_names() -> List[str]:
    """Names of all PolyBench kernels, in the paper's Table 7 order."""
    return list(POLYBENCH_KERNELS)


def build_kernel(name: str) -> ModuleOp:
    """Build a PolyBench kernel module by name.

    .. deprecated:: thin wrapper over the :mod:`repro.workloads` registry —
       new code should use ``get_workload(name).build_module()``, which also
       understands parameterized ids like ``"2mm@n=16"``.
    """
    from ...workloads import get_workload

    return get_workload(name, kind="kernel").build_module()
