"""repro.backend — code generation back-ends (HLS C++ emitter)."""

from .hls_cpp_emitter import HlsCppEmitter, emit_hls_cpp

__all__ = ["HlsCppEmitter", "emit_hls_cpp"]
