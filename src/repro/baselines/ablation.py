"""Ablation modes of the HIDA parallelization (Figure 11, Tables 5 and 6).

Four configurations are compared: the full intensity- and connection-aware
approach (IA+CA), intensity-only (IA), connection-only (CA) and the naive
mode that applies the maximum parallel factor to every node with no
alignment.  Each variant is expressed as a *pipeline spec* — the identical
Figure-3 stage sequence with only the ``parallelize`` stage reconfigured —
so ablations are serializable, diffable one-liners instead of flag
combinations (:func:`ablation_pipeline_spec` prints them; the spec
round-trips through :func:`repro.compiler.parse_pipeline`).

A penalty model applies to the connection-unaware modes whose misaligned
unroll factors force the compiler to emit fine-grained access control logic
(the "flawed designs" the paper observes at large parallel factors).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..compiler import Compiler
from ..hida.pipeline import CompileResult
from ..ir.builtin import ModuleOp

__all__ = [
    "ABLATION_MODES",
    "AblationOutcome",
    "ablation_pipeline_spec",
    "run_ablation_mode",
]

#: Mode name -> (intensity_aware, connection_aware).
ABLATION_MODES: Dict[str, tuple] = {
    "ia+ca": (True, True),
    "ia": (True, False),
    "ca": (False, True),
    "naive": (False, False),
}

#: Extra DSPs spent on address calculation per misaligned connection.
_MISALIGNMENT_DSP = 8.0
#: Throughput degradation per misaligned connection (control-logic stalls).
_MISALIGNMENT_SLOWDOWN = 1.6


def ablation_pipeline_spec(
    mode: str, max_parallel_factor: int, tile_size: int = 16
) -> str:
    """The printed pipeline spec of one Figure-11 ablation variant.

    Derived from the same options->spec bridge the default pipeline uses
    (so the stage sequence can never drift from what ``compile_module``
    runs), with the mode-defining ``ia``/``ca`` switches kept explicit in
    the printed form even when they equal the stage defaults.
    """
    if mode not in ABLATION_MODES:
        raise KeyError(f"unknown ablation mode {mode!r}; options: {list(ABLATION_MODES)}")
    from ..compiler import spec_from_options
    from ..hida.pipeline import HidaOptions

    intensity_aware, connection_aware = ABLATION_MODES[mode]
    spec = spec_from_options(
        HidaOptions(
            max_parallel_factor=max_parallel_factor,
            tile_size=tile_size,
            intensity_aware=intensity_aware,
            connection_aware=connection_aware,
        )
    )
    for stage in spec:
        if stage.name == "parallelize":
            stage.options.setdefault("ia", [str(int(intensity_aware))])
            stage.options.setdefault("ca", [str(int(connection_aware))])
            order = ("factor", "ia", "ca", "target-ii")
            stage.options = {k: stage.options[k] for k in order if k in stage.options}
    return spec.print()


@dataclasses.dataclass
class AblationOutcome:
    """One (mode, parallel factor) sample of the ablation study."""

    mode: str
    max_parallel_factor: int
    throughput: float
    dsp: float
    bram: float
    lut: float
    misalignments: int
    result: CompileResult
    #: The printed pipeline spec this outcome was compiled with.
    pipeline_spec: str = ""

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "parallel_factor": self.max_parallel_factor,
            "throughput": self.throughput,
            "dsp": self.dsp,
            "bram": self.bram,
            "lut": self.lut,
            "misalignments": self.misalignments,
            "pipeline_spec": self.pipeline_spec,
        }


def run_ablation_mode(
    module: ModuleOp,
    mode: str,
    max_parallel_factor: int,
    platform: str = "vu9p-slr",
    tile_size: int = 16,
) -> AblationOutcome:
    """Compile ``module`` under one ablation mode and apply misalignment costs."""
    spec = ablation_pipeline_spec(mode, max_parallel_factor, tile_size)
    _, connection_aware = ABLATION_MODES[mode]
    compiler = Compiler.from_spec(spec, platform=platform)
    result = compiler.run(module)
    resources = result.estimate.resources
    throughput = result.throughput
    dsp = resources.dsp
    lut = resources.lut
    bram = resources.bram

    misalignments = result.misalignments
    if misalignments and not connection_aware:
        # Misaligned inter-node memory layouts require per-element address
        # resolution and serialization of conflicting bank accesses.
        dsp += _MISALIGNMENT_DSP * misalignments
        lut += 400.0 * misalignments
        throughput /= _MISALIGNMENT_SLOWDOWN ** min(misalignments, 8)

    return AblationOutcome(
        mode=mode,
        max_parallel_factor=max_parallel_factor,
        throughput=throughput,
        dsp=dsp,
        bram=bram,
        lut=lut,
        misalignments=misalignments,
        result=result,
        pipeline_spec=compiler.spec_text(),
    )
