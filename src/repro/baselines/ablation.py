"""Ablation modes of the HIDA parallelization (Figure 11, Tables 5 and 6).

Four configurations are compared: the full intensity- and connection-aware
approach (IA+CA), intensity-only (IA), connection-only (CA) and the naive
mode that applies the maximum parallel factor to every node with no
alignment.  All four run through the identical HIDA pipeline; only the
parallelization policy differs, plus a penalty model for the
connection-unaware modes whose misaligned unroll factors force the compiler
to emit fine-grained access control logic (the "flawed designs" the paper
observes at large parallel factors).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..hida.pipeline import CompileResult, HidaOptions, compile_module
from ..ir.builtin import ModuleOp

__all__ = ["ABLATION_MODES", "AblationOutcome", "run_ablation_mode"]

#: Mode name -> (intensity_aware, connection_aware).
ABLATION_MODES: Dict[str, tuple] = {
    "ia+ca": (True, True),
    "ia": (True, False),
    "ca": (False, True),
    "naive": (False, False),
}

#: Extra DSPs spent on address calculation per misaligned connection.
_MISALIGNMENT_DSP = 8.0
#: Throughput degradation per misaligned connection (control-logic stalls).
_MISALIGNMENT_SLOWDOWN = 1.6


@dataclasses.dataclass
class AblationOutcome:
    """One (mode, parallel factor) sample of the ablation study."""

    mode: str
    max_parallel_factor: int
    throughput: float
    dsp: float
    bram: float
    lut: float
    misalignments: int
    result: CompileResult

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "parallel_factor": self.max_parallel_factor,
            "throughput": self.throughput,
            "dsp": self.dsp,
            "bram": self.bram,
            "lut": self.lut,
            "misalignments": self.misalignments,
        }


def run_ablation_mode(
    module: ModuleOp,
    mode: str,
    max_parallel_factor: int,
    platform: str = "vu9p-slr",
    tile_size: int = 16,
) -> AblationOutcome:
    """Compile ``module`` under one ablation mode and apply misalignment costs."""
    if mode not in ABLATION_MODES:
        raise KeyError(f"unknown ablation mode {mode!r}; options: {list(ABLATION_MODES)}")
    intensity_aware, connection_aware = ABLATION_MODES[mode]
    options = HidaOptions(
        platform=platform,
        max_parallel_factor=max_parallel_factor,
        tile_size=tile_size,
        intensity_aware=intensity_aware,
        connection_aware=connection_aware,
    )
    result = compile_module(module, options)
    resources = result.estimate.resources
    throughput = result.throughput
    dsp = resources.dsp
    lut = resources.lut
    bram = resources.bram

    misalignments = result.misalignments
    if misalignments and not connection_aware:
        # Misaligned inter-node memory layouts require per-element address
        # resolution and serialization of conflicting bank accesses.
        dsp += _MISALIGNMENT_DSP * misalignments
        lut += 400.0 * misalignments
        throughput /= _MISALIGNMENT_SLOWDOWN ** min(misalignments, 8)

    return AblationOutcome(
        mode=mode,
        max_parallel_factor=max_parallel_factor,
        throughput=throughput,
        dsp=dsp,
        bram=bram,
        lut=lut,
        misalignments=misalignments,
        result=result,
    )
