"""repro.baselines — comparison systems used in the paper's evaluation."""

from .ablation import (
    ABLATION_MODES,
    AblationOutcome,
    ablation_pipeline_spec,
    run_ablation_mode,
)
from .dnnbuilder import (
    DNNBuilderResult,
    UnsupportedModelError,
    compile_dnnbuilder_baseline,
)
from .scalehls import ScaleHLSResult, compile_scalehls_baseline
from .soff import SOFF_THROUGHPUT_SAMPLES_PER_S, soff_throughput
from .vitis import compile_vitis_baseline

__all__ = [
    "ABLATION_MODES",
    "AblationOutcome",
    "ablation_pipeline_spec",
    "run_ablation_mode",
    "DNNBuilderResult",
    "UnsupportedModelError",
    "compile_dnnbuilder_baseline",
    "ScaleHLSResult",
    "compile_scalehls_baseline",
    "SOFF_THROUGHPUT_SAMPLES_PER_S",
    "soff_throughput",
    "compile_vitis_baseline",
]
