"""SOFF reference numbers for the C++ kernel comparison (Table 7).

The HIDA paper ports the SOFF [37] results directly from the SOFF paper
(which compared against SDAccel, the previous name of Vitis); we keep the
same ported throughput numbers as reference constants so the Table 7
harness can report the same columns.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["SOFF_THROUGHPUT_SAMPLES_PER_S", "soff_throughput"]

#: Throughput (samples per second) reported for SOFF in Table 7 of the HIDA
#: paper.  Kernels SOFF did not report are absent.
SOFF_THROUGHPUT_SAMPLES_PER_S: Dict[str, float] = {
    "2mm": 30.67,
    "atax": 2173.17,
    "bicg": 2295.75,
    "correlation": 3.96,
    "gesummv": 3466.70,
    "mvt": 870.01,
}


def soff_throughput(kernel: str) -> Optional[float]:
    """SOFF throughput for a kernel, or None when SOFF did not report it."""
    return SOFF_THROUGHPUT_SAMPLES_PER_S.get(kernel)
