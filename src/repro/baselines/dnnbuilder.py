"""DNNBuilder-style baseline: hand-designed RTL DNN pipeline IPs.

DNNBuilder [77] instantiates one RTL IP per layer, connects them in a
dataflow pipeline, and allocates channel-level parallelism (channel parallel
factor, CPF, and kernel parallel factor, KPF) proportionally to each layer's
compute so the pipeline is rate-balanced.  It achieves very high DSP
efficiency, but

* parallelism is restricted to the channel dimensions (it cannot exploit
  feature-map width/height parallelism), and
* it only supports standard CNN layers: models with shortcut paths
  (ResNet-18) or depthwise convolutions (MobileNet) are unsupported, as the
  paper notes.

The baseline is analytical: it consumes the traced layer summary rather
than the loop-level IR, mirroring how DNNBuilder generates designs from a
layer graph description.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional, Sequence

from ..estimation.platform import get_platform
from ..frontend.nn.tracer import layer_summary
from ..ir.builtin import ModuleOp

__all__ = ["DNNBuilderResult", "UnsupportedModelError", "compile_dnnbuilder_baseline"]


class UnsupportedModelError(RuntimeError):
    """Raised for models DNNBuilder cannot implement (shortcuts, depthwise)."""


@dataclasses.dataclass
class DNNBuilderResult:
    """Analytical estimate of a DNNBuilder pipeline."""

    throughput: float
    dsp: float
    bram: float
    macs_per_sample: float
    layer_parallelism: Dict[int, int]
    clock_mhz: float

    @property
    def dsp_efficiency(self) -> float:
        if self.dsp <= 0:
            return 0.0
        return (self.throughput * self.macs_per_sample) / (
            self.dsp * self.clock_mhz * 1e6
        )

    def summary(self) -> dict:
        return {
            "throughput": self.throughput,
            "dsp": self.dsp,
            "bram": self.bram,
            "dsp_efficiency": self.dsp_efficiency,
        }


_UNSUPPORTED_OPS = {"linalg.add", "linalg.depthwise_conv2d"}


def _channel_parallel_limit(op_name: str, out_shape: Sequence[int], macs: int) -> int:
    """Maximum CPFxKPF parallelism available from the channel dimensions."""
    if op_name == "linalg.linear":
        return max(int(out_shape[-1]), 1)
    if len(out_shape) >= 2:
        return max(int(out_shape[1]), 1)
    return 1


def compile_dnnbuilder_baseline(
    module: ModuleOp,
    platform: str = "vu9p-slr",
    dsp_budget: Optional[float] = None,
) -> DNNBuilderResult:
    """Estimate a DNNBuilder pipeline for a traced (linalg-level) model.

    ``module`` may also be a registry workload id (``"vgg16"``) or
    :class:`~repro.workloads.Workload` handle.  ``dsp_budget`` defaults to
    the platform's full DSP count; the paper constrains both frameworks to
    the same resources for fairness.
    """
    from ..workloads import as_module

    module = as_module(module)
    target = get_platform(platform)
    budget = dsp_budget if dsp_budget is not None else target.dsps

    summary = layer_summary(module)
    for name, _, _, _ in summary:
        if name in _UNSUPPORTED_OPS:
            raise UnsupportedModelError(
                f"DNNBuilder does not support {name} (shortcut or depthwise layer)"
            )
    layers = [
        (name, label, shape, macs) for name, label, shape, macs in summary if macs > 0
    ]
    if not layers:
        raise UnsupportedModelError("model has no compute layers")

    total_macs = float(sum(macs for _, _, _, macs in layers))

    # Rate balancing: allocate parallelism proportional to each layer's MACs,
    # restricted to powers of two and to the channel dimensions.
    parallelism: Dict[int, int] = {}
    dsp_used = 0.0
    bram = 0.0
    for index, (name, _, shape, macs) in enumerate(layers):
        share = budget * macs / total_macs
        factor = 2 ** int(math.floor(math.log2(max(share, 1.0))))
        limit = _channel_parallel_limit(name, shape, macs)
        factor = max(1, min(factor, limit))
        parallelism[index] = factor
        dsp_used += factor
        # Line-buffer style on-chip storage: one ping-pong row buffer per IP.
        if len(shape) == 4:
            row_bits = shape[1] * shape[3] * 8 * 2
            bram += max(1.0, row_bits / (18 * 1024))
        else:
            bram += 1.0

    # The pipeline interval is set by the slowest IP.
    interval = max(
        macs / parallelism[index] for index, (_, _, _, macs) in enumerate(layers)
    )
    throughput = target.clock_hz / max(interval, 1.0)
    return DNNBuilderResult(
        throughput=throughput,
        dsp=dsp_used,
        bram=bram,
        macs_per_sample=total_macs,
        layer_parallelism=parallelism,
        clock_mhz=target.clock_mhz,
    )
