"""The Vitis-HLS-only baseline ("solely optimized by Vitis HLS").

Vitis HLS applies loop pipelining to innermost loops automatically but does
not unroll loops, partition arrays, restructure the program into dataflow
tasks, or manage external memory tiling.  The baseline therefore:

* pipelines every innermost loop (II = 1 target),
* keeps every loop at unroll factor 1,
* executes all loop bands sequentially (no dataflow overlap).
"""

from __future__ import annotations


from ..estimation.platform import get_platform
from ..estimation.qor import DesignEstimate, QoREstimator
from ..ir.builtin import ModuleOp
from ..transforms.loop_transforms import pipeline_innermost_loops

__all__ = ["compile_vitis_baseline"]


def compile_vitis_baseline(
    module: ModuleOp, platform: str = "zu3eg"
) -> DesignEstimate:
    """Estimate ``module`` as Vitis HLS would compile it out of the box.

    ``module`` may also be a registry workload id (``"atax"``) or
    :class:`~repro.workloads.Workload` handle, resolved lazily.
    """
    from ..dialects import linalg
    from ..transforms.linalg_to_affine import lower_linalg_to_affine
    from ..workloads import as_module

    module = as_module(module)
    target = get_platform(platform)
    if any(isinstance(op, linalg.LinalgOp) for op in module.walk()):
        lower_linalg_to_affine(module)
    for func in module.functions:
        pipeline_innermost_loops(func)
    estimator = QoREstimator(target)
    func = module.functions[0]
    return estimator.estimate_function(func, dataflow=False)
