"""ScaleHLS-style baseline (the paper's primary comparison framework).

ScaleHLS [70] automatically legalizes a computation graph into a dataflow
model and applies loop/directive optimizations per task, but — as the paper
discusses — it

* ignores the inter-task design-space coupling: every task is parallelized
  towards the maximum parallel factor independently (no intensity
  proportionality and no connection alignment);
* has no external memory access support, so *all* intermediate results and
  weights must stay on-chip (the source of the memory gap in Figure 9);
* performs no multi-producer elimination or data-path balancing, so shortcut
  structures (ResNet) back-pressure the pipeline.

The baseline reuses the same IR, lowering and estimation substrate as HIDA
so the comparison isolates exactly these policy differences.
"""

from __future__ import annotations

import dataclasses
import time

from ..dialects.memref import GetGlobalOp
from ..estimation.platform import get_platform
from ..estimation.qor import DesignEstimate, QoREstimator
from ..hida.functional import construct_functional_dataflow, fuse_dataflow_tasks
from ..hida.parallelize import (
    ParallelizationOptions,
    parallelize_function_bands,
    parallelize_schedule,
)
from ..hida.structural import lower_to_structural_dataflow
from ..ir.builtin import ModuleOp
from ..transforms.canonicalize import eliminate_dead_code
from ..transforms.linalg_to_affine import lower_linalg_to_affine
from ..dialects import linalg

__all__ = ["ScaleHLSResult", "compile_scalehls_baseline"]


@dataclasses.dataclass
class ScaleHLSResult:
    """Outcome of the ScaleHLS-style compilation."""

    module: ModuleOp
    estimate: DesignEstimate
    compile_seconds: float

    @property
    def throughput(self) -> float:
        return self.estimate.throughput

    def summary(self) -> dict:
        resources = self.estimate.resources
        return {
            "throughput": self.throughput,
            "latency_cycles": self.estimate.latency,
            "interval_cycles": self.estimate.interval,
            "lut": resources.lut,
            "ff": resources.ff,
            "dsp": resources.dsp,
            "bram": resources.bram,
            "compile_seconds": self.compile_seconds,
        }


def _weight_bram(module: ModuleOp) -> float:
    """BRAM cost of keeping every weight tensor on-chip (18Kb blocks)."""
    total = 0.0
    for op in module.walk():
        if isinstance(op, GetGlobalOp):
            memref_type = op.result().type
            bits = memref_type.num_elements * memref_type.element_type.bitwidth
            total += max(1.0, bits / (18 * 1024))
    return total


def compile_scalehls_baseline(
    module: ModuleOp,
    platform: str = "vu9p-slr",
    max_parallel_factor: int = 32,
    enable_dataflow: bool = True,
) -> ScaleHLSResult:
    """Compile ``module`` with ScaleHLS-style policies and estimate its QoR.

    ``module`` may also be a registry workload id (``"resnet18@batch=4"``)
    or :class:`~repro.workloads.Workload` handle, resolved lazily.
    """
    from ..workloads import as_module

    module = as_module(module)
    target = get_platform(platform)
    estimator = QoREstimator(target)
    start = time.perf_counter()

    has_linalg = any(isinstance(op, linalg.LinalgOp) for op in module.walk())
    construct_functional_dataflow(module)
    fuse_dataflow_tasks(module)
    if has_linalg:
        lower_linalg_to_affine(module)
        eliminate_dead_code(module)
    schedules = lower_to_structural_dataflow(module)

    # ScaleHLS keeps every intermediate buffer on-chip: no spilling, no
    # tiling, single-frame (non ping-pong) buffers unless dataflow demands
    # double buffering, which ScaleHLS does apply between tasks.
    for schedule in schedules:
        for buffer in schedule.buffers:
            buffer.set_memory_kind("bram_t2p")

    options = ParallelizationOptions.naive(max_parallel_factor)
    for schedule in schedules:
        parallelize_schedule(schedule, options)
    if not schedules:
        for func in module.functions:
            parallelize_function_bands(func, options)

    if schedules:
        estimates = [
            estimator.estimate_schedule(schedule, dataflow=enable_dataflow)
            for schedule in schedules
        ]
        estimate = max(estimates, key=lambda e: e.latency)
    else:
        estimate = estimator.estimate_function(module.functions[0], dataflow=False)

    # All weights stay on-chip as well (no external memory support).
    estimate.resources.bram += _weight_bram(module)

    return ScaleHLSResult(
        module=module,
        estimate=estimate,
        compile_seconds=time.perf_counter() - start,
    )
