"""repro.estimation — the Vitis-HLS-style QoR estimation substrate.

Platform specifications, an analytical latency/resource model, a
coarse-grained dataflow simulator and the evaluation metrics used in the
paper (DSP efficiency, throughput, memory reduction).
"""

from .dataflow_sim import ChannelSpec, build_channels, simulate_dataflow, simulate_schedule
from .metrics import (
    dsp_efficiency,
    geometric_mean,
    memory_reduction,
    speedup,
    throughput_samples_per_second,
)
from .platform import PLATFORMS, PYNQ_Z2, VU9P_SLR, ZU3EG, Platform, get_platform
from .qor import (
    SIMULATION_FRAMES,
    DesignEstimate,
    NodeEstimate,
    QoREstimator,
    ResourceUsage,
    dsp_cost_of_op,
    estimate_band,
    estimate_buffer,
    estimate_node,
    simulate_design,
    simulate_node,
)

__all__ = [
    "ChannelSpec",
    "build_channels",
    "simulate_dataflow",
    "simulate_schedule",
    "dsp_efficiency",
    "geometric_mean",
    "memory_reduction",
    "speedup",
    "throughput_samples_per_second",
    "PLATFORMS",
    "PYNQ_Z2",
    "VU9P_SLR",
    "ZU3EG",
    "Platform",
    "get_platform",
    "DesignEstimate",
    "NodeEstimate",
    "QoREstimator",
    "ResourceUsage",
    "dsp_cost_of_op",
    "estimate_band",
    "estimate_buffer",
    "estimate_node",
    "simulate_design",
    "simulate_node",
    "SIMULATION_FRAMES",
]
