"""Evaluation metrics: DSP efficiency, throughput helpers, geometric means."""

from __future__ import annotations

import math
from typing import Iterable


__all__ = [
    "dsp_efficiency",
    "throughput_samples_per_second",
    "geometric_mean",
    "speedup",
    "memory_reduction",
]


def dsp_efficiency(
    throughput: float,
    macs_per_sample: float,
    dsp_count: float,
    frequency_hz: float,
    macs_per_dsp_per_cycle: float = 1.0,
) -> float:
    """DSP efficiency as defined in Equation (1) of the paper.

    ``Efficiency = (Throughput x OPs) / (DSP x Frequency)`` where OPs is the
    MAC count per sample.  A value of 1.0 means every instantiated DSP
    performs one MAC per cycle without ever stalling.
    """
    if dsp_count <= 0 or frequency_hz <= 0:
        return 0.0
    return (throughput * macs_per_sample) / (
        dsp_count * frequency_hz * macs_per_dsp_per_cycle
    )


def throughput_samples_per_second(interval_cycles: float, clock_mhz: float) -> float:
    """Throughput from a steady-state initiation interval."""
    if interval_cycles <= 0:
        return 0.0
    return clock_mhz * 1e6 / interval_cycles


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (ignores non-positive entries)."""
    filtered = [v for v in values if v > 0]
    if not filtered:
        return 0.0
    return math.exp(sum(math.log(v) for v in filtered) / len(filtered))


def speedup(new: float, baseline: float) -> float:
    """Throughput improvement of ``new`` over ``baseline``."""
    if baseline <= 0:
        return float("inf") if new > 0 else 0.0
    return new / baseline


def memory_reduction(baseline_bram: float, optimized_bram: float) -> float:
    """On-chip memory reduction factor (Figure 9)."""
    if optimized_bram <= 0:
        return float("inf") if baseline_bram > 0 else 1.0
    return baseline_bram / optimized_bram
