"""Quality-of-results (QoR) estimation: latency and resource models.

This module is the stand-in for AMD Vitis HLS synthesis reports.  HIDA's
optimizer (like ScaleHLS, whose estimator it reuses) drives its DSE with an
analytical QoR model of exactly this form, so the reproduction exercises the
same code path the paper describes; only the calibration constants differ
from a real device.

The model captures the effects that drive the paper's comparisons:

* loop pipelining and unrolling shrink iteration latency;
* the initiation interval (II) is limited by memory ports — an unrolled body
  that needs more elements per cycle than the buffer partition provides
  stalls, which is what makes connection-aware (CA) parallelization matter;
* external (DRAM) accesses are limited by AXI bandwidth and burst length —
  small tiles hurt both bandwidth and DSP count (address generation), which
  is what the tile-size ablation of Figure 10 measures;
* multipliers consume DSPs proportionally to the unroll product, buffers
  consume BRAM proportionally to partition banks and ping-pong depth.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..dialects.affine import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    enclosing_loops,
)
from ..dialects.arith import is_compute_op
from ..dialects.dataflow import BufferOp, NodeOp, ScheduleOp
from ..dialects.hls import partition_of
from ..dialects.memref import AllocOp
from ..ir.core import Operation, Value
from ..ir.types import MemRefType
from ..transforms.array_partition import partition_factors_of_value
from ..transforms.loop_transforms import innermost_loops_of, loop_bands_of
from .platform import Platform

__all__ = [
    "ResourceUsage",
    "NodeEstimate",
    "DesignEstimate",
    "dsp_cost_of_op",
    "estimate_band",
    "estimate_node",
    "estimate_buffer",
    "simulate_node",
    "simulate_design",
    "QoREstimator",
]

#: Pipeline fill depth added to every pipelined loop's latency.
_PIPELINE_DEPTH = 12
#: Approximate latency of one non-pipelined loop iteration, per body op.
_SEQ_CYCLES_PER_OP = 1.5
#: Base LUT cost of a dataflow node's control logic (FSM, counters).
_NODE_BASE_LUT = 250
#: LUT cost per operator instance.
_LUT_PER_OP = 35
#: LUT cost per memory bank (multiplexing and address decode).
_LUT_PER_BANK = 18
#: Extra DSPs used for address calculation per external port when bursts are
#: short (fine-grained memory access control; see Figure 10 discussion).
_ADDR_DSP_PER_PORT = 4
#: Burst length (elements) below which external accesses lose efficiency.
_SHORT_BURST = 16


@dataclasses.dataclass
class ResourceUsage:
    """FPGA resource usage (BRAM in 18Kb blocks)."""

    lut: float = 0.0
    ff: float = 0.0
    dsp: float = 0.0
    bram: float = 0.0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            dsp=self.dsp + other.dsp,
            bram=self.bram + other.bram,
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        return ResourceUsage(
            lut=self.lut * factor,
            ff=self.ff * factor,
            dsp=self.dsp * factor,
            bram=self.bram * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {"lut": self.lut, "ff": self.ff, "dsp": self.dsp, "bram": self.bram}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "ResourceUsage":
        return cls(
            lut=float(data.get("lut", 0.0)),
            ff=float(data.get("ff", 0.0)),
            dsp=float(data.get("dsp", 0.0)),
            bram=float(data.get("bram", 0.0)),
        )

    def __repr__(self) -> str:
        return (
            f"ResourceUsage(lut={self.lut:.0f}, ff={self.ff:.0f}, "
            f"dsp={self.dsp:.0f}, bram={self.bram:.0f})"
        )


@dataclasses.dataclass
class NodeEstimate:
    """Latency/interval/resources of one dataflow node."""

    label: str
    latency: float
    interval: float
    resources: ResourceUsage
    intensity: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "latency": self.latency,
            "interval": self.interval,
            "resources": self.resources.as_dict(),
            "intensity": self.intensity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NodeEstimate":
        return cls(
            label=str(data["label"]),
            latency=float(data["latency"]),
            interval=float(data["interval"]),
            resources=ResourceUsage.from_dict(data.get("resources", {})),
            intensity=int(data.get("intensity", 0)),
        )

    def __repr__(self) -> str:
        return (
            f"NodeEstimate({self.label!r}, latency={self.latency:.0f}, "
            f"interval={self.interval:.0f}, {self.resources})"
        )


@dataclasses.dataclass
class DesignEstimate:
    """Whole-design estimate: resources, latency, steady-state interval."""

    resources: ResourceUsage
    latency: float
    interval: float
    clock_mhz: float
    node_estimates: List[NodeEstimate] = dataclasses.field(default_factory=list)
    dataflow: bool = True

    @property
    def throughput(self) -> float:
        """Samples (frames) per second at the design clock."""
        if self.interval <= 0:
            return 0.0
        return self.clock_mhz * 1e6 / self.interval

    @property
    def latency_seconds(self) -> float:
        return self.latency / (self.clock_mhz * 1e6)

    def utilization(self, platform: Platform) -> Dict[str, float]:
        return platform.utilization(self.resources.as_dict())

    def max_utilization(self, platform: Platform) -> float:
        return platform.max_utilization(self.resources.as_dict())

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe serialization, the inverse of :meth:`from_dict`.

        Used by the QoR cache: a cached estimate round-trips through JSON
        with no loss (all fields are floats, bools and strings).
        """
        return {
            "resources": self.resources.as_dict(),
            "latency": self.latency,
            "interval": self.interval,
            "clock_mhz": self.clock_mhz,
            "node_estimates": [n.to_dict() for n in self.node_estimates],
            "dataflow": self.dataflow,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DesignEstimate":
        return cls(
            resources=ResourceUsage.from_dict(data.get("resources", {})),
            latency=float(data["latency"]),
            interval=float(data["interval"]),
            clock_mhz=float(data["clock_mhz"]),
            node_estimates=[
                NodeEstimate.from_dict(n) for n in data.get("node_estimates", [])
            ],
            dataflow=bool(data.get("dataflow", True)),
        )

    def __repr__(self) -> str:
        return (
            f"DesignEstimate(throughput={self.throughput:.2f}/s, "
            f"latency={self.latency:.0f}cyc, interval={self.interval:.0f}cyc, "
            f"{self.resources})"
        )


def dsp_cost_of_op(op: Operation) -> float:
    """DSP blocks consumed by one instance of a scalar operator."""
    element = op.results[0].type if op.results else None
    width = getattr(element, "width", 32)
    if op.name in ("arith.mulf", "arith.divf"):
        return 3.0 if width >= 32 else 1.0
    if op.name == "arith.mac":
        return 5.0 if width >= 32 else 1.0
    if op.name in ("arith.muli", "arith.divi"):
        return 1.0 if width > 18 else 0.5
    if op.name in ("arith.addf", "arith.subf"):
        return 2.0 if width >= 32 else 0.0
    if op.name in ("math.exp", "math.sqrt"):
        return 6.0
    return 0.0


def _body_op_stats(loop: AffineForOp) -> Tuple[int, int, float, int, int]:
    """Statistics of one innermost loop body.

    Returns (compute ops, memory accesses, dsp per iteration, loads, stores).
    """
    compute = 0
    mem = 0
    dsp = 0.0
    loads = 0
    stores = 0
    for op in loop.body.operations:
        if isinstance(op, AffineForOp):
            continue
        if is_compute_op(op):
            compute += 1
            dsp += dsp_cost_of_op(op)
        if isinstance(op, AffineLoadOp):
            mem += 1
            loads += 1
        if isinstance(op, AffineStoreOp):
            mem += 1
            stores += 1
    return compute, mem, dsp, loads, stores


def _unroll_product(loops: Sequence[AffineForOp]) -> int:
    product = 1
    for loop in loops:
        product *= max(1, min(loop.unroll_factor, max(loop.trip_count, 1)))
    return product


def _memory_port_ii(
    loop: AffineForOp, unroll_product: int, platform: Platform
) -> float:
    """II contribution of on-chip memory-port limits.

    External (DRAM) buffers are handled separately as streaming transfers
    overlapped with compute (see :func:`_external_traffic_bytes`): HIDA's
    tiling creates local tile buffers with double buffering, so the external
    accesses do not appear on the compute loop's critical path.
    """
    worst = 1.0
    # Distinct addresses touched per cycle, per buffer: unrolled copies that
    # read the same address broadcast from one port, so only the unroll
    # factors of loops actually driving the access's subscripts multiply the
    # port demand.
    per_buffer: Dict[int, Tuple[Value, float]] = {}
    for op in loop.body.operations:
        if not isinstance(op, (AffineLoadOp, AffineStoreOp)):
            continue
        buffer = op.memref
        memref_type = buffer.type
        if isinstance(memref_type, MemRefType) and not memref_type.is_on_chip:
            continue
        distinct = 1.0
        seen_loops = set()
        positions = op.access_map.result_dim_positions()
        index_operands = list(op.index_operands)
        for position in positions:
            if position is None or position >= len(index_operands):
                continue
            iv = index_operands[position]
            owner = iv.owner
            owner_loop = owner.parent_op if owner is not None else None
            if isinstance(owner_loop, AffineForOp) and id(owner_loop) not in seen_loops:
                seen_loops.add(id(owner_loop))
                distinct *= max(1, owner_loop.unroll_factor)
        key = id(buffer)
        previous = per_buffer.get(key, (buffer, 0.0))[1]
        per_buffer[key] = (buffer, previous + distinct)
    for buffer, accesses in per_buffer.values():
        banks = 1
        factors = partition_factors_of_value(buffer)
        for factor in factors:
            banks *= max(1, factor)
        ports = banks * 2  # true dual-port BRAM
        worst = max(worst, accesses / ports)
    return worst


def _external_traffic_bytes(band_root: AffineForOp) -> float:
    """Bytes moved to/from external memory by one execution of a band.

    Assumes streaming with perfect on-chip reuse: every external buffer
    touched by the band is transferred once (its full footprint) per band
    execution, which models HIDA's tile-load / tile-compute / tile-store
    sub-node structure.
    """
    seen: Dict[int, float] = {}
    for op in band_root.walk():
        if not isinstance(op, (AffineLoadOp, AffineStoreOp)):
            continue
        buffer = op.memref
        memref_type = buffer.type
        if not isinstance(memref_type, MemRefType) or memref_type.is_on_chip:
            continue
        seen[id(buffer)] = memref_type.num_elements * (
            memref_type.element_type.bitwidth / 8.0
        )
    return sum(seen.values())


def estimate_band(
    band: Sequence[AffineForOp], platform: Platform
) -> Tuple[float, float, ResourceUsage]:
    """Latency, interval and resources of one loop band.

    The innermost loop of the band is inspected for its body statistics; the
    surrounding loops contribute their (trip / unroll) iteration counts.
    """
    if not band:
        return 1.0, 1.0, ResourceUsage()
    innermost = band[-1]
    # The band may not extend to the true innermost loop (imperfect nests);
    # walk further down if needed.
    inner_candidates = innermost_loops_of(innermost)
    target = inner_candidates[0] if inner_candidates else innermost
    compute, mem, dsp_per_iter, loads, stores = _body_op_stats(target)

    all_loops = [
        loop for loop in band[0].walk() if isinstance(loop, AffineForOp)
    ]
    iterations = 1
    for loop in all_loops:
        unroll = max(1, min(loop.unroll_factor, max(loop.trip_count, 1)))
        iterations *= max(1, math.ceil(max(loop.trip_count, 1) / unroll))
    unroll_product = _unroll_product(all_loops)

    pipelined = any(loop.is_pipelined for loop in all_loops)
    ii = 1.0
    if pipelined:
        # Recurrence bound: a carried dependence chain caps the achievable
        # II regardless of the directive, exactly like scheduling would.
        from ..analysis.recurrence import pipeline_rec_mii

        target_ii = max(loop.target_ii for loop in all_loops if loop.is_pipelined)
        rec_mii = max(
            pipeline_rec_mii(loop) for loop in all_loops if loop.is_pipelined
        )
        ii = max(
            float(target_ii),
            float(rec_mii),
            _memory_port_ii(target, unroll_product, platform),
        )
        latency = iterations * ii + _PIPELINE_DEPTH
    else:
        per_iter = max(2.0, (compute + mem) * _SEQ_CYCLES_PER_OP)
        latency = iterations * per_iter
        ii = per_iter

    # External memory traffic streams concurrently with compute (tile-level
    # double buffering); the band is bound by whichever is slower.
    traffic = _external_traffic_bytes(band[0])
    if traffic:
        transfer_cycles = traffic / platform.dram_bytes_per_cycle + platform.dram_latency_cycles
        latency = max(latency, transfer_cycles)

    dsp = dsp_per_iter * unroll_product
    lut = _LUT_PER_OP * (compute + mem) * max(1.0, unroll_product ** 0.85)
    ff = 1.1 * lut
    resources = ResourceUsage(lut=lut, ff=ff, dsp=dsp, bram=0.0)
    return latency, latency, resources


def _node_intensity(node_like: Operation) -> int:
    """Computation intensity: scalar compute ops executed per invocation.

    Falls back to stored elements for pure data-movement nodes, matching the
    intensities of Table 5 (Node0 = 512, Node1 = 256, Node2 = 4096).
    """
    total_compute = 0
    total_store = 0
    for op in node_like.walk():
        if is_compute_op(op) or isinstance(op, AffineStoreOp):
            iterations = 1
            for loop in enclosing_loops(op):
                if node_like.is_ancestor_of(loop):
                    iterations *= max(loop.trip_count, 1)
            if is_compute_op(op):
                total_compute += iterations
            else:
                total_store += iterations
    return total_compute if total_compute else total_store


def estimate_buffer(buffer_op: Operation, platform: Platform) -> ResourceUsage:
    """BRAM usage of an on-chip buffer (hida.buffer or memref.alloc)."""
    if isinstance(buffer_op, BufferOp):
        memref_type = buffer_op.memref_type
        if buffer_op.is_external:
            if buffer_op.get_attr("tiled", False):
                # Tiled external buffer: only a small double-buffered tile
                # cache remains on-chip; its banks are tiny and map to
                # LUTRAM, so the BRAM cost is the tile footprint itself.
                tile_elements = int(buffer_op.get_attr("tile_elements", 256))
                tile_bits = tile_elements * memref_type.element_type.bitwidth
                stages = max(buffer_op.depth, 2)
                return ResourceUsage(
                    bram=stages * max(1.0, math.ceil(tile_bits / (18 * 1024))),
                    lut=buffer_op.partition.banks * 8.0,
                )
            return ResourceUsage()
        banks = buffer_op.partition.banks
        depth = buffer_op.depth
    elif isinstance(buffer_op, AllocOp):
        memref_type = buffer_op.memref_type
        if not memref_type.is_on_chip:
            return ResourceUsage()
        banks = 1
        partition = partition_of(buffer_op.result())
        if partition is not None:
            banks = partition.banks
        depth = 1
    else:
        return ResourceUsage()
    total_bits = memref_type.num_elements * memref_type.element_type.bitwidth
    bits_per_bank = total_bits / max(banks, 1)
    if total_bits <= 1024 * 8:
        # Tiny buffers map to LUTRAM.
        return ResourceUsage(lut=total_bits / 6.0)
    brams_per_bank = max(1, math.ceil(bits_per_bank / (18 * 1024)))
    return ResourceUsage(bram=banks * brams_per_bank * max(depth, 1))


def _short_burst_penalty(node: NodeOp) -> float:
    """Latency multiplier for fine-grained external-memory access.

    Nodes streaming external buffers in sub-``_SHORT_BURST`` tiles lose DRAM
    efficiency; both the analytic estimate and the dataflow simulation apply
    the same degradation so the two fidelity levels disagree only about
    overlap behavior, never about the memory model.
    """
    external_ports = sum(
        1
        for operand in node.operands
        if isinstance(operand.type, MemRefType) and not operand.type.is_on_chip
    )
    tile_size = int(node.get_attr("tile_size", 0) or 0)
    if external_ports and tile_size and tile_size < _SHORT_BURST:
        return 1.0 + 0.4 * (_SHORT_BURST - tile_size) / _SHORT_BURST
    return 1.0


def estimate_node(node: NodeOp, platform: Platform) -> NodeEstimate:
    """Estimate one structural dataflow node.

    A node's loop bands form a sub-node dataflow of their own (the paper's
    Task6-0/1/2 tile-load / tile-compute / tile-store structure): successive
    bands stream through small local buffers and overlap, so the node's
    latency is dominated by its slowest band rather than the sum of all
    bands.
    """
    bands = loop_bands_of(node)
    latency = 0.0
    resources = ResourceUsage(lut=_NODE_BASE_LUT, ff=_NODE_BASE_LUT)
    band_latencies: List[float] = []
    for band in bands:
        band_latency, _, band_resources = estimate_band(band, platform)
        band_latencies.append(band_latency)
        resources = resources + band_resources
    if band_latencies:
        latency = max(band_latencies) + _PIPELINE_DEPTH * (len(band_latencies) - 1)
    if not bands:
        latency = max(latency, 4.0)

    # Bank multiplexing LUTs and address-generation DSPs for external ports.
    external_ports = 0
    for operand in node.operands:
        if isinstance(operand.type, MemRefType):
            factors = partition_factors_of_value(operand)
            banks = 1
            for factor in factors:
                banks *= factor
            resources.lut += _LUT_PER_BANK * banks
            if not operand.type.is_on_chip:
                external_ports += 1
    tile_size = int(node.get_attr("tile_size", 0) or 0)
    if external_ports and tile_size and tile_size < _SHORT_BURST:
        resources.dsp += _ADDR_DSP_PER_PORT * external_ports * (
            _SHORT_BURST / max(tile_size, 1)
        )
        resources.lut += 120 * external_ports
    # Short-burst external access also degrades achievable bandwidth.
    latency *= _short_burst_penalty(node)

    estimate = NodeEstimate(
        label=node.label or "node",
        latency=max(latency, 1.0),
        interval=max(latency, 1.0),
        resources=resources,
        intensity=_node_intensity(node),
    )
    return estimate


# ---------------------------------------------------------------------------
# High-fidelity (simulation-backed) design evaluation
# ---------------------------------------------------------------------------

#: Frame horizon of the high-fidelity simulation (longer than the analytic
#: estimator's 16 so slow-converging back-pressure transients settle).
SIMULATION_FRAMES = 48


def simulate_node(
    node: NodeOp, platform: Platform, frames: int = SIMULATION_FRAMES
) -> Tuple[float, float]:
    """Frame-accurate ``(latency, interval)`` of one dataflow node.

    The analytic :func:`estimate_node` assumes a node's loop bands stream
    element-wise and overlap perfectly (latency = slowest band plus fill).
    The simulation is stricter about single-frame behavior and looser about
    cross-frame behavior: bands execute frame-atomically in a linear chain
    of capacity-2 ping-pong buffers (a band starts a frame only once its
    predecessor band finished it), so the single-frame latency is the chain
    critical path, while successive frames pipeline through the chain at the
    slowest band's rate — the node's true initiation interval.
    """
    from .dataflow_sim import ChannelSpec, simulate_dataflow

    bands = loop_bands_of(node)
    if not bands:
        return 4.0, 4.0
    band_latencies = [
        estimate_band(band, platform)[0] for band in bands
    ]
    penalty = _short_burst_penalty(node)
    band_latencies = [latency * penalty for latency in band_latencies]
    if len(band_latencies) == 1:
        latency = max(band_latencies[0], 1.0)
        return latency, latency
    channels = [
        ChannelSpec(i, i + 1, 2) for i in range(len(band_latencies) - 1)
    ]
    interval, latency = simulate_dataflow(band_latencies, channels, frames=frames)
    return max(latency, 1.0), max(interval, 1.0)


def simulate_design(
    schedules: Sequence[ScheduleOp],
    estimate: DesignEstimate,
    platform: Platform,
    frames: int = SIMULATION_FRAMES,
) -> DesignEstimate:
    """Re-derive a design's QoR from a two-level dataflow simulation.

    This is the expensive fidelity of the DSE subsystem: every node is
    simulated band-by-band (:func:`simulate_node`), then the schedule's
    channel graph is simulated with per-node initiation intervals — nodes
    behave as internally pipelined engines bounded by channel capacities and
    back-pressure, which is where the analytic estimate and the simulation
    genuinely disagree (band-imbalanced nodes get slower single frames but
    much faster steady-state rates).

    Designs without a schedule (single-function kernels, the sequential
    Vitis-HLS baseline) execute their bands strictly back-to-back by
    construction — there is no dataflow to simulate and the analytic
    sequential model is already cycle-faithful — so they come back
    unchanged: the simulator confirms the estimate rather than inventing
    overlap the hardware would not have.  Resources are unchanged
    everywhere: simulation refines *timing*, not area.
    """
    from .dataflow_sim import build_channels, dataflow_timeline, simulate_dataflow

    if not schedules:
        return dataclasses.replace(estimate)

    best: Optional[Tuple[float, float, List[NodeEstimate]]] = None
    best_graph = None
    with obs.span("simulate-design", cat="sim", schedules=len(schedules)) as sim_span:
        for schedule in schedules:
            nodes, channels = build_channels(schedule)
            if not nodes:
                continue
            simulated = [
                simulate_node(node, platform, frames=frames) for node in nodes
            ]
            latencies = [latency for latency, _ in simulated]
            intervals = [interval for _, interval in simulated]
            interval, latency = simulate_dataflow(
                latencies, channels, frames=frames, intervals=intervals
            )
            # Per-node resources come from the analytic model *of this
            # schedule's nodes* (never zipped against estimate.node_estimates,
            # which may describe a different schedule): simulation replaces the
            # timing fields only.
            node_estimates = [
                dataclasses.replace(
                    estimate_node(node, platform),
                    latency=node_latency,
                    interval=node_interval,
                )
                for node, (node_latency, node_interval) in zip(nodes, simulated)
            ]
            # Mirror EstimateStage: the slowest (top-level) schedule dominates.
            if best is None or latency > best[0]:
                best = (latency, interval, node_estimates)
                best_graph = (schedule, nodes, channels, latencies, intervals)
        if best is None:
            return dataclasses.replace(estimate)
        sim_span.set_attr(latency=round(best[0], 3), interval=round(best[1], 3))
        if obs.enabled() and best_graph is not None:
            # Re-run only the winning schedule to materialize its occupancy
            # timeline; disabled runs never pay for interval bookkeeping.
            schedule, nodes, channels, latencies, intervals = best_graph
            timeline = dataflow_timeline(
                latencies, channels, frames=frames, intervals=intervals
            )
            obs.emit_timeline(
                timeline,
                label=schedule.label or "schedule",
                node_names=[node.label or "node" for node in nodes],
            )
    latency, interval, node_estimates = best
    return dataclasses.replace(
        estimate,
        latency=latency,
        interval=interval,
        node_estimates=node_estimates,
        dataflow=True,
    )


class QoREstimator:
    """Estimates QoR for schedules, nodes and plain loop functions.

    An optional ``cache`` (any object with dict-like ``get(key)`` /
    ``put(key, value)`` over JSON records, e.g.
    :class:`repro.dse.cache.QoRCache`) memoizes whole-schedule estimates by
    the schedule's content fingerprint, so re-estimating an identical design
    — the common case during design-space exploration — is a lookup instead
    of a simulation.
    """

    #: Bump when the analytical model changes to invalidate persisted caches.
    MODEL_VERSION = 2

    def __init__(self, platform: Platform, cache=None) -> None:
        self.platform = platform
        self.cache = cache
        self.cache_hits = 0
        self.cache_misses = 0

    def _cache_key(self, kind: str, fingerprint: str, **params) -> str:
        fields = [f"v{self.MODEL_VERSION}", kind, self.platform.name, fingerprint]
        fields += [f"{k}={params[k]}" for k in sorted(params)]
        return "|".join(fields)

    # ------------------------------------------------------------- schedules
    def estimate_schedule(
        self, schedule: ScheduleOp, dataflow: bool = True, frames: int = 16
    ) -> DesignEstimate:
        """Estimate a structural dataflow schedule.

        With ``dataflow=True`` the steady-state interval comes from the
        coarse-grained dataflow simulator (overlapped node execution through
        ping-pong buffers); otherwise nodes execute back-to-back.
        """
        from .dataflow_sim import simulate_schedule

        key = None
        if self.cache is not None:
            from ..ir.printer import fingerprint_op

            key = self._cache_key(
                "schedule", fingerprint_op(schedule), dataflow=dataflow, frames=frames
            )
            cached = self.cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return DesignEstimate.from_dict(cached)
            self.cache_misses += 1

        node_estimates = [estimate_node(node, self.platform) for node in schedule.nodes]
        resources = ResourceUsage()
        for estimate in node_estimates:
            resources = resources + estimate.resources
        for buffer_op in schedule.buffers:
            resources = resources + estimate_buffer(buffer_op, self.platform)
        for _stream in schedule.streams:
            resources = resources + ResourceUsage(lut=40, ff=60)

        total_latency = sum(e.latency for e in node_estimates) or 1.0
        if dataflow and node_estimates:
            interval, pipeline_latency = simulate_schedule(
                schedule, node_estimates, frames=frames
            )
            latency = pipeline_latency
        else:
            interval = total_latency
            latency = total_latency
        estimate = DesignEstimate(
            resources=resources,
            latency=latency,
            interval=interval,
            clock_mhz=self.platform.clock_mhz,
            node_estimates=node_estimates,
            dataflow=dataflow,
        )
        if key is not None:
            self.cache.put(key, estimate.to_dict())
        return estimate

    # ----------------------------------------------------------- plain loops
    def estimate_function(self, func: Operation, dataflow: bool = False) -> DesignEstimate:
        """Estimate a function that contains loop bands but no schedule.

        Used for the Vitis-HLS-only baseline and any design evaluated before
        Structural lowering: bands execute sequentially.
        """
        key = None
        if self.cache is not None:
            from ..ir.printer import fingerprint_op

            key = self._cache_key("function", fingerprint_op(func), dataflow=dataflow)
            cached = self.cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return DesignEstimate.from_dict(cached)
            self.cache_misses += 1
        bands = loop_bands_of(func)
        # Also descend into tasks/dispatches if present.
        if not bands:
            for op in func.walk():
                if op.name in ("hida.task",):
                    bands.extend(loop_bands_of(op))
        resources = ResourceUsage(lut=_NODE_BASE_LUT, ff=_NODE_BASE_LUT)
        latency = 0.0
        node_estimates = []
        for i, band in enumerate(bands):
            band_latency, _, band_resources = estimate_band(band, self.platform)
            latency += band_latency
            resources = resources + band_resources
            node_estimates.append(
                NodeEstimate(
                    label=f"band{i}",
                    latency=band_latency,
                    interval=band_latency,
                    resources=band_resources,
                )
            )
        for op in func.walk():
            if isinstance(op, (AllocOp, BufferOp)):
                resources = resources + estimate_buffer(op, self.platform)
        latency = max(latency, 1.0)
        estimate = DesignEstimate(
            resources=resources,
            latency=latency,
            interval=latency,
            clock_mhz=self.platform.clock_mhz,
            node_estimates=node_estimates,
            dataflow=dataflow,
        )
        if key is not None:
            self.cache.put(key, estimate.to_dict())
        return estimate
