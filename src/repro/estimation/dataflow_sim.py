"""Coarse-grained dataflow simulator.

Models the steady-state behaviour of a structural dataflow schedule: nodes
fire once per data frame, communicate through buffers with a bounded number
of ping-pong stages (or streams / tokens), and overlap their execution across
frames.  The simulator computes the steady-state initiation interval of the
whole pipeline and the single-frame latency, which the QoR estimator turns
into throughput.

This is where unbalanced data paths show up: a shortcut buffer with only two
stages between a producer and a far-away consumer (e.g. the residual path of
ResNet) back-pressures the producer and inflates the interval; HIDA's
data-path balancing inserts extra stages (or spills to external memory with
token flow) precisely to remove that back-pressure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..dialects.dataflow import (
    BufferOp,
    NodeOp,
    ScheduleOp,
    StreamOp,
    get_consumers,
    get_producers,
)

__all__ = [
    "ChannelSpec",
    "DataflowTimeline",
    "simulate_dataflow",
    "simulate_schedule",
    "dataflow_timeline",
    "build_channels",
    "channel_cycles",
    "topological_order_with_cycle",
]


@dataclasses.dataclass
class ChannelSpec:
    """A producer -> consumer dependency through a buffer or stream.

    ``capacity`` is the number of in-flight frames the channel can hold
    (ping-pong depth for buffers, entry count for token streams).
    """

    producer: int
    consumer: int
    capacity: int = 2

    def __post_init__(self) -> None:
        self.capacity = max(1, int(self.capacity))


def build_channels(schedule: ScheduleOp) -> Tuple[List[NodeOp], List[ChannelSpec]]:
    """Derive the frame-level channel graph of a schedule.

    Every buffer (or stream) written by node P and read by node C contributes
    a channel P -> C whose capacity is the buffer's ping-pong depth.  Nodes
    communicating through external memory are connected by their token
    streams; if no token stream exists the dependence is still honoured with
    the default capacity.
    """
    nodes = schedule.nodes
    index_of = {id(node): i for i, node in enumerate(nodes)}
    channels: List[ChannelSpec] = []

    def add_channel(producer: NodeOp, consumer: NodeOp, capacity: int) -> None:
        if id(producer) not in index_of or id(consumer) not in index_of:
            return
        p, c = index_of[id(producer)], index_of[id(consumer)]
        if p == c:
            return
        channels.append(ChannelSpec(p, c, capacity))

    # Buffers and streams allocated inside the schedule.
    for op in schedule.body.operations:
        if isinstance(op, BufferOp):
            value = op.result()
            capacity = max(op.depth, 1)
            for producer in get_producers(value):
                for consumer in get_consumers(value):
                    if producer is not consumer:
                        add_channel(producer, consumer, capacity)
        elif isinstance(op, StreamOp):
            value = op.result()
            users = [u for u in value.users if isinstance(u, NodeOp)]
            writers = [u for u in users if u.writes(value)]
            readers = [u for u in users if u.reads(value)]
            for producer in writers:
                for consumer in readers:
                    if producer is not consumer:
                        add_channel(producer, consumer, op.depth)

    # Values passed in from outside (schedule block arguments): a write by one
    # node followed by a read by another still orders the two nodes.
    for argument in schedule.body.arguments:
        writers = [n for n in nodes if n.writes(argument)]
        readers = [n for n in nodes if n.reads(argument)]
        for producer in writers:
            for consumer in readers:
                if producer is not consumer and nodes.index(producer) < nodes.index(consumer):
                    add_channel(producer, consumer, 2)
    return nodes, channels


def simulate_dataflow(
    latencies: Sequence[float],
    channels: Sequence[ChannelSpec],
    frames: int = 16,
    intervals: Optional[Sequence[float]] = None,
) -> Tuple[float, float]:
    """Simulate ``frames`` frames through a dataflow pipeline.

    ``latencies[i]`` is the per-frame latency of node ``i``.  Returns
    ``(steady interval, single-frame latency)``.

    The firing rule per node and frame is:

    * a node starts frame *f* only after all its predecessors finished
      frame *f* (data availability),
    * after its own frame-to-frame spacing: with ``intervals`` absent the
      node is not internally pipelined across frames (it must finish frame
      *f - 1* first); with ``intervals`` given, node *i* accepts a new frame
      every ``intervals[i]`` cycles even while earlier frames drain through
      it (an internally ping-pong-buffered engine),
    * and after every channel it writes has a free slot, i.e. its consumer
      has finished frame *f - capacity + 1* (back-pressure).
    """
    num_nodes = len(latencies)
    if num_nodes == 0:
        return 1.0, 1.0
    frames = max(int(frames), 4)
    start, finish = _schedule_frames(latencies, channels, frames, intervals)

    last_finish = [max(finish[f]) for f in range(frames)]
    single_frame_latency = last_finish[0]
    half = frames // 2
    steady_interval = (last_finish[-1] - last_finish[half]) / max(frames - 1 - half, 1)
    # Internally pipelined nodes can sustain one frame per interval, so the
    # whole pipeline's floor is the slowest node *interval* (falling back to
    # the slowest node latency for unpipelined designs).
    floor = (
        (max(latencies) if latencies else 1.0)
        if intervals is None
        else max(max(i, 1.0) for i in intervals)
    )
    steady_interval = max(steady_interval, floor)
    return steady_interval, single_frame_latency


def _frame_bounds(
    latencies: Sequence[float],
    channels: Sequence[ChannelSpec],
) -> Tuple[Dict[int, List[ChannelSpec]], Dict[int, List[ChannelSpec]]]:
    num_nodes = len(latencies)
    preds: Dict[int, List[ChannelSpec]] = {i: [] for i in range(num_nodes)}
    succs: Dict[int, List[ChannelSpec]] = {i: [] for i in range(num_nodes)}
    for channel in channels:
        preds[channel.consumer].append(channel)
        succs[channel.producer].append(channel)
    return preds, succs


def _schedule_frames(
    latencies: Sequence[float],
    channels: Sequence[ChannelSpec],
    frames: int,
    intervals: Optional[Sequence[float]],
) -> Tuple[List[List[float]], List[List[float]]]:
    """``(start, finish)`` frame-by-frame schedule of the firing recurrence.

    ``start[f][n]`` / ``finish[f][n]`` are the cycle at which node ``n``
    begins / completes frame ``f`` under the rules documented on
    :func:`simulate_dataflow`.  This is the single recurrence behind both
    the interval/latency summary and the occupancy timeline
    (:func:`dataflow_timeline`), so the two can never disagree.
    """
    num_nodes = len(latencies)
    preds, succs = _frame_bounds(latencies, channels)
    order = _topological_order(num_nodes, channels)
    finish = [[0.0] * num_nodes for _ in range(frames)]
    start = [[0.0] * num_nodes for _ in range(frames)]
    for frame in range(frames):
        for node in order:
            earliest = 0.0
            if frame > 0:
                prior = (
                    finish[frame - 1][node]
                    if intervals is None
                    else start[frame - 1][node] + max(intervals[node], 1.0)
                )
                earliest = max(earliest, prior)
            for channel in preds[node]:
                earliest = max(earliest, finish[frame][channel.producer])
            for channel in succs[node]:
                # A channel with capacity C holds frames f-1 .. f-C while the
                # producer works on frame f; the slot for frame f is free once
                # the consumer has finished frame f - C.
                waiting_frame = frame - channel.capacity
                if waiting_frame >= 0:
                    earliest = max(earliest, finish[waiting_frame][channel.consumer])
            start[frame][node] = earliest
            finish[frame][node] = earliest + max(latencies[node], 1.0)
    return start, finish


@dataclasses.dataclass
class DataflowTimeline:
    """Cycle-resolved occupancy of one simulated dataflow run.

    ``node_busy[n]`` holds one ``(start, finish)`` interval per frame;
    ``node_stalls[n]`` the idle gaps in front of a frame start, each
    annotated with its cause — ``"data"`` (an input frame was not ready)
    or ``"backpressure"`` (a full output channel blocked the firing).
    ``channel_depth[c]`` samples channel ``c``'s in-flight frame count at
    every push/pop instant and ``channel_hwm[c]`` is its high-water mark.
    All times are in the same cycle units as the input latencies; the obs
    layer renders this as Perfetto tracks (:func:`repro.obs.emit_timeline`).
    """

    node_busy: List[List[Tuple[float, float]]]
    node_stalls: List[List[Tuple[float, float, str]]]
    channel_depth: List[List[Tuple[float, int]]]
    channel_hwm: List[int]
    frames: int


def dataflow_timeline(
    latencies: Sequence[float],
    channels: Sequence[ChannelSpec],
    frames: int = 16,
    intervals: Optional[Sequence[float]] = None,
) -> DataflowTimeline:
    """Run the firing recurrence and keep the full occupancy timeline.

    Same inputs and scheduling rules as :func:`simulate_dataflow` (which
    reports only the interval/latency summary); the timeline is what the
    observability layer turns into per-node busy/stall tracks and
    per-channel depth counters.
    """
    num_nodes = len(latencies)
    frames = max(int(frames), 4)
    if num_nodes == 0:
        return DataflowTimeline([], [], [], [], frames)
    start, finish = _schedule_frames(latencies, channels, frames, intervals)
    preds, _ = _frame_bounds(latencies, channels)
    epsilon = 1e-9

    node_busy = [
        [(start[frame][node], finish[frame][node]) for frame in range(frames)]
        for node in range(num_nodes)
    ]
    node_stalls: List[List[Tuple[float, float, str]]] = [
        [] for _ in range(num_nodes)
    ]
    for frame in range(frames):
        for node in range(num_nodes):
            if frame > 0:
                ready = (
                    finish[frame - 1][node]
                    if intervals is None
                    else start[frame - 1][node] + max(intervals[node], 1.0)
                )
            else:
                ready = 0.0
            began = start[frame][node]
            if began <= ready + epsilon:
                continue
            # The firing is the max of the readiness bounds, so whichever
            # bound equals the actual start names the cause of the stall.
            data_bound = max(
                (finish[frame][channel.producer] for channel in preds[node]),
                default=0.0,
            )
            cause = "data" if data_bound >= began - epsilon else "backpressure"
            node_stalls[node].append((ready, began, cause))

    channel_depth: List[List[Tuple[float, int]]] = []
    channel_hwm: List[int] = []
    for channel in channels:
        # A frame enters the channel when its producer finishes it and
        # leaves when its consumer finishes it; pushes sort before pops at
        # equal timestamps so the high-water mark captures the peak.
        events = sorted(
            [(finish[f][channel.producer], 0, 1) for f in range(frames)]
            + [(finish[f][channel.consumer], 1, -1) for f in range(frames)]
        )
        depth = 0
        hwm = 0
        series: List[Tuple[float, int]] = []
        for ts, _, delta in events:
            depth += delta
            hwm = max(hwm, depth)
            if series and series[-1][0] == ts:
                series[-1] = (ts, depth)
            else:
                series.append((ts, depth))
        channel_depth.append(series)
        channel_hwm.append(hwm)
    return DataflowTimeline(
        node_busy=node_busy,
        node_stalls=node_stalls,
        channel_depth=channel_depth,
        channel_hwm=channel_hwm,
        frames=frames,
    )


def _dedup_adjacency(
    num_nodes: int, channels: Sequence[ChannelSpec]
) -> Dict[int, List[int]]:
    adjacency: Dict[int, List[int]] = {i: [] for i in range(num_nodes)}
    seen = set()
    for channel in channels:
        key = (channel.producer, channel.consumer)
        if key in seen:
            continue
        seen.add(key)
        adjacency[channel.producer].append(channel.consumer)
    return adjacency


def channel_cycles(
    num_nodes: int, channels: Sequence[ChannelSpec]
) -> List[List[int]]:
    """Cyclic strongly connected components of the channel graph.

    Returns one sorted member list per SCC with more than one node (self
    channels never exist: :func:`build_channels` drops producer == consumer
    edges), ordered by smallest member.  This is the *single* definition of
    "a cycle" shared by the simulator's scheduling fallback and the static
    deadlock checker in :mod:`repro.analysis` — the two can never disagree
    about which nodes are cyclically dependent.
    """
    adjacency = _dedup_adjacency(num_nodes, channels)
    # Iterative Tarjan (schedules can be deep enough to bother recursion).
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack = [False] * num_nodes
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [0]

    def strongconnect(root: int) -> None:
        work = [(root, iter(adjacency[root]))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if on_stack[succ]:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for start in range(num_nodes):
        if start not in index_of:
            strongconnect(start)
    components.sort(key=lambda members: members[0])
    return components


def topological_order_with_cycle(
    num_nodes: int, channels: Sequence[ChannelSpec]
) -> Tuple[List[int], FrozenSet[int]]:
    """Kahn's order plus the member set of any channel-graph cycles.

    The order is a true topological sort when the graph is acyclic (and the
    returned member set is empty).  With cycles, nodes Kahn's algorithm
    could not schedule are appended in index (program) order and the second
    element names every node on a cycle (union of the cyclic SCCs from
    :func:`channel_cycles`) so callers can *report* the fallback instead of
    silently absorbing it.
    """
    adjacency = _dedup_adjacency(num_nodes, channels)
    indegree = [0] * num_nodes
    for successors in adjacency.values():
        for succ in successors:
            indegree[succ] += 1
    ready = sorted(i for i in range(num_nodes) if indegree[i] == 0)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in adjacency[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort()
    cycle_members: FrozenSet[int] = frozenset()
    if len(order) != num_nodes:
        # Cycle (e.g. in-place updates): fall back to program order for the
        # unscheduled remainder, but expose which nodes actually sit on a
        # cycle (the remainder also contains nodes merely *downstream* of
        # one, which Kahn's algorithm cannot distinguish).
        scheduled = set(order)
        remaining = [i for i in range(num_nodes) if i not in scheduled]
        order.extend(remaining)
        cycle_members = frozenset(
            member for cycle in channel_cycles(num_nodes, channels) for member in cycle
        )
    return order, cycle_members


def _topological_order(num_nodes: int, channels: Sequence[ChannelSpec]) -> List[int]:
    """Topological order over data edges (falls back to index order on cycles)."""
    order, _ = topological_order_with_cycle(num_nodes, channels)
    return order


def simulate_schedule(
    schedule: ScheduleOp,
    node_estimates: Sequence,
    frames: int = 16,
    intervals: Optional[Sequence[float]] = None,
) -> Tuple[float, float]:
    """Simulate a schedule given per-node estimates (from the QoR model).

    ``intervals`` optionally gives each node an internal initiation interval
    (see :func:`simulate_dataflow`); without it nodes are frame-atomic,
    which is what the analytic estimator assumes.
    """
    nodes, channels = build_channels(schedule)
    latencies = [estimate.latency for estimate in node_estimates]
    if len(latencies) != len(nodes):
        latencies = latencies[: len(nodes)] + [1.0] * (len(nodes) - len(latencies))
    if intervals is not None and len(intervals) != len(nodes):
        intervals = list(intervals[: len(nodes)]) + [1.0] * (
            len(nodes) - len(intervals)
        )
    return simulate_dataflow(latencies, channels, frames=frames, intervals=intervals)
