"""Coarse-grained dataflow simulator.

Models the steady-state behaviour of a structural dataflow schedule: nodes
fire once per data frame, communicate through buffers with a bounded number
of ping-pong stages (or streams / tokens), and overlap their execution across
frames.  The simulator computes the steady-state initiation interval of the
whole pipeline and the single-frame latency, which the QoR estimator turns
into throughput.

This is where unbalanced data paths show up: a shortcut buffer with only two
stages between a producer and a far-away consumer (e.g. the residual path of
ResNet) back-pressures the producer and inflates the interval; HIDA's
data-path balancing inserts extra stages (or spills to external memory with
token flow) precisely to remove that back-pressure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects.dataflow import (
    BufferOp,
    NodeOp,
    ScheduleOp,
    StreamOp,
    get_consumers,
    get_producers,
)

__all__ = ["ChannelSpec", "simulate_dataflow", "simulate_schedule", "build_channels"]


@dataclasses.dataclass
class ChannelSpec:
    """A producer -> consumer dependency through a buffer or stream.

    ``capacity`` is the number of in-flight frames the channel can hold
    (ping-pong depth for buffers, entry count for token streams).
    """

    producer: int
    consumer: int
    capacity: int = 2

    def __post_init__(self) -> None:
        self.capacity = max(1, int(self.capacity))


def build_channels(schedule: ScheduleOp) -> Tuple[List[NodeOp], List[ChannelSpec]]:
    """Derive the frame-level channel graph of a schedule.

    Every buffer (or stream) written by node P and read by node C contributes
    a channel P -> C whose capacity is the buffer's ping-pong depth.  Nodes
    communicating through external memory are connected by their token
    streams; if no token stream exists the dependence is still honoured with
    the default capacity.
    """
    nodes = schedule.nodes
    index_of = {id(node): i for i, node in enumerate(nodes)}
    channels: List[ChannelSpec] = []

    def add_channel(producer: NodeOp, consumer: NodeOp, capacity: int) -> None:
        if id(producer) not in index_of or id(consumer) not in index_of:
            return
        p, c = index_of[id(producer)], index_of[id(consumer)]
        if p == c:
            return
        channels.append(ChannelSpec(p, c, capacity))

    # Buffers and streams allocated inside the schedule.
    for op in schedule.body.operations:
        if isinstance(op, BufferOp):
            value = op.result()
            capacity = max(op.depth, 1)
            for producer in get_producers(value):
                for consumer in get_consumers(value):
                    if producer is not consumer:
                        add_channel(producer, consumer, capacity)
        elif isinstance(op, StreamOp):
            value = op.result()
            users = [u for u in value.users if isinstance(u, NodeOp)]
            writers = [u for u in users if u.writes(value)]
            readers = [u for u in users if u.reads(value)]
            for producer in writers:
                for consumer in readers:
                    if producer is not consumer:
                        add_channel(producer, consumer, op.depth)

    # Values passed in from outside (schedule block arguments): a write by one
    # node followed by a read by another still orders the two nodes.
    for argument in schedule.body.arguments:
        writers = [n for n in nodes if n.writes(argument)]
        readers = [n for n in nodes if n.reads(argument)]
        for producer in writers:
            for consumer in readers:
                if producer is not consumer and nodes.index(producer) < nodes.index(consumer):
                    add_channel(producer, consumer, 2)
    return nodes, channels


def simulate_dataflow(
    latencies: Sequence[float],
    channels: Sequence[ChannelSpec],
    frames: int = 16,
    intervals: Optional[Sequence[float]] = None,
) -> Tuple[float, float]:
    """Simulate ``frames`` frames through a dataflow pipeline.

    ``latencies[i]`` is the per-frame latency of node ``i``.  Returns
    ``(steady interval, single-frame latency)``.

    The firing rule per node and frame is:

    * a node starts frame *f* only after all its predecessors finished
      frame *f* (data availability),
    * after its own frame-to-frame spacing: with ``intervals`` absent the
      node is not internally pipelined across frames (it must finish frame
      *f - 1* first); with ``intervals`` given, node *i* accepts a new frame
      every ``intervals[i]`` cycles even while earlier frames drain through
      it (an internally ping-pong-buffered engine),
    * and after every channel it writes has a free slot, i.e. its consumer
      has finished frame *f - capacity + 1* (back-pressure).
    """
    num_nodes = len(latencies)
    if num_nodes == 0:
        return 1.0, 1.0
    frames = max(int(frames), 4)
    preds: Dict[int, List[ChannelSpec]] = {i: [] for i in range(num_nodes)}
    succs: Dict[int, List[ChannelSpec]] = {i: [] for i in range(num_nodes)}
    for channel in channels:
        preds[channel.consumer].append(channel)
        succs[channel.producer].append(channel)

    order = _topological_order(num_nodes, channels)
    finish = [[0.0] * num_nodes for _ in range(frames)]
    start = [[0.0] * num_nodes for _ in range(frames)]
    for frame in range(frames):
        for node in order:
            earliest = 0.0
            if frame > 0:
                if intervals is None:
                    earliest = max(earliest, finish[frame - 1][node])
                else:
                    earliest = max(
                        earliest,
                        start[frame - 1][node] + max(intervals[node], 1.0),
                    )
            for channel in preds[node]:
                earliest = max(earliest, finish[frame][channel.producer])
            for channel in succs[node]:
                # A channel with capacity C holds frames f-1 .. f-C while the
                # producer works on frame f; the slot for frame f is free once
                # the consumer has finished frame f - C.
                waiting_frame = frame - channel.capacity
                if waiting_frame >= 0:
                    earliest = max(earliest, finish[waiting_frame][channel.consumer])
            start[frame][node] = earliest
            finish[frame][node] = earliest + max(latencies[node], 1.0)

    last_finish = [max(finish[f]) for f in range(frames)]
    single_frame_latency = last_finish[0]
    half = frames // 2
    steady_interval = (last_finish[-1] - last_finish[half]) / max(frames - 1 - half, 1)
    if intervals is None:
        floor = max(latencies) if latencies else 1.0
    else:
        # Internally pipelined nodes can sustain one frame per interval, so
        # the whole pipeline's floor is the slowest node *interval*.
        floor = max(max(i, 1.0) for i in intervals)
    steady_interval = max(steady_interval, floor)
    return steady_interval, single_frame_latency


def _topological_order(num_nodes: int, channels: Sequence[ChannelSpec]) -> List[int]:
    """Topological order over data edges (falls back to index order on cycles)."""
    indegree = [0] * num_nodes
    adjacency: Dict[int, List[int]] = {i: [] for i in range(num_nodes)}
    seen = set()
    for channel in channels:
        key = (channel.producer, channel.consumer)
        if key in seen:
            continue
        seen.add(key)
        adjacency[channel.producer].append(channel.consumer)
        indegree[channel.consumer] += 1
    ready = sorted(i for i in range(num_nodes) if indegree[i] == 0)
    order: List[int] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for succ in adjacency[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
        ready.sort()
    if len(order) != num_nodes:
        # Cycle (e.g. in-place updates): fall back to program order.
        remaining = [i for i in range(num_nodes) if i not in order]
        order.extend(remaining)
    return order


def simulate_schedule(
    schedule: ScheduleOp,
    node_estimates: Sequence,
    frames: int = 16,
    intervals: Optional[Sequence[float]] = None,
) -> Tuple[float, float]:
    """Simulate a schedule given per-node estimates (from the QoR model).

    ``intervals`` optionally gives each node an internal initiation interval
    (see :func:`simulate_dataflow`); without it nodes are frame-atomic,
    which is what the analytic estimator assumes.
    """
    nodes, channels = build_channels(schedule)
    latencies = [estimate.latency for estimate in node_estimates]
    if len(latencies) != len(nodes):
        latencies = latencies[: len(nodes)] + [1.0] * (len(nodes) - len(latencies))
    if intervals is not None and len(intervals) != len(nodes):
        intervals = list(intervals[: len(nodes)]) + [1.0] * (
            len(nodes) - len(intervals)
        )
    return simulate_dataflow(latencies, channels, frames=frames, intervals=intervals)
