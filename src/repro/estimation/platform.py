"""FPGA platform specifications used by the paper's evaluation.

Three devices appear in the paper: the AMD PYNQ-Z2 (Zynq-7020) for the LeNet
case study, the ZU3EG for the PolyBench C++ kernels, and one super logic
region (SLR) of a VU9P for the DNN models.  Resource counts are the public
device figures; BRAM is counted in 18Kb blocks as Vitis HLS reports it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["Platform", "PYNQ_Z2", "ZU3EG", "VU9P_SLR", "PLATFORMS", "get_platform"]


@dataclasses.dataclass(frozen=True)
class Platform:
    """An FPGA target: resource budget, clock and external memory behaviour."""

    name: str
    luts: int
    ffs: int
    dsps: int
    bram_18k: int
    clock_mhz: float = 200.0
    #: Achievable external memory bandwidth in bytes per cycle (per AXI port).
    dram_bytes_per_cycle: float = 16.0
    #: Latency, in cycles, of an external memory burst setup.
    dram_latency_cycles: int = 64

    @property
    def clock_hz(self) -> float:
        return self.clock_mhz * 1e6

    def utilization(self, used: Dict[str, float]) -> Dict[str, float]:
        """Fractional utilization per resource kind for a usage dictionary."""
        return {
            "lut": used.get("lut", 0.0) / self.luts,
            "ff": used.get("ff", 0.0) / self.ffs,
            "dsp": used.get("dsp", 0.0) / self.dsps,
            "bram": used.get("bram", 0.0) / self.bram_18k,
        }

    def max_utilization(self, used: Dict[str, float]) -> float:
        """The paper's resource metric: max(BRAM%, DSP%, LUT%)."""
        util = self.utilization(used)
        return max(util["bram"], util["dsp"], util["lut"])

    def fits(self, used: Dict[str, float], budget: float = 1.0) -> bool:
        return self.max_utilization(used) <= budget


PYNQ_Z2 = Platform(
    name="pynq-z2",
    luts=53_200,
    ffs=106_400,
    dsps=220,
    bram_18k=280,
    clock_mhz=100.0,
    dram_bytes_per_cycle=8.0,
)

ZU3EG = Platform(
    name="zu3eg",
    luts=70_560,
    ffs=141_120,
    dsps=360,
    bram_18k=432,
    clock_mhz=200.0,
    dram_bytes_per_cycle=16.0,
)

VU9P_SLR = Platform(
    name="vu9p-slr",
    luts=394_000,
    ffs=788_000,
    dsps=2_280,
    bram_18k=1_440,
    clock_mhz=200.0,
    # Four DDR4-2400 channels are reachable from one SLR on the evaluation
    # board; at 200 MHz this is roughly 256 bytes per cycle of burst traffic.
    dram_bytes_per_cycle=256.0,
)

PLATFORMS: Dict[str, Platform] = {
    p.name: p for p in (PYNQ_Z2, ZU3EG, VU9P_SLR)
}


def get_platform(name: str) -> Platform:
    """Look up a platform by name (``pynq-z2``, ``zu3eg``, ``vu9p-slr``).

    Resolution goes through the :mod:`repro.targets` registry, so aliases
    (``vu9p`` -> ``vu9p-slr``) work everywhere a platform name is accepted
    and unknown names carry closest-match suggestions.  The error remains a
    ``KeyError`` subclass for pre-registry callers.
    """
    if isinstance(name, Platform):
        return name
    key = name.lower()
    if key in PLATFORMS:
        return PLATFORMS[key]
    from ..targets import get_target  # deferred: targets imports this module

    return get_target(key).platform
