"""IR builder: insertion points and a convenience builder object.

The builder mirrors MLIR's ``OpBuilder``.  It tracks an insertion point
(a block plus an index inside that block) and inserts newly created
operations there.  Context-manager helpers make it easy to build nested
regions::

    builder = Builder.at_end(func.entry_block)
    loop = builder.insert(AffineForOp.create(0, 16))
    with builder.at_end_of(loop.body):
        builder.insert(...)
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator, Optional, Sequence, TypeVar

from .builtin import ConstantOp
from .core import Block, Operation, Value
from .types import IndexType, Type

__all__ = ["InsertionPoint", "Builder"]

#: Inserting preserves the concrete op class, so callers keep access to
#: op-specific accessors (``loop.body``, ``apply.result()``, ...).
_OpT = TypeVar("_OpT", bound=Operation)


class InsertionPoint:
    """A position inside a block where new operations are inserted."""

    def __init__(self, block: Block, index: Optional[int] = None) -> None:
        self.block = block
        self.index = len(block) if index is None else index

    @classmethod
    def at_end(cls, block: Block) -> "InsertionPoint":
        return cls(block, len(block))

    @classmethod
    def at_start(cls, block: Block) -> "InsertionPoint":
        return cls(block, 0)

    @classmethod
    def before(cls, op: Operation) -> "InsertionPoint":
        block = op.parent
        if block is None:
            raise ValueError("operation has no parent block")
        return cls(block, block.index_of(op))

    @classmethod
    def after(cls, op: Operation) -> "InsertionPoint":
        block = op.parent
        if block is None:
            raise ValueError("operation has no parent block")
        return cls(block, block.index_of(op) + 1)

    def insert(self, op: _OpT) -> _OpT:
        self.block.insert(self.index, op)
        self.index += 1
        return op


class Builder:
    """Creates and inserts operations at a movable insertion point."""

    def __init__(self, insertion_point: Optional[InsertionPoint] = None) -> None:
        self._ip = insertion_point

    # --------------------------------------------------------- constructors
    @classmethod
    def at_end(cls, block: Block) -> "Builder":
        return cls(InsertionPoint.at_end(block))

    @classmethod
    def at_start(cls, block: Block) -> "Builder":
        return cls(InsertionPoint.at_start(block))

    @classmethod
    def before(cls, op: Operation) -> "Builder":
        return cls(InsertionPoint.before(op))

    @classmethod
    def after(cls, op: Operation) -> "Builder":
        return cls(InsertionPoint.after(op))

    # --------------------------------------------------------------- control
    @property
    def insertion_point(self) -> Optional[InsertionPoint]:
        return self._ip

    def set_insertion_point(self, ip: InsertionPoint) -> None:
        self._ip = ip

    @contextlib.contextmanager
    def at(self, ip: InsertionPoint) -> Iterator["Builder"]:
        """Temporarily move the insertion point."""
        saved = self._ip
        self._ip = ip
        try:
            yield self
        finally:
            self._ip = saved

    def at_end_of(self, block: Block) -> Any:
        return self.at(InsertionPoint.at_end(block))

    def at_start_of(self, block: Block) -> Any:
        return self.at(InsertionPoint.at_start(block))

    # --------------------------------------------------------------- insert
    def insert(self, op: _OpT) -> _OpT:
        if self._ip is None:
            raise ValueError("builder has no insertion point")
        return self._ip.insert(op)

    def create(
        self,
        op_cls: type,
        *args: Any,
        **kwargs: Any,
    ) -> Operation:
        """Create an op via its ``create`` classmethod and insert it."""
        op = op_cls.create(*args, **kwargs)
        return self.insert(op)

    # ----------------------------------------------------------- conveniences
    def constant(self, value: Any, type: Type) -> Value:
        op = self.insert(ConstantOp.create(value, type))
        return op.result()

    def index_constant(self, value: int) -> Value:
        return self.constant(int(value), IndexType())

    def insert_all(self, ops: Sequence[Operation]) -> None:
        for op in ops:
            self.insert(op)
