"""A deterministic reference interpreter for the IR dialects.

This is the executable ground truth behind translation validation
(:mod:`repro.analysis.tv`): it runs a module's top function over seeded,
workload-derived input tensors and returns every observable output, so two
module versions can be compared bitwise.

Semantics, in one place:

* **Inputs** — every memref argument of the top function is filled with
  :func:`seed_value`, a deterministic *small integer* derived from the
  argument position and the flat element index.  Small integers keep f64
  arithmetic exact (no rounding below 2**53), so even transforms that
  reorder additions stay bitwise identical on kernels without division;
  only genuinely non-integer math (``divf``/``sqrt``/``exp``) needs the
  documented float tolerance.
* **Allocations** — ``memref.alloc`` and ``hida.buffer`` results are
  zero-initialized (several kernels accumulate without an explicit fill).
  ``memref.get_global`` is seeded from a stable hash of its symbol.
* **Out-of-bounds** — reads return 0 and writes are dropped, both counted
  in the result.  This keeps the interpreter total and deterministic; a
  transform that changes which addresses go out of bounds changes the
  counters and (almost always) the outputs.
* **Dataflow** — ``hida.dispatch``/``hida.task`` are transparent regions;
  ``hida.schedule``/``hida.node`` are isolated and bind their operands to
  block arguments (memory is shared by reference, so node writes are
  visible to later nodes).  Nodes execute in program order, which is a
  topological order of the single-producer dataflow graph.  Streams are
  FIFOs; reading an empty stream yields 0 and counts an underflow.
* **linalg** — a module still carrying linalg ops is cloned and lowered
  through :func:`~repro.transforms.linalg_to_affine.lower_linalg_to_affine`
  first; the interpreter executes the affine form (the linalg ops' defined
  semantics).
* **Budget** — interpretation refuses modules whose statically estimated
  cost (:func:`estimate_cost`) exceeds ``max_ops``, and aborts if the
  dynamic op count overruns the estimate's safety margin; both raise
  :class:`InterpreterBudgetError` so callers can report an honest
  "skipped" instead of a silently vacuous "validated".
"""

from __future__ import annotations

import dataclasses
import math
from collections import deque
from fractions import Fraction
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
    cast,
)

from ..dialects.affine import (
    AffineApplyOp,
    AffineForOp,
    AffineIfOp,
    AffineLoadOp,
    AffineStoreOp,
    AffineYieldOp,
)
from ..dialects.arith import (
    AddFOp,
    AddIOp,
    CastOp,
    CmpOp,
    DivFOp,
    DivIOp,
    ExpOp,
    MACOp,
    MaxFOp,
    MaxIOp,
    MinFOp,
    MinIOp,
    MulFOp,
    MulIOp,
    NegFOp,
    SelectOp,
    SqrtOp,
    SubFOp,
    SubIOp,
)
from ..dialects.dataflow import (
    BufferOp,
    DispatchOp,
    NodeOp,
    ScheduleOp,
    StreamOp,
    StreamReadOp,
    StreamWriteOp,
    TaskOp,
    YieldOp as HidaYieldOp,
)
from ..dialects.memref import (
    AllocOp,
    CopyOp,
    DeallocOp,
    GetGlobalOp,
    LoadOp,
    StoreOp,
    SubViewOp,
)
from ..dialects.scf import (
    ForOp as ScfForOp,
    IfOp as ScfIfOp,
    WhileOp as ScfWhileOp,
    YieldOp as ScfYieldOp,
)
from .builtin import ConstantOp, FuncOp, ModuleOp, ReturnOp, UnrealizedCastOp
from .core import Block, Operation, Value
from .types import FloatType, IndexType, IntegerType, MemRefType, StreamType

__all__ = [
    "DEFAULT_MAX_OPS",
    "ExecutionResult",
    "InterpreterBudgetError",
    "InterpreterError",
    "UnsupportedOpError",
    "diff_results",
    "estimate_cost",
    "interpret_module",
    "seed_value",
]

#: Default static interpretation budget (estimated op executions).  The
#: kernel zoo at its default problem sizes fits comfortably; DNN models do
#: not and are honestly reported as skipped by the validation layer.
DEFAULT_MAX_OPS = 2_000_000

#: The dynamic op counter may exceed the static estimate by this factor
#: before interpretation aborts (the estimate is approximate for scf loops
#: with non-constant bounds).
_DYNAMIC_SLACK = 4

#: Assumed trip count for scf loops whose bounds are not constants.
_UNKNOWN_TRIP = 64


class InterpreterError(RuntimeError):
    """Interpretation failed (malformed IR, unsupported construct, ...)."""


class UnsupportedOpError(InterpreterError):
    """The module contains an op the interpreter has no semantics for."""


class InterpreterBudgetError(InterpreterError):
    """The module's estimated or actual cost exceeds the op budget."""

    def __init__(self, message: str, cost: int = 0, max_ops: int = 0) -> None:
        super().__init__(message)
        self.cost = cost
        self.max_ops = max_ops


def seed_value(slot: int, index: int, seed: int = 0) -> int:
    """Deterministic small-integer tensor element.

    Values stay in ``1..11`` so floating-point accumulation over them is
    exact: sums and products of small integers round-trip through f64
    without rounding, making legal-but-reordering transforms bitwise
    identical (the documented tolerance is only for non-integer math).
    """
    return (slot * 7 + index * 3 + seed * 5) % 11 + 1


def _symbol_slot(symbol: str) -> int:
    """Stable per-symbol seeding slot (independent of hash randomization)."""
    return sum((i + 1) * ord(c) for i, c in enumerate(symbol)) % 997 + 100


# ---------------------------------------------------------------------------
# Memory model
# ---------------------------------------------------------------------------


def _zero_of(element_type) -> Union[int, float]:
    return 0.0 if isinstance(element_type, FloatType) else 0


def _row_major_strides(shape: Sequence[int]) -> Tuple[int, ...]:
    strides = [1] * len(shape)
    for d in range(len(shape) - 2, -1, -1):
        strides[d] = strides[d + 1] * shape[d + 1]
    return tuple(strides)


class MemoryRef:
    """A (possibly strided) view over flat storage cells."""

    __slots__ = ("cells", "shape", "strides", "offset")

    def __init__(
        self,
        cells: List[Union[int, float]],
        shape: Sequence[int],
        strides: Optional[Sequence[int]] = None,
        offset: int = 0,
    ) -> None:
        self.cells = cells
        self.shape = tuple(int(s) for s in shape)
        self.strides = (
            tuple(strides) if strides is not None else _row_major_strides(self.shape)
        )
        self.offset = offset

    @classmethod
    def allocate(
        cls, memref_type: MemRefType, fill: Callable[[int], Union[int, float]]
    ) -> "MemoryRef":
        count = memref_type.num_elements
        if isinstance(memref_type.element_type, FloatType):
            cells: List[Union[int, float]] = [float(fill(i)) for i in range(count)]
        else:
            cells = [int(fill(i)) for i in range(count)]
        return cls(cells, memref_type.shape)

    @property
    def num_elements(self) -> int:
        count = 1
        for extent in self.shape:
            count *= extent
        return count

    def _address(self, indices: Sequence[int]) -> Optional[int]:
        if len(indices) != len(self.shape):
            # Rank-mismatched accesses (e.g. scalar access to rank-1 view)
            # are tolerated by flattening when possible.
            if not self.shape and not indices:
                return self.offset
            return None
        address = self.offset
        for index, extent, stride in zip(indices, self.shape, self.strides):
            if index < 0 or index >= extent:
                return None
            address += index * stride
        return address

    def load(self, indices: Sequence[int]) -> Optional[Union[int, float]]:
        address = self._address(indices)
        if address is None or not 0 <= address < len(self.cells):
            return None
        return self.cells[address]

    def store(self, indices: Sequence[int], value: Union[int, float]) -> bool:
        address = self._address(indices)
        if address is None or not 0 <= address < len(self.cells):
            return False
        self.cells[address] = value
        return True

    def logical_cells(self) -> Tuple[Union[int, float], ...]:
        """The view's elements in row-major logical order."""
        if not self.shape:
            return (self.cells[self.offset],)
        if (
            self.offset == 0
            and self.strides == _row_major_strides(self.shape)
            and self.num_elements == len(self.cells)
        ):
            return tuple(self.cells)
        out: List[Union[int, float]] = []
        indices = [0] * len(self.shape)
        for _ in range(self.num_elements):
            value = self.load(indices)
            out.append(0 if value is None else value)
            for d in range(len(self.shape) - 1, -1, -1):
                indices[d] += 1
                if indices[d] < self.shape[d]:
                    break
                indices[d] = 0
        return tuple(out)

    def copy_from(self, source: "MemoryRef") -> None:
        """Element-wise copy (logical order, overlapping prefix)."""
        src = source.logical_cells()
        dst_count = self.num_elements
        if not self.shape:
            self.cells[self.offset] = src[0]
            return
        indices = [0] * len(self.shape)
        for flat in range(min(dst_count, len(src))):
            self.store(indices, src[flat])
            for d in range(len(self.shape) - 1, -1, -1):
                indices[d] += 1
                if indices[d] < self.shape[d]:
                    break
                indices[d] = 0


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ExecutionResult:
    """Observable behaviour of one module execution.

    ``outputs`` holds the final contents of every memref argument of the
    executed function, keyed by argument position (``arg0``, ``arg1``, ...)
    so the key survives renaming across pipeline stages.
    """

    outputs: Tuple[Tuple[str, Tuple[Union[int, float], ...]], ...]
    returned: Tuple[object, ...] = ()
    ops_executed: int = 0
    oob_reads: int = 0
    oob_writes: int = 0
    stream_underflows: int = 0

    @property
    def output_map(self) -> Dict[str, Tuple[Union[int, float], ...]]:
        return dict(self.outputs)


def diff_results(
    before: ExecutionResult, after: ExecutionResult, tolerance: float = 0.0
) -> List[str]:
    """Human-readable mismatches between two executions (empty = equal).

    ``tolerance`` is a *relative* bound applied per element when non-zero;
    ``0.0`` (the default) demands bitwise equality.
    """

    def close(a, b) -> bool:
        if a == b:
            return True
        if tolerance <= 0.0:
            return False
        try:
            return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))
        except TypeError:
            return False

    mismatches: List[str] = []
    before_map, after_map = before.output_map, after.output_map
    for name in sorted(set(before_map) | set(after_map)):
        left, right = before_map.get(name), after_map.get(name)
        if left is None or right is None:
            mismatches.append(f"{name}: present on one side only")
            continue
        if len(left) != len(right):
            mismatches.append(
                f"{name}: {len(left)} element(s) vs {len(right)}"
            )
            continue
        for index, (a, b) in enumerate(zip(left, right)):
            if not close(a, b):
                mismatches.append(f"{name}[{index}]: {a!r} != {b!r}")
                break  # first differing element per buffer is enough
    if len(before.returned) != len(after.returned):
        mismatches.append(
            f"returned {len(before.returned)} value(s) vs {len(after.returned)}"
        )
    else:
        for index, (a, b) in enumerate(zip(before.returned, after.returned)):
            if not close(a, b):
                mismatches.append(f"returned[{index}]: {a!r} != {b!r}")
    return mismatches


# ---------------------------------------------------------------------------
# Static cost estimation
# ---------------------------------------------------------------------------


def _constant_int(value: Value) -> Optional[int]:
    owner = value.defining_op
    if isinstance(owner, ConstantOp):
        try:
            return int(owner.value)
        except (TypeError, ValueError):
            return None
    return None


def estimate_cost(op: Operation) -> int:
    """Estimated op executions of interpreting ``op`` (loops multiplied out).

    Approximate by construction — scf loops with non-constant bounds are
    assumed to run :data:`_UNKNOWN_TRIP` iterations and linalg ops are
    charged through their MAC/element counts — but cheap (one IR walk) and
    good enough to refuse model-scale modules before touching them.
    """
    if isinstance(op, AffineForOp):
        return 2 + max(op.trip_count, 0) * _block_cost(op.body)
    if isinstance(op, ScfForOp):
        lb = _constant_int(op.operand(0))
        ub = _constant_int(op.operand(1))
        step = _constant_int(op.operand(2))
        if lb is not None and ub is not None and step:
            trips = max(0, -(-(ub - lb) // step)) if step > 0 else _UNKNOWN_TRIP
        else:
            trips = _UNKNOWN_TRIP
        return 2 + trips * sum(_block_cost(b) for r in op.regions for b in r.blocks)
    if isinstance(op, ScfWhileOp):
        body = sum(_block_cost(b) for r in op.regions for b in r.blocks)
        return 2 + _UNKNOWN_TRIP * body
    from ..dialects.linalg import LinalgOp  # local: keep the ir layer light

    if isinstance(op, LinalgOp):
        cost = 0
        for result in op.results:
            if isinstance(result.type, MemRefType):
                cost += result.type.num_elements
        try:
            cost = max(cost, int(op.macs()))
        except (AttributeError, TypeError, NotImplementedError):
            pass
        return 4 * max(cost, 1)
    if isinstance(op, CopyOp):
        source_type = op.source.type
        elements = (
            source_type.num_elements if isinstance(source_type, MemRefType) else 1
        )
        return 1 + elements
    cost = 1
    for region in op.regions:
        for block in region.blocks:
            cost += _block_cost(block)
    return cost


def _block_cost(block: Block) -> int:
    return sum(estimate_cost(op) for op in block.operations)


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------

_BINARY_FLOAT: Dict[type, Callable[[Any, Any], Any]] = {
    AddFOp: lambda a, b: a + b,
    SubFOp: lambda a, b: a - b,
    MulFOp: lambda a, b: a * b,
    MaxFOp: max,
    MinFOp: min,
    AddIOp: lambda a, b: a + b,
    SubIOp: lambda a, b: a - b,
    MulIOp: lambda a, b: a * b,
    MaxIOp: max,
    MinIOp: min,
}

_CMP_PREDICATES: Dict[str, Callable[[Any, Any], Any]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        raise InterpreterError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


class _Interpreter:
    def __init__(self, seed: int, max_ops: int) -> None:
        self.seed = seed
        self.max_ops = max_ops
        self.ops_executed = 0
        self.oob_reads = 0
        self.oob_writes = 0
        self.stream_underflows = 0
        self.globals: Dict[str, MemoryRef] = {}
        self.returned: Tuple[object, ...] = ()

    # ------------------------------------------------------------- entry
    def run(self, func: FuncOp) -> ExecutionResult:
        env: Dict[Value, Any] = {}
        for slot, argument in enumerate(func.arguments):
            env[argument] = self._seeded_argument(slot, argument.type)
        self._exec_block(func.entry_block, env)
        outputs: List[Tuple[str, Tuple[Union[int, float], ...]]] = []
        for slot, argument in enumerate(func.arguments):
            bound = env[argument]
            if isinstance(bound, MemoryRef):
                outputs.append((f"arg{slot}", bound.logical_cells()))
        returned = tuple(
            value.logical_cells() if isinstance(value, MemoryRef) else value
            for value in self.returned
        )
        return ExecutionResult(
            outputs=tuple(outputs),
            returned=returned,
            ops_executed=self.ops_executed,
            oob_reads=self.oob_reads,
            oob_writes=self.oob_writes,
            stream_underflows=self.stream_underflows,
        )

    def _seeded_argument(self, slot: int, value_type) -> object:
        if isinstance(value_type, MemRefType):
            return MemoryRef.allocate(
                value_type, lambda i: seed_value(slot, i, self.seed)
            )
        if isinstance(value_type, StreamType):
            return deque()
        if isinstance(value_type, FloatType):
            return float(seed_value(slot, 0, self.seed))
        return seed_value(slot, 0, self.seed)

    # ------------------------------------------------------------ helpers
    def _charge(self) -> None:
        self.ops_executed += 1
        if self.ops_executed > self.max_ops * _DYNAMIC_SLACK:
            raise InterpreterBudgetError(
                f"dynamic op count exceeded "
                f"{self.max_ops * _DYNAMIC_SLACK} (budget {self.max_ops})",
                cost=self.ops_executed,
                max_ops=self.max_ops,
            )

    def _subscripts(
        self, affine_map, operands: Sequence[Any]
    ) -> Tuple[int, ...]:
        dims = [int(v) for v in operands[: affine_map.num_dims]]
        symbols = [int(v) for v in operands[affine_map.num_dims :]]
        results = affine_map.evaluate(dims, symbols)
        coerced = []
        for value in results:
            if isinstance(value, Fraction):
                if value.denominator != 1:
                    raise InterpreterError(
                        f"non-integer subscript {value} from affine map"
                    )
                value = value.numerator
            coerced.append(int(value))
        return tuple(coerced)

    def _zero_for(self, value: Value) -> Union[int, float]:
        value_type = value.type
        if isinstance(value_type, MemRefType):
            return _zero_of(value_type.element_type)
        return _zero_of(value_type)

    def _run_body(self, block: Block, env: Dict[Value, Any]) -> None:
        for op in block.operations:
            if isinstance(op, (AffineYieldOp, ScfYieldOp, HidaYieldOp, ReturnOp)):
                if isinstance(op, ReturnOp):
                    self._exec(op, env)
                break
            self._exec(op, env)

    def _terminator_operands(
        self, block: Block, env: Dict[Value, Any]
    ) -> List[Any]:
        last = block.last_op
        if last is not None and isinstance(
            last, (AffineYieldOp, ScfYieldOp, HidaYieldOp)
        ):
            return [env[v] for v in last.operands]
        return []

    def _exec_block(self, block: Block, env: Dict[Value, Any]) -> None:
        for op in block.operations:
            self._exec(op, env)

    # ----------------------------------------------------------- dispatch
    def _exec(self, op: Operation, env: Dict[Value, Any]) -> None:
        self._charge()

        # Constants and casts -------------------------------------------
        if isinstance(op, ConstantOp):
            value = op.value
            result = op.result()
            if isinstance(result.type, FloatType):
                env[result] = float(value)
            else:
                env[result] = int(value)
            return
        if isinstance(op, UnrealizedCastOp):
            env[op.result()] = env[op.operand(0)]
            return
        if isinstance(op, CastOp):
            value = env[op.operand(0)]
            target = op.result().type
            if isinstance(target, FloatType):
                env[op.result()] = float(value)
            else:
                env[op.result()] = math.trunc(value)
            return

        # Arith ----------------------------------------------------------
        handler = _BINARY_FLOAT.get(type(op))
        if handler is not None:
            env[op.result()] = handler(env[op.operand(0)], env[op.operand(1)])
            return
        if isinstance(op, DivFOp):
            rhs = env[op.operand(1)]
            if rhs == 0:
                raise InterpreterError("float division by zero")
            env[op.result()] = env[op.operand(0)] / rhs
            return
        if isinstance(op, DivIOp):
            env[op.result()] = _trunc_div(
                int(env[op.operand(0)]), int(env[op.operand(1)])
            )
            return
        if isinstance(op, NegFOp):
            env[op.result()] = -env[op.operand(0)]
            return
        if isinstance(op, ExpOp):
            env[op.result()] = math.exp(env[op.operand(0)])
            return
        if isinstance(op, SqrtOp):
            operand = env[op.operand(0)]
            if operand < 0:
                raise InterpreterError(f"sqrt of negative value {operand!r}")
            env[op.result()] = math.sqrt(operand)
            return
        if isinstance(op, MACOp):
            env[op.result()] = env[op.operand(2)] + (
                env[op.operand(0)] * env[op.operand(1)]
            )
            return
        if isinstance(op, CmpOp):
            predicate = op.get_attr("predicate")
            compare = _CMP_PREDICATES.get(str(predicate))
            if compare is None:
                raise UnsupportedOpError(f"unknown cmp predicate {predicate!r}")
            env[op.result()] = int(
                compare(env[op.operand(0)], env[op.operand(1)])
            )
            return
        if isinstance(op, SelectOp):
            env[op.result()] = (
                env[op.operand(1)] if env[op.operand(0)] else env[op.operand(2)]
            )
            return

        # Affine ---------------------------------------------------------
        if isinstance(op, AffineApplyOp):
            env[op.result()] = self._subscripts(
                op.map, [env[v] for v in op.operands]
            )[0]
            return
        if isinstance(op, AffineLoadOp):
            memory = env[op.memref]
            indices = self._subscripts(
                op.access_map, [env[v] for v in op.index_operands]
            )
            value = memory.load(indices)
            if value is None:
                self.oob_reads += 1
                value = self._zero_for(op.memref)
            env[op.result()] = value
            return
        if isinstance(op, AffineStoreOp):
            memory = env[op.memref]
            indices = self._subscripts(
                op.access_map, [env[v] for v in op.index_operands]
            )
            if not memory.store(indices, env[op.value]):
                self.oob_writes += 1
            return
        if isinstance(op, AffineForOp):
            self._exec_affine_for(op, env)
            return
        if isinstance(op, AffineIfOp):
            condition = op.get_attr("condition")
            holds = all(
                v >= 0
                for v in self._subscripts(
                    condition, [env[v] for v in op.operands]
                )
            )
            if holds:
                self._run_body(op.then_block, env)
            elif op.else_block is not None:
                self._run_body(op.else_block, env)
            return

        # MemRef ---------------------------------------------------------
        if isinstance(op, AllocOp):
            env[op.result()] = MemoryRef.allocate(op.memref_type, lambda i: 0)
            return
        if isinstance(op, DeallocOp):
            return
        if isinstance(op, LoadOp):
            memory = env[op.memref]
            indices = [int(env[v]) for v in op.indices]
            value = memory.load(indices)
            if value is None:
                self.oob_reads += 1
                value = self._zero_for(op.memref)
            env[op.result()] = value
            return
        if isinstance(op, StoreOp):
            memory = env[op.memref]
            indices = [int(env[v]) for v in op.indices]
            if not memory.store(indices, env[op.value]):
                self.oob_writes += 1
            return
        if isinstance(op, CopyOp):
            target = env[op.target]
            target.copy_from(env[op.source])
            self.ops_executed += max(target.num_elements - 1, 0)
            return
        if isinstance(op, SubViewOp):
            parent: MemoryRef = env[op.operand(0)]
            offsets = [int(v) for v in op.get_attr("offsets", ())]
            sizes = [int(v) for v in op.get_attr("sizes", ())]
            strides = [int(v) for v in op.get_attr("strides", ())]
            offset = parent.offset + sum(
                o * s for o, s in zip(offsets, parent.strides)
            )
            view_strides = [
                p * s for p, s in zip(parent.strides, strides)
            ]
            env[op.result()] = MemoryRef(
                parent.cells, sizes, view_strides, offset
            )
            return
        if isinstance(op, GetGlobalOp):
            symbol = str(op.get_attr("symbol"))
            if symbol not in self.globals:
                slot = _symbol_slot(symbol)
                self.globals[symbol] = MemoryRef.allocate(
                    cast(MemRefType, op.result().type),
                    lambda i: seed_value(slot, i, self.seed),
                )
            env[op.result()] = self.globals[symbol]
            return

        # scf ------------------------------------------------------------
        if isinstance(op, ScfForOp):
            self._exec_scf_for(op, env)
            return
        if isinstance(op, ScfIfOp):
            self._exec_scf_if(op, env)
            return
        if isinstance(op, ScfWhileOp):
            self._exec_scf_while(op, env)
            return

        # hida dataflow --------------------------------------------------
        if isinstance(op, DispatchOp):
            self._exec_block_transparent(op.body, env)
            return
        if isinstance(op, TaskOp):
            self._exec_block_transparent(op.body, env)
            results = self._terminator_operands(op.body, env)
            for result, value in zip(op.results, results):
                env[result] = value
            return
        if isinstance(op, ScheduleOp):
            inner: Dict[Value, Any] = {}
            for operand, argument in zip(op.operands, op.body.arguments):
                inner[argument] = env[operand]
            self._exec_block_transparent(op.body, inner)
            return
        if isinstance(op, NodeOp):
            inner = {}
            for operand, argument in zip(op.operands, op.body.arguments):
                inner[argument] = env[operand]
            self._exec_block_transparent(op.body, inner)
            return
        if isinstance(op, BufferOp):
            env[op.result()] = MemoryRef.allocate(op.memref_type, lambda i: 0)
            return
        if isinstance(op, StreamOp):
            env[op.result()] = deque()
            return
        if isinstance(op, StreamReadOp):
            queue: Deque[object] = env[op.operand(0)]
            if queue:
                value = queue.popleft()
            else:
                self.stream_underflows += 1
                value = _zero_of(op.result().type)
            env[op.result()] = value
            return
        if isinstance(op, StreamWriteOp):
            env[op.operand(0)].append(env[op.operand(1)])
            return

        # Functions ------------------------------------------------------
        if isinstance(op, ReturnOp):
            self.returned = tuple(env[v] for v in op.operands)
            return
        if isinstance(op, ModuleOp) or isinstance(op, FuncOp):
            raise InterpreterError(
                f"{op.name} cannot be executed as a nested op"
            )

        raise UnsupportedOpError(
            f"no interpreter semantics for {op.name!r}"
        )

    # -------------------------------------------------------- region exec
    def _exec_block_transparent(
        self, block: Block, env: Dict[Value, Any]
    ) -> None:
        for op in block.operations:
            if isinstance(op, (HidaYieldOp, AffineYieldOp, ScfYieldOp)):
                break
            self._exec(op, env)

    def _exec_affine_for(self, loop: AffineForOp, env: Dict[Value, Any]) -> None:
        body_ops = [
            op
            for op in loop.body.operations
            if not isinstance(op, AffineYieldOp)
        ]
        iv = loop.induction_variable
        for value in range(loop.lower_bound, loop.upper_bound, loop.step):
            env[iv] = value
            for op in body_ops:
                self._exec(op, env)

    def _exec_scf_for(self, loop: ScfForOp, env: Dict[Value, Any]) -> None:
        lb = int(env[loop.operand(0)])
        ub = int(env[loop.operand(1)])
        step = int(env[loop.operand(2)])
        if step <= 0:
            raise InterpreterError(f"scf.for step must be positive, got {step}")
        iter_values = [env[v] for v in loop.operands[3:]]
        block = loop.regions[0].entry_block
        body_ops = [
            op for op in block.operations if not isinstance(op, ScfYieldOp)
        ]
        for value in range(lb, ub, step):
            env[block.arguments[0]] = value
            for argument, iter_value in zip(block.arguments[1:], iter_values):
                env[argument] = iter_value
            for op in body_ops:
                self._exec(op, env)
            yielded = self._terminator_operands(block, env)
            if yielded:
                iter_values = yielded
        for result, value in zip(loop.results, iter_values):
            env[result] = value

    def _exec_scf_if(self, op: ScfIfOp, env: Dict[Value, Any]) -> None:
        condition = env[op.operand(0)]
        block: Optional[Block] = None
        if condition:
            block = op.regions[0].entry_block
        elif len(op.regions) > 1 and op.regions[1].blocks:
            block = op.regions[1].entry_block
        if block is not None:
            self._run_body(block, env)
            results = self._terminator_operands(block, env)
        else:
            results = []
        for index, result in enumerate(op.results):
            env[result] = (
                results[index]
                if index < len(results)
                else self._zero_for(result)
            )

    def _exec_scf_while(self, op: ScfWhileOp, env: Dict[Value, Any]) -> None:
        cond_block = op.regions[0].entry_block
        body_block = op.regions[1].entry_block
        values = [env[v] for v in op.operands]
        while True:
            for argument, value in zip(cond_block.arguments, values):
                env[argument] = value
            self._run_body(cond_block, env)
            yielded = self._terminator_operands(cond_block, env)
            if not yielded:
                raise InterpreterError("scf.while condition region must yield")
            flag, forwarded = yielded[0], yielded[1:] or values
            if not flag:
                values = list(forwarded)
                break
            for argument, value in zip(body_block.arguments, forwarded):
                env[argument] = value
            self._run_body(body_block, env)
            next_values = self._terminator_operands(body_block, env)
            values = next_values if next_values else list(forwarded)
        for result, value in zip(op.results, values):
            env[result] = value


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _executable_module(module: ModuleOp) -> ModuleOp:
    """The module itself, or an affine-lowered clone if linalg remains."""
    from ..dialects.linalg import LinalgOp

    if not any(isinstance(op, LinalgOp) for op in module.walk()):
        return module
    from ..transforms.linalg_to_affine import lower_linalg_to_affine

    clone = module.clone()
    lower_linalg_to_affine(clone)
    return clone


def _entry_function(module: ModuleOp, name: Optional[str]) -> FuncOp:
    functions = module.functions
    if not functions:
        raise InterpreterError("module has no functions to execute")
    if name is not None:
        func = module.lookup(name)
        if func is None:
            raise InterpreterError(f"no function named {name!r}")
        return func
    for func in functions:
        if func.is_top:
            return func
    return functions[0]


def interpret_module(
    module: ModuleOp,
    *,
    seed: int = 0,
    max_ops: int = DEFAULT_MAX_OPS,
    function: Optional[str] = None,
) -> ExecutionResult:
    """Execute ``module``'s top function over seeded inputs.

    Raises :class:`InterpreterBudgetError` when the statically estimated
    cost exceeds ``max_ops`` (callers report "skipped", never a silent
    pass) and :class:`InterpreterError` on malformed or unsupported IR.
    """
    module = _executable_module(module)
    cost = estimate_cost(module)
    if cost > max_ops:
        raise InterpreterBudgetError(
            f"estimated interpretation cost {cost} exceeds budget {max_ops}",
            cost=cost,
            max_ops=max_ops,
        )
    func = _entry_function(module, function)
    return _Interpreter(seed, max_ops).run(func)
