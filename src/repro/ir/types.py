"""Type system for the repro IR.

The type system mirrors the small subset of MLIR types that HIDA relies on:
scalar integer/float/index types, ranked tensors, memrefs (with optional
layout, partition and memory-space annotations), stream channels, and
function types.  Types are immutable value objects: two types compare equal
iff they describe the same type, and they can be used as dict keys.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

__all__ = [
    "Type",
    "NoneType",
    "IndexType",
    "IntegerType",
    "FloatType",
    "TokenType",
    "TensorType",
    "MemRefType",
    "StreamType",
    "FunctionType",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "f16",
    "f32",
    "f64",
    "index",
    "none",
    "token",
]


@dataclasses.dataclass(frozen=True)
class Type:
    """Base class for all IR types."""

    @property
    def bitwidth(self) -> int:
        """Storage width in bits; 0 for types without a data representation."""
        return 0

    @property
    def is_shaped(self) -> bool:
        return isinstance(self, (TensorType, MemRefType))

    def __str__(self) -> str:  # pragma: no cover - overridden by subclasses
        return self.__class__.__name__


@dataclasses.dataclass(frozen=True)
class NoneType(Type):
    """The unit type, used by ops that produce no meaningful value."""

    def __str__(self) -> str:
        return "none"


@dataclasses.dataclass(frozen=True)
class IndexType(Type):
    """Platform-width integer used for loop induction variables and indices."""

    @property
    def bitwidth(self) -> int:
        return 64

    def __str__(self) -> str:
        return "index"


@dataclasses.dataclass(frozen=True)
class IntegerType(Type):
    """Fixed-width integer type (``i1``, ``i8``, ``i32``, ...)."""

    width: int = 32
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"integer width must be positive, got {self.width}")

    @property
    def bitwidth(self) -> int:
        return self.width

    def __str__(self) -> str:
        prefix = "i" if self.signed else "ui"
        return f"{prefix}{self.width}"


@dataclasses.dataclass(frozen=True)
class FloatType(Type):
    """IEEE floating point type (``f16``, ``f32``, ``f64``)."""

    width: int = 32

    def __post_init__(self) -> None:
        if self.width not in (16, 32, 64):
            raise ValueError(f"unsupported float width {self.width}")

    @property
    def bitwidth(self) -> int:
        return self.width

    def __str__(self) -> str:
        return f"f{self.width}"


@dataclasses.dataclass(frozen=True)
class TokenType(Type):
    """Single-bit synchronization token used by elastic node execution."""

    @property
    def bitwidth(self) -> int:
        return 1

    def __str__(self) -> str:
        return "token"


def _check_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    shape = tuple(int(d) for d in shape)
    for dim in shape:
        if dim < 0:
            raise ValueError(f"shape dimensions must be non-negative, got {shape}")
    return shape


@dataclasses.dataclass(frozen=True)
class TensorType(Type):
    """Immutable ranked tensor value type (Functional dataflow level)."""

    shape: Tuple[int, ...]
    element_type: Type

    def __init__(self, shape: Sequence[int], element_type: Type) -> None:
        object.__setattr__(self, "shape", _check_shape(shape))
        object.__setattr__(self, "element_type", element_type)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def bitwidth(self) -> int:
        return self.num_elements * self.element_type.bitwidth

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        sep = "x" if dims else ""
        return f"tensor<{dims}{sep}{self.element_type}>"


@dataclasses.dataclass(frozen=True)
class MemRefType(Type):
    """Mutable, addressable buffer type (Structural dataflow level).

    ``memory_space`` distinguishes on-chip (``"bram"``, ``"lutram"``,
    ``"uram"``) from off-chip (``"dram"``) storage, mirroring the buffer
    placement attribute of the HIDA ``buffer`` op.
    """

    shape: Tuple[int, ...]
    element_type: Type
    memory_space: str = "bram"

    def __init__(
        self,
        shape: Sequence[int],
        element_type: Type,
        memory_space: str = "bram",
    ) -> None:
        object.__setattr__(self, "shape", _check_shape(shape))
        object.__setattr__(self, "element_type", element_type)
        object.__setattr__(self, "memory_space", memory_space)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def bitwidth(self) -> int:
        return self.num_elements * self.element_type.bitwidth

    @property
    def is_on_chip(self) -> bool:
        return self.memory_space != "dram"

    def with_memory_space(self, memory_space: str) -> "MemRefType":
        return MemRefType(self.shape, self.element_type, memory_space)

    def with_shape(self, shape: Sequence[int]) -> "MemRefType":
        return MemRefType(shape, self.element_type, self.memory_space)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        sep = "x" if dims else ""
        return f"memref<{dims}{sep}{self.element_type}, {self.memory_space}>"


@dataclasses.dataclass(frozen=True)
class StreamType(Type):
    """FIFO stream channel type with a bounded number of entries."""

    element_type: Type
    depth: int = 2

    def __post_init__(self) -> None:
        if self.depth <= 0:
            raise ValueError(f"stream depth must be positive, got {self.depth}")

    @property
    def bitwidth(self) -> int:
        return self.depth * self.element_type.bitwidth

    def __str__(self) -> str:
        return f"stream<{self.element_type}, {self.depth}>"


@dataclasses.dataclass(frozen=True)
class FunctionType(Type):
    """Type of a function: a list of input types and a list of result types."""

    inputs: Tuple[Type, ...]
    results: Tuple[Type, ...]

    def __init__(self, inputs: Sequence[Type], results: Sequence[Type]) -> None:
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "results", tuple(results))

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        outs = ", ".join(str(t) for t in self.results)
        return f"({ins}) -> ({outs})"


# Commonly used singleton-ish instances.
i1 = IntegerType(1)
i8 = IntegerType(8)
i16 = IntegerType(16)
i32 = IntegerType(32)
i64 = IntegerType(64)
f16 = FloatType(16)
f32 = FloatType(32)
f64 = FloatType(64)
index = IndexType()
none = NoneType()
token = TokenType()


def element_type_of(ty: Type) -> Type:
    """Return the element type of a shaped or stream type, else the type itself."""
    if isinstance(ty, (TensorType, MemRefType, StreamType)):
        return ty.element_type
    return ty


def shape_of(ty: Type) -> Optional[Tuple[int, ...]]:
    """Return the shape of a shaped type, or ``None`` for scalars."""
    if isinstance(ty, (TensorType, MemRefType)):
        return ty.shape
    return None


def memref_of(ty: Type, memory_space: str = "bram") -> MemRefType:
    """Convert a tensor (or memref) type into a memref type."""
    if isinstance(ty, MemRefType):
        return ty
    if isinstance(ty, TensorType):
        return MemRefType(ty.shape, ty.element_type, memory_space)
    raise TypeError(f"cannot convert {ty} to a memref type")


def tensor_of(ty: Type) -> TensorType:
    """Convert a memref (or tensor) type into a tensor type."""
    if isinstance(ty, TensorType):
        return ty
    if isinstance(ty, MemRefType):
        return TensorType(ty.shape, ty.element_type)
    raise TypeError(f"cannot convert {ty} to a tensor type")
