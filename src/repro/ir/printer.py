"""Textual printer for the IR.

Produces an MLIR-flavoured, human-readable rendering of operations, regions
and blocks.  The output round-trips through :mod:`repro.ir.parser`, which is
what makes printed IR usable as a serialization format (stage-boundary
snapshots in :mod:`repro.compiler.ircache`); it also remains the basis of
content fingerprints, so the rendering must stay deterministic and
unambiguous — every SSA value prints under a unique name.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, Set

from .core import Operation, Region, Value

__all__ = ["print_op", "fingerprint_op", "IRPrinter"]


def _format_attr(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_attr(v) for v in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(f"{k} = {_format_attr(v)}" for k, v in value.items())
        return "{" + inner + "}"
    return str(value)


class IRPrinter:
    """Stateful printer assigning stable SSA names within a top-level op."""

    def __init__(self, indent_width: int = 2) -> None:
        self._names: Dict[int, str] = {}
        self._used: Set[str] = set()
        self._counter = 0
        self._indent_width = indent_width

    # ------------------------------------------------------------ value names
    def name_of(self, value: Value) -> str:
        key = id(value)
        if key not in self._names:
            if value.name_hint:
                name = value.name_hint
                while name in self._used:
                    name = f"{value.name_hint}_{self._counter}"
                    self._counter += 1
            else:
                name = f"{self._counter}"
                self._counter += 1
                while name in self._used:
                    name = f"{self._counter}"
                    self._counter += 1
            self._names[key] = name
            self._used.add(name)
        return f"%{self._names[key]}"

    # -------------------------------------------------------------- printing
    def print_op(self, op: Operation, indent: int = 0) -> str:
        lines: List[str] = []
        self._print_op(op, indent, lines)
        return "\n".join(lines)

    def _print_op(self, op: Operation, indent: int, lines: List[str]) -> None:
        pad = " " * (indent * self._indent_width)
        results = ", ".join(self.name_of(r) for r in op.results)
        prefix = f"{results} = " if results else ""
        operands = ", ".join(self.name_of(v) for v in op.operands)
        attr_items = {
            k: v for k, v in op.attributes.items() if not k.startswith("_")
        }
        attrs = ""
        if attr_items:
            attrs = " {" + ", ".join(
                f"{k} = {_format_attr(v)}" for k, v in sorted(attr_items.items())
            ) + "}"
        types = ""
        if op.results:
            types = " : " + ", ".join(str(r.type) for r in op.results)
        header = f"{pad}{prefix}{op.name}({operands}){attrs}{types}"
        if not op.regions or all(r.empty for r in op.regions):
            lines.append(header)
            return
        lines.append(header + " {")
        for index, region in enumerate(op.regions):
            if index:
                # Multi-region ops delimit their regions explicitly so the
                # textual form stays parseable (region boundaries would
                # otherwise be ambiguous).
                lines.append(pad + "} {")
            self._print_region(region, indent + 1, lines)
        lines.append(pad + "}")

    def _print_region(self, region: Region, indent: int, lines: List[str]) -> None:
        pad = " " * (indent * self._indent_width)
        multi_block = len(region.blocks) > 1
        for i, block in enumerate(region.blocks):
            if multi_block or block.arguments:
                args = ", ".join(
                    f"{self.name_of(a)}: {a.type}" for a in block.arguments
                )
                lines.append(f"{pad}^bb{i}({args}):")
            for op in block.operations:
                self._print_op(op, indent + (1 if multi_block else 0), lines)


def print_op(op: Operation) -> str:
    """Render an operation (and everything nested in it) as text."""
    return IRPrinter().print_op(op)


def fingerprint_op(op: Operation, memo: Optional[Dict[int, str]] = None) -> str:
    """Deterministic content hash of an operation and everything nested in it.

    The fingerprint is the SHA-256 of the printed form rendered by a fresh
    :class:`IRPrinter`: SSA names are assigned in traversal order and
    attributes print in sorted key order, so two structurally identical ops
    fingerprint identically regardless of object identity, while any rewrite
    that changes operations, attributes or structure changes the hash.  Used
    as the stable cache key for analyses and QoR results.

    ``memo`` is an optional ``id(op) -> digest`` cache for callers that
    fingerprint many ops of one unmutated module walk (the analysis manager,
    repeated cache-key computations); the caller owns invalidation — drop
    the memo whenever the IR may have changed.
    """
    if memo is not None:
        cached = memo.get(id(op))
        if cached is not None:
            return cached
    text = IRPrinter().print_op(op)
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    if memo is not None:
        memo[id(op)] = digest
    return digest
