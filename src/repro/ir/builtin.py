"""Builtin operations: module, function, return and a generic constant."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .core import Block, Operation, Value, register_operation
from .types import FunctionType, Type

__all__ = ["ModuleOp", "FuncOp", "ReturnOp", "ConstantOp", "UnrealizedCastOp"]


@register_operation
class ModuleOp(Operation):
    """Top-level container of functions and global declarations."""

    OPERATION_NAME = "builtin.module"

    @classmethod
    def create(cls, name: str = "module") -> "ModuleOp":
        op = cls(name=cls.OPERATION_NAME, num_regions=1, attributes={"sym_name": name})
        op.regions[0].add_entry_block()
        return op

    @property
    def sym_name(self) -> str:
        return self.get_attr("sym_name", "module")

    @property
    def functions(self) -> List["FuncOp"]:
        return [op for op in self.body.operations if isinstance(op, FuncOp)]

    def lookup(self, name: str) -> Optional["FuncOp"]:
        """Find a function by symbol name."""
        for func in self.functions:
            if func.sym_name == name:
                return func
        return None

    def append(self, op: Operation) -> Operation:
        return self.body.append(op)

    def verify(self) -> None:
        names = [f.sym_name for f in self.functions]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate function symbols in module: {names}")


@register_operation
class FuncOp(Operation):
    """A callable function with a single-region body.

    The entry block's arguments carry the function input values.  HIDA marks
    the design's top function with a ``top`` unit attribute.
    """

    OPERATION_NAME = "func.func"

    @classmethod
    def create(
        cls,
        name: str,
        input_types: Sequence[Type] = (),
        result_types: Sequence[Type] = (),
        top: bool = False,
        arg_names: Optional[Sequence[str]] = None,
    ) -> "FuncOp":
        func_type = FunctionType(input_types, result_types)
        attrs: Dict[str, Any] = {"sym_name": name, "function_type": func_type}
        if top:
            attrs["top"] = True
        op = cls(name=cls.OPERATION_NAME, num_regions=1, attributes=attrs)
        entry = op.regions[0].add_entry_block(arg_types=input_types)
        if arg_names:
            for arg, hint in zip(entry.arguments, arg_names):
                arg.name_hint = hint
        return op

    @property
    def sym_name(self) -> str:
        return self.get_attr("sym_name")

    @property
    def function_type(self) -> FunctionType:
        return self.get_attr("function_type")

    @property
    def is_top(self) -> bool:
        return bool(self.get_attr("top", False))

    @property
    def entry_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def arguments(self) -> List[Value]:
        return list(self.entry_block.arguments)

    def verify(self) -> None:
        func_type = self.function_type
        if func_type is None:
            raise ValueError(f"function {self.sym_name!r} is missing its type")
        args = self.entry_block.arguments
        if len(args) != len(func_type.inputs):
            raise ValueError(
                f"function {self.sym_name!r}: entry block has {len(args)} "
                f"arguments but type expects {len(func_type.inputs)}"
            )


@register_operation
class ReturnOp(Operation):
    """Terminator returning zero or more values from a function."""

    OPERATION_NAME = "func.return"

    @classmethod
    def create(cls, operands: Sequence[Value] = ()) -> "ReturnOp":
        return cls(name=cls.OPERATION_NAME, operands=operands)


@register_operation
class ConstantOp(Operation):
    """A typed compile-time constant (integer, float or index)."""

    OPERATION_NAME = "arith.constant"

    @classmethod
    def create(cls, value: Any, type: Type) -> "ConstantOp":
        return cls(
            name=cls.OPERATION_NAME,
            result_types=[type],
            attributes={"value": value},
        )

    @property
    def value(self) -> Any:
        return self.get_attr("value")


@register_operation
class UnrealizedCastOp(Operation):
    """A placeholder cast between types used during progressive lowering."""

    OPERATION_NAME = "builtin.unrealized_cast"

    @classmethod
    def create(cls, operand: Value, result_type: Type) -> "UnrealizedCastOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[operand],
            result_types=[result_type],
        )
