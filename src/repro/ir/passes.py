"""Pass infrastructure: passes, a pass manager and a greedy rewrite driver.

Mirrors the MLIR terminology used in the paper: *Transform* passes rewrite
IR within a dialect, *Conversion* passes move between dialects (lowering),
and *Analysis* results are cached per operation and invalidated whenever a
pass modifies the IR.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Type as PyType

from .builtin import FuncOp, ModuleOp
from .core import Operation
from .verifier import verify

__all__ = [
    "Pass",
    "FunctionPass",
    "PassManager",
    "PassInstrumentation",
    "PassTiming",
    "RewritePattern",
    "apply_patterns_greedily",
    "AnalysisManager",
]


class AnalysisManager:
    """Caches analysis results keyed by (analysis constructor, operation).

    Operations are identified by their *content fingerprint* (see
    :func:`~repro.ir.printer.fingerprint_op`), not ``id(op)``: CPython reuses
    object ids after garbage collection, so an id-keyed cache can silently
    serve a dead operation's analysis to an unrelated new op.  Fingerprint
    keying also gives rewrite invalidation for free — any mutation of the op
    (or anything nested in it) changes the key, forcing recomputation, while
    :meth:`invalidate` still drops everything between passes.

    Caveat: structurally identical ops share one slot, so analyses whose
    results hold references to the analyzed op's ``Value``/``Operation``
    objects (rather than structural facts) may receive a twin's objects;
    such identity-bound analyses should bypass the manager.
    """

    def __init__(self) -> None:
        self._cache: Dict[Any, Any] = {}

    # No ``fingerprint_op`` memo here: a pass may mutate the IR and re-query
    # an analysis within one run, and an id-keyed memo would serve the stale
    # digest.  Callers that *do* control the mutation window (the DSE
    # workload-fingerprint memo, batch cache-key computation) pass their own
    # memo to ``fingerprint_op`` instead.
    @staticmethod
    def _op_key(op: Operation) -> Any:
        from .printer import fingerprint_op

        return (op.name, fingerprint_op(op))

    def get(self, analysis_ctor: Callable[[Operation], Any], op: Operation) -> Any:
        key = (analysis_ctor, self._op_key(op))
        if key not in self._cache:
            self._cache[key] = analysis_ctor(op)
        return self._cache[key]

    def invalidate(self) -> None:
        self._cache.clear()


class Pass(abc.ABC):
    """A unit of IR transformation or analysis applied to a module."""

    #: Human readable pass name; defaults to the class name.
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            self.name = self.__class__.__name__

    @abc.abstractmethod
    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        """Apply the pass to ``module`` in place."""

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """A pass applied independently to every function in the module."""

    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        for func in module.functions:
            self.run_on_function(func, analyses)

    @abc.abstractmethod
    def run_on_function(self, func: FuncOp, analyses: AnalysisManager) -> None:
        """Apply the pass to a single function."""


class PassTiming:
    """Record of one pass execution within a pipeline."""

    def __init__(self, name: str, seconds: float) -> None:
        self.name = name
        self.seconds = seconds

    def __repr__(self) -> str:
        return f"{self.name}: {self.seconds * 1e3:.2f} ms"


class PassInstrumentation:
    """Observer hooks around individual pass executions.

    The pass-level sibling of the stage-level
    :class:`repro.compiler.driver.PipelineObserver`: attach instances to a
    :class:`PassManager` to watch IR evolve between passes (snapshots,
    custom timing sinks, invariant checks) without subclassing the manager.
    """

    def on_pass_start(self, pass_: Pass, module: ModuleOp) -> None:
        pass

    def on_pass_end(self, pass_: Pass, module: ModuleOp, seconds: float) -> None:
        pass


class PassManager:
    """Runs a sequence of passes over a module, optionally verifying between."""

    def __init__(
        self,
        passes: Sequence[Pass] = (),
        verify_each: bool = True,
        instrumentations: Sequence[PassInstrumentation] = (),
    ) -> None:
        self._passes: List[Pass] = list(passes)
        self.verify_each = verify_each
        self.instrumentations: List[PassInstrumentation] = list(instrumentations)
        self.timings: List[PassTiming] = []

    def add(self, pass_: Pass) -> "PassManager":
        self._passes.append(pass_)
        return self

    def extend(self, passes: Sequence[Pass]) -> "PassManager":
        self._passes.extend(passes)
        return self

    @property
    def passes(self) -> List[Pass]:
        return list(self._passes)

    def add_instrumentation(self, instrumentation: PassInstrumentation) -> "PassManager":
        self.instrumentations.append(instrumentation)
        return self

    def run(self, module: ModuleOp) -> ModuleOp:
        analyses = AnalysisManager()
        self.timings = []
        for pass_ in self._passes:
            for instrumentation in self.instrumentations:
                instrumentation.on_pass_start(pass_, module)
            start = time.perf_counter()
            pass_.run(module, analyses)
            analyses.invalidate()
            elapsed = time.perf_counter() - start
            self.timings.append(PassTiming(pass_.name, elapsed))
            for instrumentation in self.instrumentations:
                instrumentation.on_pass_end(pass_, module, elapsed)
            if self.verify_each:
                verify(module)
        return module

    def total_time(self) -> float:
        return sum(t.seconds for t in self.timings)

    def __repr__(self) -> str:
        names = ", ".join(p.name for p in self._passes)
        return f"<PassManager [{names}]>"


class RewritePattern(abc.ABC):
    """A local rewrite matched against a single operation.

    ``match_and_rewrite`` returns True when the pattern applied (and thus may
    have changed the IR), False when it did not match.
    """

    #: Restrict matches to this op class (None matches any op).
    root: Optional[PyType[Operation]] = None
    #: Higher-benefit patterns are tried first.
    benefit: int = 1

    @abc.abstractmethod
    def match_and_rewrite(self, op: Operation) -> bool:
        raise NotImplementedError

    def matches_root(self, op: Operation) -> bool:
        return self.root is None or isinstance(op, self.root)


def apply_patterns_greedily(
    top: Operation,
    patterns: Sequence[RewritePattern],
    max_iterations: int = 16,
) -> bool:
    """Repeatedly apply patterns anywhere under ``top`` until fixpoint.

    Returns True if any pattern ever applied.  Iteration is bounded by
    ``max_iterations`` sweeps to guarantee termination for non-converging
    pattern sets.
    """
    ordered = sorted(patterns, key=lambda p: -p.benefit)
    changed_any = False
    for _ in range(max_iterations):
        changed = False
        # Materialize the op list up front: patterns may erase/move ops.
        for op in list(top.walk()):
            if op.parent is None and op is not top:
                continue  # erased by an earlier pattern this sweep
            for pattern in ordered:
                if not pattern.matches_root(op):
                    continue
                if pattern.match_and_rewrite(op):
                    changed = True
                    changed_any = True
                    break
        if not changed:
            break
    return changed_any
