"""Structural IR verifier.

Checks the invariants the rest of the compiler relies on:

* parent links are consistent (op.parent.block contains op, etc.);
* every operand is visible at its use: defined earlier in the same block,
  defined in an ancestor region, or a block argument of an enclosing block —
  unless the using op sits inside an *isolated-from-above* op (HIDA
  structural ``node``/``schedule``), in which case operands must be defined
  inside that isolated op or be its explicit arguments;
* use lists are consistent with operand lists;
* op-specific ``verify`` hooks pass.
"""

from __future__ import annotations

from typing import List, Optional

from .core import Block, BlockArgument, IRError, OpResult, Operation, Value

__all__ = ["verify", "VerificationError"]


class VerificationError(IRError):
    """Raised when IR verification fails."""


def _enclosing_isolated_op(op: Operation) -> Optional[Operation]:
    """Innermost ancestor op (inclusive) that is isolated from above."""
    node: Optional[Operation] = op
    while node is not None:
        if node.get_attr("_isolated_from_above", False) or getattr(
            node, "ISOLATED_FROM_ABOVE", False
        ):
            return node
        node = node.parent_op
    return None


def _is_visible(value: Value, user: Operation) -> bool:
    """Whether ``value`` may be used as an operand of ``user``."""
    if isinstance(value, BlockArgument):
        defining_block: Optional[Block] = value.block
        # Visible if the user is nested within the block owning the argument.
        block = user.parent
        while block is not None:
            if block is defining_block:
                return True
            parent_op = block.parent_op
            block = parent_op.parent if parent_op else None
        return False
    if isinstance(value, OpResult):
        def_op = value.op
        def_block = def_op.parent
        if def_block is None:
            return False
        # Same block: definition must come before the user (or before the
        # user's enclosing op in that block).
        node: Optional[Operation] = user
        while node is not None:
            if node.parent is def_block:
                return def_block.index_of(def_op) < def_block.index_of(node)
            node = node.parent_op
        return False
    return False


def _verify_parent_links(op: Operation, errors: List[str]) -> None:
    for region in op.regions:
        if region.parent is not op:
            errors.append(f"{op.name}: region parent link is broken")
        for block in region.blocks:
            if block.parent is not region:
                errors.append(f"{op.name}: block parent link is broken")
            for child in block.operations:
                if child.parent is not block:
                    errors.append(
                        f"{op.name}: child op {child.name} has a stale parent link"
                    )


def _verify_uses(op: Operation, errors: List[str]) -> None:
    for index, operand in enumerate(op.operands):
        if (op, index) not in operand.uses:
            errors.append(
                f"{op.name}: operand #{index} use-list is missing this use"
            )
    for result in op.results:
        for user, idx in result.uses:
            if idx >= user.num_operands or user.operand(idx) is not result:
                errors.append(
                    f"{op.name}: stale use recorded on result #{result.index}"
                )


def _verify_operand_visibility(op: Operation, top: Operation, errors: List[str]) -> None:
    isolated = _enclosing_isolated_op(op)
    for index, operand in enumerate(op.operands):
        if isolated is not None and isolated is not op:
            # Operands must be defined inside the isolated op.
            def_op = operand.defining_op
            if def_op is not None:
                if not isolated.is_ancestor_of(def_op):
                    errors.append(
                        f"{op.name}: operand #{index} defined outside isolated "
                        f"op {isolated.name}"
                    )
                    continue
            elif isinstance(operand, BlockArgument):
                owner_op = operand.block.parent_op
                if owner_op is not None and not isolated.is_ancestor_of(owner_op):
                    errors.append(
                        f"{op.name}: operand #{index} is a block argument from "
                        f"outside isolated op {isolated.name}"
                    )
                    continue
        if not _is_visible(operand, op):
            errors.append(
                f"{op.name}: operand #{index} ({operand!r}) is not visible at its use"
            )


def verify(top: Operation, raise_on_error: bool = True) -> List[str]:
    """Verify ``top`` and everything nested in it.

    Returns the list of diagnostics; raises :class:`VerificationError` when
    ``raise_on_error`` is set and any diagnostic was produced.
    """
    errors: List[str] = []
    for op in top.walk():
        _verify_parent_links(op, errors)
        _verify_uses(op, errors)
        if op is not top:
            _verify_operand_visibility(op, top, errors)
        try:
            op.verify()
        except Exception as exc:  # op-specific verification failure
            errors.append(f"{op.name}: {exc}")
    if errors and raise_on_error:
        raise VerificationError("; ".join(errors))
    return errors
