"""repro.ir — a compact SSA IR kernel (values, ops, regions, passes).

This package provides the compiler infrastructure substrate that the HIDA
dialects and optimizations are built on.  See :mod:`repro.ir.core` for the
object model and :mod:`repro.ir.passes` for the pass infrastructure.
"""

from .builder import Builder, InsertionPoint
from .builtin import ConstantOp, FuncOp, ModuleOp, ReturnOp, UnrealizedCastOp
from .core import (
    Block,
    BlockArgument,
    IRError,
    Operation,
    OpResult,
    Region,
    Value,
    WalkOrder,
    create_operation,
    register_operation,
    registered_operations,
)
from .passes import (
    AnalysisManager,
    FunctionPass,
    Pass,
    PassInstrumentation,
    PassManager,
    RewritePattern,
    apply_patterns_greedily,
)
from .printer import IRPrinter, fingerprint_op, print_op
from .types import (
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    StreamType,
    TensorType,
    TokenType,
    Type,
    element_type_of,
    f16,
    f32,
    f64,
    i1,
    i8,
    i16,
    i32,
    i64,
    index,
    memref_of,
    none,
    shape_of,
    tensor_of,
    token,
)
from .verifier import VerificationError, verify

__all__ = [
    # core
    "Block",
    "BlockArgument",
    "IRError",
    "Operation",
    "OpResult",
    "Region",
    "Value",
    "WalkOrder",
    "create_operation",
    "register_operation",
    "registered_operations",
    # builtin ops
    "ConstantOp",
    "FuncOp",
    "ModuleOp",
    "ReturnOp",
    "UnrealizedCastOp",
    # builder
    "Builder",
    "InsertionPoint",
    # passes
    "AnalysisManager",
    "FunctionPass",
    "Pass",
    "PassInstrumentation",
    "PassManager",
    "RewritePattern",
    "apply_patterns_greedily",
    # printing / verification
    "IRPrinter",
    "fingerprint_op",
    "print_op",
    "VerificationError",
    "verify",
    # types
    "Type",
    "NoneType",
    "IndexType",
    "IntegerType",
    "FloatType",
    "TokenType",
    "TensorType",
    "MemRefType",
    "StreamType",
    "FunctionType",
    "element_type_of",
    "shape_of",
    "memref_of",
    "tensor_of",
    "i1",
    "i8",
    "i16",
    "i32",
    "i64",
    "f16",
    "f32",
    "f64",
    "index",
    "none",
    "token",
]
