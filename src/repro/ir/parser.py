"""Parser for the textual IR form produced by :mod:`repro.ir.printer`.

The printer emits exactly one operation, block header or region delimiter
per line, which keeps the grammar line-oriented and the parser small.  The
parser accepts precisely that output — it is a *round-trip* parser for
serializing IR (stage-boundary snapshots), not a general MLIR reader:

* operations rebuild through :func:`repro.ir.core.create_operation`, so
  registered dialect op classes come back with their Python behaviour;
* every attribute form the printer renders is reconstructed with its
  original Python type: ints, floats, bools, strings, lists, dicts,
  affine maps, function types, array partitions and buffer layouts
  (``[...]`` sequences come back as lists — the printer renders lists and
  tuples identically, and every consumer iterates or unpacks);
* SSA names resolve through a flat symbol table (printed names are unique
  within one top-level op — the printer guarantees it), and parsed values
  carry no name hints; callers that need byte-identical re-printing restore
  the original hints with :func:`assign_name_hints` from a sidecar captured
  at print time (printed names are *derived* from hints plus global printer
  state, so they cannot be inverted locally).

Fidelity contract: ``print_op(parse_op(text)) == text`` for any text the
printer produced.  The snapshot cache additionally verifies this property
at save time and refuses to cache anything that fails it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..dialects.affine_map import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
    AffineMap,
    AffineSymbolExpr,
)
from .core import Block, Operation, Value, create_operation
from .types import (
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    MemRefType,
    NoneType,
    StreamType,
    TensorType,
    TokenType,
    Type,
)

__all__ = ["IRParseError", "parse_op", "assign_name_hints", "collect_name_hints"]


class IRParseError(ValueError):
    """Raised when text does not match the printer's output grammar.

    Carries the offending position when it is known: ``line`` is 1-based
    into the *original* text handed to :func:`parse_op` (blank lines count),
    ``column`` is a 0-based character offset into that line's stripped form.
    Either may be ``None`` when the error is not anchored to a position
    (e.g. an empty input).
    """

    def __init__(
        self,
        message: str,
        line: Optional[int] = None,
        column: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.line = line
        self.column = column


#: Characters allowed in SSA value names, op names and attribute keys.
_IDENT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.$-"
)

_BINARY_KINDS = {
    "+": "add",
    "*": "mul",
    "floordiv": "floordiv",
    "ceildiv": "ceildiv",
    "mod": "mod",
}


class _Cursor:
    """Character cursor over one line of printed IR."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, count: int = 1) -> str:
        return self.text[self.pos : self.pos + count]

    def startswith(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def accept(self, literal: str) -> bool:
        if self.startswith(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.accept(literal):
            raise IRParseError(
                f"expected {literal!r} at column {self.pos} of {self.text!r}",
                column=self.pos,
            )

    def skip_spaces(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] == " ":
            self.pos += 1

    def ident(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _IDENT_CHARS:
            self.pos += 1
        if self.pos == start:
            raise IRParseError(
                f"expected an identifier at column {start} of {self.text!r}",
                column=start,
            )
        return self.text[start : self.pos]

    def integer(self) -> int:
        start = self.pos
        if self.peek() == "-":
            self.pos += 1
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.pos == start or self.text[start:self.pos] == "-":
            raise IRParseError(
                f"expected an integer at column {start} of {self.text!r}",
                column=start,
            )
        return int(self.text[start : self.pos])


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def _parse_shape_and_element(cursor: _Cursor) -> Tuple[Tuple[int, ...], Type]:
    """Parse ``4x4xf32``-style dims-plus-element of a shaped type."""
    shape: List[int] = []
    while True:
        start = cursor.pos
        if cursor.peek().isdigit():
            digits = ""
            while cursor.peek().isdigit():
                digits += cursor.peek()
                cursor.pos += 1
            if cursor.accept("x"):
                shape.append(int(digits))
                continue
            cursor.pos = start  # a bare number here is not a dimension
        break
    return tuple(shape), _parse_type(cursor)


def _parse_type(cursor: _Cursor) -> Type:
    if cursor.accept("tensor<"):
        shape, element = _parse_shape_and_element(cursor)
        cursor.expect(">")
        return TensorType(shape, element)
    if cursor.accept("memref<"):
        shape, element = _parse_shape_and_element(cursor)
        cursor.expect(", ")
        space = cursor.ident()
        cursor.expect(">")
        return MemRefType(shape, element, space)
    if cursor.accept("stream<"):
        element = _parse_type(cursor)
        cursor.expect(", ")
        depth = cursor.integer()
        cursor.expect(">")
        return StreamType(element, depth)
    if cursor.peek() == "(":
        return _parse_function_type(cursor)
    if cursor.accept("index"):
        return IndexType()
    if cursor.accept("none"):
        return NoneType()
    if cursor.accept("token"):
        return TokenType()
    if cursor.startswith("ui"):
        cursor.pos += 2
        return IntegerType(cursor.integer(), signed=False)
    if cursor.peek() == "i" and cursor.peek(2)[1:].isdigit():
        cursor.pos += 1
        return IntegerType(cursor.integer())
    if cursor.peek() == "f" and cursor.peek(2)[1:].isdigit():
        cursor.pos += 1
        return FloatType(cursor.integer())
    raise IRParseError(
        f"expected a type at column {cursor.pos} of {cursor.text!r}",
        column=cursor.pos,
    )


def _parse_function_type(cursor: _Cursor) -> FunctionType:
    cursor.expect("(")
    inputs: List[Type] = []
    if not cursor.accept(")"):
        while True:
            inputs.append(_parse_type(cursor))
            if cursor.accept(", "):
                continue
            cursor.expect(")")
            break
    cursor.expect(" -> (")
    results: List[Type] = []
    if not cursor.accept(")"):
        while True:
            results.append(_parse_type(cursor))
            if cursor.accept(", "):
                continue
            cursor.expect(")")
            break
    return FunctionType(inputs, results)


# ---------------------------------------------------------------------------
# Attribute values
# ---------------------------------------------------------------------------


def _parse_affine_expr(cursor: _Cursor) -> AffineExpr:
    if cursor.accept("("):
        lhs = _parse_affine_expr(cursor)
        cursor.expect(" ")
        op = ""
        while cursor.peek() not in (" ", ""):
            op += cursor.peek()
            cursor.pos += 1
        kind = _BINARY_KINDS.get(op)
        if kind is None:
            raise IRParseError(
                f"unknown affine operator {op!r} in {cursor.text!r}",
                column=cursor.pos - len(op),
            )
        cursor.expect(" ")
        rhs = _parse_affine_expr(cursor)
        cursor.expect(")")
        return AffineBinaryExpr(kind, lhs, rhs)
    if cursor.peek() == "d" and cursor.peek(2)[1:].isdigit():
        cursor.pos += 1
        return AffineDimExpr(cursor.integer())
    if cursor.peek() == "s" and cursor.peek(2)[1:].isdigit():
        cursor.pos += 1
        return AffineSymbolExpr(cursor.integer())
    return AffineConstantExpr(cursor.integer())


def _parse_affine_map(cursor: _Cursor) -> AffineMap:
    cursor.expect("(")
    num_dims = 0
    if not cursor.accept(")"):
        while True:
            cursor.expect(f"d{num_dims}")
            num_dims += 1
            if cursor.accept(", "):
                continue
            cursor.expect(")")
            break
    num_symbols = 0
    if cursor.accept("["):
        while True:
            cursor.expect(f"s{num_symbols}")
            num_symbols += 1
            if cursor.accept(", "):
                continue
            cursor.expect("]")
            break
    cursor.expect(" -> (")
    results: List[AffineExpr] = []
    if not cursor.accept(")"):
        while True:
            results.append(_parse_affine_expr(cursor))
            if cursor.accept(", "):
                continue
            cursor.expect(")")
            break
    return AffineMap(num_dims, num_symbols, results)


def _parse_number(cursor: _Cursor) -> Any:
    start = cursor.pos
    if cursor.peek() == "-":
        cursor.pos += 1
    while cursor.peek().isdigit():
        cursor.pos += 1
    is_float = False
    if cursor.peek() == ".":
        is_float = True
        cursor.pos += 1
        while cursor.peek().isdigit():
            cursor.pos += 1
    if cursor.peek() in ("e", "E") and cursor.peek(2)[1:] in "+-0123456789":
        is_float = True
        cursor.pos += 1
        if cursor.peek() in ("+", "-"):
            cursor.pos += 1
        while cursor.peek().isdigit():
            cursor.pos += 1
    text = cursor.text[start : cursor.pos]
    if not text or text == "-":
        raise IRParseError(
            f"expected a number at column {start} of {cursor.text!r}",
            column=start,
        )
    return float(text) if is_float else int(text)


def _parse_partition(cursor: _Cursor):
    from ..dialects.hls import ArrayPartition

    cursor.expect("partition<[")
    kinds: List[str] = []
    factors: List[int] = []
    while True:
        kinds.append(cursor.ident())
        cursor.expect(":")
        factors.append(cursor.integer())
        if cursor.accept(", "):
            continue
        cursor.expect("]>")
        break
    return ArrayPartition(kinds, factors)


def _parse_int_bracket_list(cursor: _Cursor) -> List[int]:
    cursor.expect("[")
    values: List[int] = []
    if not cursor.accept("]"):
        while True:
            values.append(cursor.integer())
            if cursor.accept(", "):
                continue
            cursor.expect("]")
            break
    return values


def _parse_layout(cursor: _Cursor):
    from ..dialects.dataflow import BufferLayout

    cursor.expect("layout<")
    tiles = _parse_int_bracket_list(cursor)
    cursor.expect(", ")
    vectors = _parse_int_bracket_list(cursor)
    cursor.expect(">")
    return BufferLayout(tiles, vectors)


def _parse_attr_value(cursor: _Cursor) -> Any:
    if cursor.accept('"'):
        end = cursor.text.find('"', cursor.pos)
        if end < 0:
            raise IRParseError(
                f"unterminated string in {cursor.text!r}",
                column=cursor.pos - 1,
            )
        value = cursor.text[cursor.pos : end]
        cursor.pos = end + 1
        return value
    if cursor.accept("["):
        values: List[Any] = []
        if not cursor.accept("]"):
            while True:
                values.append(_parse_attr_value(cursor))
                if cursor.accept(", "):
                    continue
                cursor.expect("]")
                break
        return values
    if cursor.accept("{"):
        mapping: Dict[str, Any] = {}
        if not cursor.accept("}"):
            while True:
                key = cursor.ident()
                cursor.expect(" = ")
                mapping[key] = _parse_attr_value(cursor)
                if cursor.accept(", "):
                    continue
                cursor.expect("}")
                break
        return mapping
    if cursor.startswith("true") and not _ident_continues(cursor, 4):
        cursor.pos += 4
        return True
    if cursor.startswith("false") and not _ident_continues(cursor, 5):
        cursor.pos += 5
        return False
    if cursor.startswith("partition<"):
        return _parse_partition(cursor)
    if cursor.startswith("layout<"):
        return _parse_layout(cursor)
    if cursor.peek() == "(":
        # Function types and affine maps share the "(...) -> (...)" shape;
        # try the type reading first (its operand grammar is disjoint from
        # affine expressions) and fall back to an affine map.
        saved = cursor.pos
        try:
            return _parse_function_type(cursor)
        except IRParseError:
            cursor.pos = saved
        return _parse_affine_map(cursor)
    return _parse_number(cursor)


def _ident_continues(cursor: _Cursor, offset: int) -> bool:
    nxt = cursor.text[cursor.pos + offset : cursor.pos + offset + 1]
    return bool(nxt) and nxt in _IDENT_CHARS


def _parse_attr_dict(cursor: _Cursor) -> Dict[str, Any]:
    cursor.expect("{")
    attrs: Dict[str, Any] = {}
    if cursor.accept("}"):
        return attrs
    while True:
        key = cursor.ident()
        cursor.expect(" = ")
        attrs[key] = _parse_attr_value(cursor)
        if cursor.accept(", "):
            continue
        cursor.expect("}")
        return attrs


# ---------------------------------------------------------------------------
# Operations, blocks and regions
# ---------------------------------------------------------------------------


def _parse_value_name(cursor: _Cursor) -> str:
    cursor.expect("%")
    return cursor.ident()


def _lookup(symtab: Dict[str, Value], name: str, line: str) -> Value:
    try:
        return symtab[name]
    except KeyError:
        raise IRParseError(
            f"use of undefined value %{name} in line {line!r}"
        ) from None


class _OpHeader:
    __slots__ = (
        "result_names",
        "op_name",
        "operand_names",
        "attributes",
        "result_types",
        "opens_region",
    )


def _parse_op_header(line: str) -> _OpHeader:
    header = _OpHeader()
    cursor = _Cursor(line)
    header.result_names = []
    if cursor.peek() == "%":
        while True:
            header.result_names.append(_parse_value_name(cursor))
            if cursor.accept(", "):
                continue
            break
        cursor.expect(" = ")
    header.op_name = cursor.ident()
    cursor.expect("(")
    header.operand_names = []
    if not cursor.accept(")"):
        while True:
            header.operand_names.append(_parse_value_name(cursor))
            if cursor.accept(", "):
                continue
            cursor.expect(")")
            break
    header.attributes = {}
    if cursor.startswith(" {") and cursor.text[cursor.pos:] != " {":
        cursor.expect(" ")
        header.attributes = _parse_attr_dict(cursor)
    header.result_types = []
    if cursor.accept(" : "):
        while True:
            header.result_types.append(_parse_type(cursor))
            if cursor.accept(", "):
                continue
            break
    header.opens_region = False
    if cursor.accept(" {"):
        header.opens_region = True
    if not cursor.eof():
        raise IRParseError(
            f"trailing text at column {cursor.pos} of line {line!r}",
            column=cursor.pos,
        )
    if len(header.result_types) != len(header.result_names):
        raise IRParseError(
            f"{len(header.result_names)} result name(s) but "
            f"{len(header.result_types)} result type(s) in line {line!r}"
        )
    return header


def _parse_block_header(
    line: str, symtab: Dict[str, Value]
) -> Block:
    cursor = _Cursor(line)
    cursor.expect("^bb")
    cursor.integer()
    cursor.expect("(")
    block = Block()
    if not cursor.accept(")"):
        while True:
            name = _parse_value_name(cursor)
            cursor.expect(": ")
            arg = block.add_argument(_parse_type(cursor))
            if name in symtab:
                raise IRParseError(f"duplicate value name %{name} in {line!r}")
            symtab[name] = arg
            if cursor.accept(", "):
                continue
            cursor.expect(")")
            break
    cursor.expect(":")
    if not cursor.eof():
        raise IRParseError(f"trailing text after block header {line!r}")
    return block


def _at_line(error: IRParseError, lineno: int) -> IRParseError:
    """Anchor ``error`` to ``lineno`` unless it already carries a line."""
    if error.line is None:
        error.line = lineno
    return error


def _parse_op(
    lines: List[Tuple[int, str]], index: int, symtab: Dict[str, Value]
) -> Tuple[Operation, int]:
    open_lineno, line = lines[index]
    try:
        header = _parse_op_header(line)
        operands = [
            _lookup(symtab, name, line) for name in header.operand_names
        ]
    except IRParseError as error:
        raise _at_line(error, open_lineno)
    op = create_operation(
        header.op_name,
        operands=operands,
        result_types=header.result_types,
        attributes=header.attributes,
        num_regions=0,
    )
    for name, result in zip(header.result_names, op.results):
        if name in symtab:
            raise IRParseError(
                f"duplicate value name %{name} in {line!r}", line=open_lineno
            )
        symtab[name] = result
    index += 1
    if not header.opens_region:
        return op, index
    region = op.add_region()
    block: Optional[Block] = None
    while True:
        if index >= len(lines):
            raise IRParseError(
                f"unterminated region of {header.op_name!r} "
                f"(opened at line {open_lineno})",
                line=open_lineno,
            )
        lineno, line = lines[index]
        if line == "}":
            index += 1
            break
        if line == "} {":
            if not region.blocks:
                region.append_block(Block())
            region = op.add_region()
            block = None
            index += 1
            continue
        if line.startswith("^bb"):
            try:
                block = _parse_block_header(line, symtab)
            except IRParseError as error:
                raise _at_line(error, lineno)
            region.append_block(block)
            index += 1
            continue
        if block is None:
            block = Block()
            region.append_block(block)
        child, index = _parse_op(lines, index, symtab)
        block.append(child)
    if not region.blocks:
        # The printer renders a region holding one empty block as bare
        # braces; rebuild that block so the round-trip stays byte-identical.
        region.append_block(Block())
    return op, index


def parse_op(text: str) -> Operation:
    """Parse printed IR back into an operation tree.

    ``text`` must be exactly what :func:`repro.ir.printer.print_op` renders
    for one top-level operation (any indentation is insignificant — the
    grammar is token-delimited).  Values come back without name hints; see
    :func:`assign_name_hints`.

    Failures raise :class:`IRParseError` anchored to the offending position:
    ``error.line`` is the 1-based line in ``text`` and ``error.column`` the
    0-based offset into that line's stripped form (when known).
    """
    lines = [
        (number, line.strip())
        for number, line in enumerate(text.split("\n"), start=1)
        if line.strip()
    ]
    if not lines:
        raise IRParseError("empty IR text")
    symtab: Dict[str, Value] = {}
    op, index = _parse_op(lines, 0, symtab)
    if index != len(lines):
        lineno, line = lines[index]
        raise IRParseError(
            f"trailing content after top-level op (line {lineno}): "
            f"{line!r}",
            line=lineno,
        )
    return op


# ---------------------------------------------------------------------------
# Name-hint sidecars
# ---------------------------------------------------------------------------


def collect_name_hints(op: Operation) -> List[Optional[str]]:
    """Name hints of every value defined in ``op``, in traversal order.

    The order is :meth:`Operation.nested_values` (pre-order; results before
    block arguments), which depends only on structure — a parsed clone
    enumerates its values in the same order, so the list works as a
    positional sidecar.
    """
    return [value.name_hint for value in op.nested_values()]


def assign_name_hints(op: Operation, hints: List[Optional[str]]) -> Operation:
    """Restore a :func:`collect_name_hints` sidecar onto a parsed op.

    Printed names cannot be inverted into hints locally (collision suffixes
    depend on global printer state), so byte-identical re-printing after a
    parse requires the original hints to travel alongside the text.
    """
    values = list(op.nested_values())
    if len(values) != len(hints):
        raise IRParseError(
            f"name-hint sidecar has {len(hints)} entries but the op defines "
            f"{len(values)} values"
        )
    for value, hint in zip(values, hints):
        value.name_hint = hint
    return op
