"""Core SSA IR data structures: values, operations, blocks and regions.

This module is a compact re-implementation of the MLIR object model that the
HIDA compiler is built on.  The essential concepts are preserved:

* :class:`Value` — an SSA value with a type and a use list; produced either as
  an operation result (:class:`OpResult`) or as a block argument
  (:class:`BlockArgument`).
* :class:`Operation` — the minimal unit of code.  It has a name
  (``dialect.opname``), typed operands and results, a dictionary of compile
  time attributes, and an ordered list of regions.
* :class:`Block` — a sequential list of operations plus block arguments.
* :class:`Region` — an ordered list of blocks, owned by an operation.

The model is deliberately Pythonic: attributes are plain Python objects
(ints, strings, tuples, dataclasses such as affine maps), and operations are
stored in Python lists.  Structural invariants (operand/result ownership,
region nesting, dominance of simple single-block regions) are checked by
:mod:`repro.ir.verifier`.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type as PyType,
    Union,
)

from .types import Type

__all__ = [
    "Value",
    "OpResult",
    "BlockArgument",
    "Operation",
    "Block",
    "Region",
    "WalkOrder",
    "register_operation",
    "create_operation",
    "registered_operations",
    "IRError",
]


class IRError(Exception):
    """Raised for malformed IR manipulation (e.g. erasing a value with uses)."""


_value_ids = itertools.count()


class Value:
    """An SSA value.  Carries a type and tracks the operations that use it."""

    __slots__ = ("type", "_id", "_uses", "name_hint")

    def __init__(self, type: Type, name_hint: Optional[str] = None) -> None:
        self.type = type
        self._id = next(_value_ids)
        # Uses are (operation, operand_index) pairs.
        self._uses: List[Tuple["Operation", int]] = []
        self.name_hint = name_hint

    # ------------------------------------------------------------------ uses
    @property
    def uses(self) -> List[Tuple["Operation", int]]:
        """Snapshot of (user operation, operand index) pairs."""
        return list(self._uses)

    @property
    def users(self) -> List["Operation"]:
        """Operations that use this value, in first-use order, de-duplicated."""
        seen = []
        for op, _ in self._uses:
            if op not in seen:
                seen.append(op)
        return seen

    @property
    def has_uses(self) -> bool:
        return bool(self._uses)

    @property
    def num_uses(self) -> int:
        return len(self._uses)

    def _add_use(self, op: "Operation", index: int) -> None:
        self._uses.append((op, index))

    def _remove_use(self, op: "Operation", index: int) -> None:
        with contextlib.suppress(ValueError):
            self._uses.remove((op, index))

    def replace_all_uses_with(self, new_value: "Value") -> None:
        """Rewrite every use of this value to use ``new_value`` instead."""
        if new_value is self:
            return
        for op, idx in list(self._uses):
            op.set_operand(idx, new_value)

    def replace_uses_if(
        self, new_value: "Value", predicate: Callable[["Operation"], bool]
    ) -> None:
        """Replace uses whose owning operation satisfies ``predicate``."""
        if new_value is self:
            return
        for op, idx in list(self._uses):
            if predicate(op):
                op.set_operand(idx, new_value)

    # ------------------------------------------------------------------ info
    @property
    def owner(self) -> Optional[Union["Operation", "Block"]]:
        return None

    @property
    def defining_op(self) -> Optional["Operation"]:
        """The operation producing this value, or None for block arguments."""
        return None

    def __repr__(self) -> str:
        hint = self.name_hint or f"v{self._id}"
        return f"%{hint}: {self.type}"


class OpResult(Value):
    """A value produced as the ``index``-th result of an operation."""

    __slots__ = ("op", "index")

    def __init__(self, op: "Operation", index: int, type: Type) -> None:
        super().__init__(type)
        self.op = op
        self.index = index

    @property
    def owner(self) -> "Operation":
        return self.op

    @property
    def defining_op(self) -> "Operation":
        return self.op

    def __repr__(self) -> str:
        hint = self.name_hint or f"v{self._id}"
        return f"%{hint} = {self.op.name}#{self.index}: {self.type}"


class BlockArgument(Value):
    """A value supplied as the ``index``-th argument of a block."""

    __slots__ = ("block", "index")

    def __init__(self, block: "Block", index: int, type: Type) -> None:
        super().__init__(type)
        self.block = block
        self.index = index

    @property
    def owner(self) -> "Block":
        return self.block

    def __repr__(self) -> str:
        hint = self.name_hint or f"arg{self.index}"
        return f"%{hint}: {self.type}"


class WalkOrder:
    """Walk orders for :meth:`Operation.walk`."""

    PRE_ORDER = "pre"
    POST_ORDER = "post"


# --------------------------------------------------------------------------
# Operation registry: maps operation names to their Python classes so that
# cloning and generic creation produce correctly-typed op objects.
# --------------------------------------------------------------------------
_OPERATION_REGISTRY: Dict[str, PyType["Operation"]] = {}


def register_operation(cls: PyType["Operation"]) -> PyType["Operation"]:
    """Class decorator registering an operation class by its OPERATION_NAME."""
    name = getattr(cls, "OPERATION_NAME", None)
    if not name:
        raise ValueError(f"{cls.__name__} is missing OPERATION_NAME")
    _OPERATION_REGISTRY[name] = cls
    return cls


def registered_operations() -> Dict[str, PyType["Operation"]]:
    """Return a copy of the operation registry (name -> class)."""
    return dict(_OPERATION_REGISTRY)


def create_operation(
    name: str,
    operands: Sequence[Value] = (),
    result_types: Sequence[Type] = (),
    attributes: Optional[Dict[str, Any]] = None,
    num_regions: int = 0,
) -> "Operation":
    """Create an operation, using the registered class for ``name`` if any."""
    cls = _OPERATION_REGISTRY.get(name, Operation)
    op = cls.__new__(cls)
    Operation.__init__(
        op,
        name=name,
        operands=operands,
        result_types=result_types,
        attributes=attributes,
        num_regions=num_regions,
    )
    return op


class Operation:
    """The minimal unit of IR code.

    Subclasses set :attr:`OPERATION_NAME` and typically provide a ``create``
    classmethod plus convenience accessors; the base class implements all
    structural behaviour (operands, results, attributes, regions, movement,
    cloning and traversal).
    """

    OPERATION_NAME = "builtin.unregistered"

    def __init__(
        self,
        name: Optional[str] = None,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Optional[Dict[str, Any]] = None,
        num_regions: int = 0,
    ) -> None:
        self.name = name or self.OPERATION_NAME
        self._operands: List[Value] = []
        self.results: List[OpResult] = [
            OpResult(self, i, ty) for i, ty in enumerate(result_types)
        ]
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.regions: List[Region] = [Region(self) for _ in range(num_regions)]
        self.parent: Optional[Block] = None
        for value in operands:
            self.append_operand(value)

    # -------------------------------------------------------------- operands
    @property
    def operands(self) -> List[Value]:
        return list(self._operands)

    @property
    def num_operands(self) -> int:
        return len(self._operands)

    def operand(self, index: int) -> Value:
        return self._operands[index]

    def append_operand(self, value: Value) -> None:
        if not isinstance(value, Value):
            raise IRError(f"operand of {self.name} must be a Value, got {value!r}")
        index = len(self._operands)
        self._operands.append(value)
        value._add_use(self, index)

    def set_operand(self, index: int, value: Value) -> None:
        old = self._operands[index]
        old._remove_use(self, index)
        self._operands[index] = value
        value._add_use(self, index)

    def set_operands(self, values: Sequence[Value]) -> None:
        self._drop_all_operand_uses()
        self._operands = []
        for value in values:
            self.append_operand(value)

    def remove_operand(self, index: int) -> None:
        """Remove the operand at ``index``, shifting later operands down."""
        self._drop_all_operand_uses()
        del self._operands[index]
        for i, value in enumerate(self._operands):
            value._add_use(self, i)

    def _drop_all_operand_uses(self) -> None:
        for i, value in enumerate(self._operands):
            value._remove_use(self, i)

    # --------------------------------------------------------------- results
    @property
    def num_results(self) -> int:
        return len(self.results)

    def result(self, index: int = 0) -> OpResult:
        return self.results[index]

    @property
    def result_types(self) -> List[Type]:
        return [r.type for r in self.results]

    def replace_all_uses_with(self, other: Union["Operation", Sequence[Value]]) -> None:
        """Replace all result uses with the results of ``other`` (op or values)."""
        if isinstance(other, Operation):
            new_values: Sequence[Value] = other.results
        else:
            new_values = list(other)
        if len(new_values) != len(self.results):
            raise IRError(
                f"cannot replace {len(self.results)} results with "
                f"{len(new_values)} values"
            )
        for old, new in zip(self.results, new_values):
            old.replace_all_uses_with(new)

    # ------------------------------------------------------------ attributes
    def get_attr(self, name: str, default: Any = None) -> Any:
        return self.attributes.get(name, default)

    def set_attr(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def has_attr(self, name: str) -> bool:
        return name in self.attributes

    def remove_attr(self, name: str) -> None:
        self.attributes.pop(name, None)

    # --------------------------------------------------------------- regions
    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def region(self, index: int = 0) -> "Region":
        return self.regions[index]

    @property
    def body(self) -> "Block":
        """The entry block of the first region (common single-region case)."""
        return self.regions[0].entry_block

    def add_region(self) -> "Region":
        region = Region(self)
        self.regions.append(region)
        return region

    # ------------------------------------------------------------- structure
    @property
    def parent_block(self) -> Optional["Block"]:
        return self.parent

    @property
    def parent_region(self) -> Optional["Region"]:
        return self.parent.parent if self.parent else None

    @property
    def parent_op(self) -> Optional["Operation"]:
        region = self.parent_region
        return region.parent if region else None

    def is_ancestor_of(self, other: "Operation") -> bool:
        """True if ``other`` is nested (strictly or not) within this operation."""
        node: Optional[Operation] = other
        while node is not None:
            if node is self:
                return True
            node = node.parent_op
        return False

    def is_proper_ancestor_of(self, other: "Operation") -> bool:
        return other is not self and self.is_ancestor_of(other)

    def is_before_in_block(self, other: "Operation") -> bool:
        """True if both ops are in the same block and self precedes other."""
        if self.parent is None or self.parent is not other.parent:
            raise IRError("operations are not in the same block")
        ops = self.parent.operations
        return ops.index(self) < ops.index(other)

    # ------------------------------------------------------------- placement
    def detach(self) -> "Operation":
        """Remove this op from its parent block without touching its uses."""
        if self.parent is not None:
            self.parent._operations.remove(self)
            self.parent = None
        return self

    def erase(self) -> None:
        """Erase this operation.  Its results must have no remaining uses."""
        for result in self.results:
            if result.has_uses:
                users = ", ".join(u.name for u in result.users)
                raise IRError(
                    f"cannot erase {self.name}: result still used by {users}"
                )
        self.drop_all_references()
        self.detach()

    def drop_all_references(self) -> None:
        """Drop operand uses of this op and of everything nested inside it."""
        self._drop_all_operand_uses()
        self._operands = []
        for region in self.regions:
            for block in region.blocks:
                for op in list(block.operations):
                    op.drop_all_references()

    def move_before(self, other: "Operation") -> None:
        self.detach()
        block = other.parent
        if block is None:
            raise IRError("target operation has no parent block")
        idx = block._operations.index(other)
        block._operations.insert(idx, self)
        self.parent = block

    def move_after(self, other: "Operation") -> None:
        self.detach()
        block = other.parent
        if block is None:
            raise IRError("target operation has no parent block")
        idx = block._operations.index(other)
        block._operations.insert(idx + 1, self)
        self.parent = block

    def move_to_end(self, block: "Block") -> None:
        self.detach()
        block.append(self)

    def move_to_front(self, block: "Block") -> None:
        self.detach()
        block._operations.insert(0, self)
        self.parent = block

    # --------------------------------------------------------------- walking
    def walk(
        self,
        callback: Optional[Callable[["Operation"], Any]] = None,
        order: str = WalkOrder.POST_ORDER,
    ) -> Iterator["Operation"]:
        """Walk this op and all nested ops.

        With a ``callback`` this behaves like MLIR's walk and returns nothing
        meaningful; without one it returns an iterator over operations.
        Nested operations are visited in either pre- or post-order.
        """

        def _walk(op: "Operation") -> Iterator["Operation"]:
            if order == WalkOrder.PRE_ORDER:
                yield op
            for region in op.regions:
                for block in region.blocks:
                    for child in list(block.operations):
                        yield from _walk(child)
            if order == WalkOrder.POST_ORDER:
                yield op

        iterator = _walk(self)
        if callback is None:
            return iterator
        for op in iterator:
            callback(op)
        return iter(())

    def walk_ops(self, op_class: PyType["Operation"]) -> List["Operation"]:
        """Collect all nested ops (including self) that are instances of a class."""
        return [op for op in self.walk() if isinstance(op, op_class)]

    def nested_values(self) -> Iterator[Value]:
        """Iterate over all values defined within this op (results, block args)."""
        for op in self.walk(order=WalkOrder.PRE_ORDER):
            yield from op.results
            for region in op.regions:
                for block in region.blocks:
                    yield from block.arguments

    # --------------------------------------------------------------- cloning
    def clone(
        self, value_map: Optional[Dict[Value, Value]] = None
    ) -> "Operation":
        """Deep-clone this op (and nested regions), remapping operands.

        ``value_map`` maps original values to replacement values; it is
        extended with the results and block arguments of the cloned IR so
        that internal def-use chains stay consistent.
        """
        value_map = value_map if value_map is not None else {}
        cls = _OPERATION_REGISTRY.get(self.name, Operation)
        new_op = cls.__new__(cls)
        Operation.__init__(
            new_op,
            name=self.name,
            operands=[value_map.get(v, v) for v in self._operands],
            result_types=[r.type for r in self.results],
            attributes=_clone_attribute_dict(self.attributes),
            num_regions=0,
        )
        for old_res, new_res in zip(self.results, new_op.results):
            value_map[old_res] = new_res
            new_res.name_hint = old_res.name_hint
        for region in self.regions:
            new_region = new_op.add_region()
            for block in region.blocks:
                new_block = Block(arg_types=[a.type for a in block.arguments])
                for old_arg, new_arg in zip(block.arguments, new_block.arguments):
                    value_map[old_arg] = new_arg
                    new_arg.name_hint = old_arg.name_hint
                new_region.append_block(new_block)
                for op in block.operations:
                    new_block.append(op.clone(value_map))
        return new_op

    # ------------------------------------------------------------------ misc
    def verify(self) -> None:
        """Hook for op-specific verification; overridden by dialect ops."""

    def __repr__(self) -> str:
        n_ops = sum(1 for _ in self.walk()) - 1
        return f"<{self.name} operands={self.num_operands} results={self.num_results} nested={n_ops}>"


def _clone_attribute_dict(attrs: Dict[str, Any]) -> Dict[str, Any]:
    """Shallow-copy an attribute dict, copying mutable containers."""
    cloned: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, list):
            cloned[key] = list(value)
        elif isinstance(value, dict):
            cloned[key] = dict(value)
        elif isinstance(value, set):
            cloned[key] = set(value)
        else:
            cloned[key] = value
    return cloned


class Block:
    """A sequential list of operations with typed block arguments."""

    def __init__(self, arg_types: Sequence[Type] = ()) -> None:
        self.arguments: List[BlockArgument] = [
            BlockArgument(self, i, ty) for i, ty in enumerate(arg_types)
        ]
        self._operations: List[Operation] = []
        self.parent: Optional[Region] = None

    # -------------------------------------------------------------- contents
    @property
    def operations(self) -> List[Operation]:
        return list(self._operations)

    @property
    def num_operations(self) -> int:
        return len(self._operations)

    @property
    def empty(self) -> bool:
        return not self._operations

    @property
    def first_op(self) -> Optional[Operation]:
        return self._operations[0] if self._operations else None

    @property
    def last_op(self) -> Optional[Operation]:
        return self._operations[-1] if self._operations else None

    def __iter__(self) -> Iterator[Operation]:
        return iter(list(self._operations))

    def __len__(self) -> int:
        return len(self._operations)

    def index_of(self, op: Operation) -> int:
        return self._operations.index(op)

    # ------------------------------------------------------------- arguments
    def add_argument(self, type: Type, name_hint: Optional[str] = None) -> BlockArgument:
        arg = BlockArgument(self, len(self.arguments), type)
        arg.name_hint = name_hint
        self.arguments.append(arg)
        return arg

    def erase_argument(self, index: int) -> None:
        arg = self.arguments[index]
        if arg.has_uses:
            raise IRError("cannot erase a block argument that still has uses")
        del self.arguments[index]
        for i, remaining in enumerate(self.arguments):
            remaining.index = i

    # ------------------------------------------------------------- placement
    def append(self, op: Operation) -> Operation:
        op.detach()
        self._operations.append(op)
        op.parent = self
        return op

    def insert(self, index: int, op: Operation) -> Operation:
        op.detach()
        self._operations.insert(index, op)
        op.parent = self
        return op

    def extend(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.append(op)

    @property
    def parent_op(self) -> Optional[Operation]:
        return self.parent.parent if self.parent else None

    def __repr__(self) -> str:
        return f"<Block args={len(self.arguments)} ops={len(self._operations)}>"


class Region:
    """An ordered list of blocks owned by an operation."""

    def __init__(self, parent: Optional[Operation] = None) -> None:
        self.blocks: List[Block] = []
        self.parent: Optional[Operation] = parent

    @property
    def empty(self) -> bool:
        return not self.blocks

    @property
    def entry_block(self) -> Block:
        if not self.blocks:
            self.append_block(Block())
        return self.blocks[0]

    def append_block(self, block: Block) -> Block:
        self.blocks.append(block)
        block.parent = self
        return block

    def add_entry_block(self, arg_types: Sequence[Type] = ()) -> Block:
        block = Block(arg_types=arg_types)
        self.blocks.insert(0, block)
        block.parent = self
        return block

    @property
    def operations(self) -> List[Operation]:
        """Operations of the entry block (single-block convenience accessor)."""
        if not self.blocks:
            return []
        return self.blocks[0].operations

    def walk(self, order: str = WalkOrder.POST_ORDER) -> Iterator[Operation]:
        for block in self.blocks:
            for op in list(block.operations):
                yield from op.walk(order=order)

    def __iter__(self) -> Iterator[Block]:
        return iter(self.blocks)

    def __repr__(self) -> str:
        return f"<Region blocks={len(self.blocks)}>"
