"""repro.workloads — the unified workload registry (*what to compile*).

See :mod:`repro.workloads.registry` for the full API; the common surface::

    from repro.workloads import get_workload, list_workloads

    list_workloads(kind="model")          # the Table-8 DNN zoo
    wl = get_workload("resnet18@batch=4")
    module = wl.build_module()            # lazy linalg-level IR
    spec = wl.spec()                      # picklable WorkloadSpec for DSE
"""

from .registry import (
    ParamDecl,
    UnknownWorkloadError,
    Workload,
    WorkloadDef,
    as_module,
    get_workload,
    iter_workloads,
    list_workloads,
    parse_workload_id,
    register_workload,
    source_modules,
    workload_registry,
)

__all__ = [
    "ParamDecl",
    "UnknownWorkloadError",
    "Workload",
    "WorkloadDef",
    "as_module",
    "get_workload",
    "iter_workloads",
    "list_workloads",
    "parse_workload_id",
    "register_workload",
    "source_modules",
    "workload_registry",
]
