"""The global workload registry: one front door for *what to compile*.

Every evaluation scenario of the paper — the Table-8 DNN zoo, the Table-7
PolyBench kernels and the Listing-1 running example — is registered here
under a single :class:`Workload` API:

* :func:`register_workload` is a decorator applied at the definition site
  (a ``Module`` subclass in :mod:`repro.frontend.nn.models` or a kernel
  builder function in :mod:`repro.frontend.cpp`);
* :func:`get_workload` resolves a workload id like ``"resnet18"``,
  ``"resnet18@batch=4"`` or ``"2mm@n=16"`` to a bound :class:`Workload`
  handle with did-you-mean errors for unknown names;
* :func:`list_workloads` / :func:`iter_workloads` drive discovery
  (``python -m repro.compiler --list-workloads``).

A :class:`Workload` builds its linalg-level IR lazily via
:meth:`Workload.build_module` and serializes to the picklable
:class:`~repro.hida.pipeline.WorkloadSpec` that design-space exploration
fans out to worker processes — QoR cache keys are a function of the built
module, so registry resolution leaves them unchanged.
"""

from __future__ import annotations

import dataclasses
import inspect
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from .._naming import closest_names, unknown_name_message
from ..ir.builtin import ModuleOp

__all__ = [
    "ParamDecl",
    "UnknownWorkloadError",
    "Workload",
    "WorkloadDef",
    "as_module",
    "get_workload",
    "iter_workloads",
    "list_workloads",
    "parse_workload_id",
    "register_workload",
    "source_modules",
    "workload_registry",
]

#: Parameter kinds a workload id can spell on the command line.
_SIMPLE_TYPES = (bool, int, float, str)

WORKLOAD_KINDS = ("kernel", "model")


class UnknownWorkloadError(KeyError):
    """An unresolvable workload name, with closest-match suggestions."""

    def __init__(self, message: str, suggestions: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.message = message
        self.suggestions = list(suggestions)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.message


@dataclasses.dataclass(frozen=True)
class ParamDecl:
    """One tunable workload parameter (e.g. ``batch`` or a problem size)."""

    name: str
    default: object

    @property
    def type(self) -> type:
        return type(self.default)

    def coerce(self, value: object) -> object:
        """Validate/convert a parameter value (strings parse per the type)."""
        if isinstance(value, str) and not isinstance(self.default, str):
            text = value.strip()
            if isinstance(self.default, bool):
                if text.lower() in ("true", "1", "yes"):
                    return True
                if text.lower() in ("false", "0", "no"):
                    return False
                raise ValueError(f"invalid boolean {value!r} for parameter {self.name!r}")
            try:
                return self.type(text)
            except ValueError:
                raise ValueError(
                    f"invalid {self.type.__name__} value {value!r} "
                    f"for parameter {self.name!r}"
                ) from None
        if isinstance(self.default, bool) and not isinstance(value, bool):
            raise ValueError(f"parameter {self.name!r} expects a boolean, got {value!r}")
        if isinstance(self.default, float) and isinstance(value, int):
            return float(value)
        if not isinstance(value, self.type):
            raise ValueError(
                f"parameter {self.name!r} expects {self.type.__name__}, got {value!r}"
            )
        return value


@dataclasses.dataclass(frozen=True)
class WorkloadDef:
    """A registered workload: name, kind, lazy builder and metadata."""

    name: str
    kind: str
    builder: Callable[..., ModuleOp]
    params: Tuple[ParamDecl, ...] = ()
    tags: Tuple[str, ...] = ()
    #: Free-form registration metadata; excluded from equality/hashing so
    #: handles stay hashable (definitions are singletons per name anyway).
    metadata: Mapping[str, object] = dataclasses.field(
        default_factory=dict, compare=False
    )
    #: Module that performed the registration.  Worker processes (which may
    #: start via spawn, with a fresh interpreter) re-import these modules so
    #: custom registrations are visible off the main process; workloads
    #: registered in ``__main__`` cannot be recovered that way.
    source_module: Optional[str] = dataclasses.field(default=None, compare=False)

    def param(self, name: str) -> ParamDecl:
        for decl in self.params:
            if decl.name == name:
                return decl
        known = [decl.name for decl in self.params]
        message = unknown_name_message(
            f"parameter of workload {self.name!r}", name, known
        )
        raise UnknownWorkloadError(message, closest_names(name, known))

    def defaults(self) -> Dict[str, object]:
        return {decl.name: decl.default for decl in self.params}

    @property
    def description(self) -> str:
        text = self.metadata.get("description")
        if text:
            return str(text)
        doc = (self.builder.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""


@dataclasses.dataclass(frozen=True)
class Workload:
    """A registry handle bound to concrete parameter values.

    Handles are cheap, hashable and picklable-by-name; the module itself is
    only built when :meth:`build_module` is called.
    """

    definition: WorkloadDef
    bound: Tuple[Tuple[str, object], ...] = ()

    # -------------------------------------------------------------- identity
    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def kind(self) -> str:
        return self.definition.kind

    @property
    def tags(self) -> Tuple[str, ...]:
        return self.definition.tags

    @property
    def metadata(self) -> Mapping[str, object]:
        return self.definition.metadata

    @property
    def params(self) -> Dict[str, object]:
        """Full parameter dict: declaration defaults overlaid with bindings."""
        values = self.definition.defaults()
        values.update(dict(self.bound))
        return values

    @property
    def workload_id(self) -> str:
        """Canonical id that round-trips through :func:`get_workload`.

        Defaults are omitted, so an unparameterized handle prints as the
        bare name and ``resnet18@batch=4`` prints exactly that way.
        """
        overrides = [
            f"{decl.name}={self.params[decl.name]}"
            for decl in self.definition.params
            if self.params[decl.name] != decl.default
        ]
        if not overrides:
            return self.name
        return f"{self.name}@{','.join(overrides)}"

    def label(self) -> str:
        return self.workload_id

    # ------------------------------------------------------------- variants
    def at(self, **params: object) -> "Workload":
        """A new handle with the given parameter overrides applied."""
        merged = dict(self.bound)
        for key, value in params.items():
            decl = self.definition.param(key)
            merged[key] = decl.coerce(value)
        order = {decl.name: i for i, decl in enumerate(self.definition.params)}
        bound = tuple(sorted(merged.items(), key=lambda kv: order[kv[0]]))
        return Workload(self.definition, bound)

    # ------------------------------------------------------------- building
    def build_module(self, **extra: object) -> ModuleOp:
        """Build the linalg-level IR module for this workload variant.

        ``extra`` passes through builder-only keyword arguments that are not
        registry parameters (e.g. ``element_type`` for traced models).
        """
        return self.definition.builder(**self.params, **extra)

    def spec(self):
        """The picklable :class:`~repro.hida.pipeline.WorkloadSpec` of this
        handle (the serialization DSE ships across process boundaries)."""
        from ..hida.pipeline import WorkloadSpec

        params = {
            key: value
            for key, value in self.params.items()
            if value != self.definition.param(key).default
        }
        batch = int(params.pop("batch", 1))
        return WorkloadSpec(
            kind=self.kind,
            name=self.name,
            batch=batch,
            params=tuple(sorted(params.items())),
        )

    def __repr__(self) -> str:
        return f"Workload({self.workload_id!r}, kind={self.kind!r})"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, WorkloadDef] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the frontend modules whose decorators populate the registry.

    The flag is only set once the imports succeed: a failed first import
    re-raises on every lookup instead of silently presenting an empty
    registry.  (Registration itself never calls back into lookup, so this
    cannot recurse.)
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    from ..frontend.cpp import listing1, polybench  # noqa: F401
    from ..frontend.nn import models  # noqa: F401

    _BUILTINS_LOADED = True


def workload_registry() -> Dict[str, WorkloadDef]:
    """A snapshot of the registry (name -> definition, registration order)."""
    _ensure_builtins()
    return dict(_REGISTRY)


def _default_name(obj: object) -> str:
    name = getattr(obj, "__name__", "").lower()
    if name.startswith("build_"):
        name = name[len("build_"):]
    return name.replace("_", "-")


def _params_from_signature(builder: Callable[..., ModuleOp]) -> Tuple[ParamDecl, ...]:
    """Registry parameters = keyword arguments with simple-typed defaults.

    Builder arguments whose defaults are not bool/int/float/str (e.g. a
    traced model's ``element_type``) stay builder-only: they are reachable
    through ``build_module(**extra)`` but not through workload ids.
    """
    decls: List[ParamDecl] = []
    for param in inspect.signature(builder).parameters.values():
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            continue
        if param.default is inspect.Parameter.empty:
            continue
        if isinstance(param.default, _SIMPLE_TYPES):
            decls.append(ParamDecl(param.name, param.default))
    return tuple(decls)


def register_workload(
    name: Optional[str] = None,
    *,
    kind: str,
    tags: Sequence[str] = (),
    expose: Optional[Sequence[str]] = None,
    replace: bool = False,
    **metadata: object,
):
    """Class/function decorator registering a workload under ``name``.

    Applied to a builder *function* returning a linalg-level module, the
    function's simple-typed keyword defaults become registry parameters::

        @register_workload("2mm", kind="kernel", tags=("polybench",))
        def build_2mm(n: int = 40) -> ModuleOp: ...

    Applied to an nn ``Module`` *class* with an ``input_shape`` metadata
    entry, the registered builder instantiates and traces the model, and a
    ``batch`` parameter (plus any simple-typed constructor keywords) is
    derived automatically::

        @register_workload(kind="model", input_shape=(3, 224, 224))
        class ResNet18(Module): ...

    ``expose`` restricts which of the harvested keyword defaults become
    registry parameters — use it when some builder/constructor keywords are
    coupled to fixed registration metadata (e.g. a model whose
    ``in_features`` must match ``input_shape``) and must not be addressable
    from workload ids.  ``batch`` is always exposed for model classes.
    """
    if kind not in WORKLOAD_KINDS:
        raise ValueError(f"unknown workload kind {kind!r}; options: {WORKLOAD_KINDS}")

    def decorator(obj):
        workload_name = (name or _default_name(obj)).lower()
        if not workload_name:
            raise ValueError(f"cannot derive a workload name from {obj!r}")
        if inspect.isclass(obj):
            builder, params = _module_class_builder(obj, workload_name, metadata)
        else:
            builder, params = obj, _params_from_signature(obj)
        if expose is not None:
            allowed = set(expose) | ({"batch"} if inspect.isclass(obj) else set())
            params = tuple(decl for decl in params if decl.name in allowed)
        if workload_name in _REGISTRY and not replace:
            raise ValueError(
                f"workload {workload_name!r} is already registered; "
                "pass replace=True to override"
            )
        _REGISTRY[workload_name] = WorkloadDef(
            name=workload_name,
            kind=kind,
            builder=builder,
            params=params,
            tags=tuple(tags),
            metadata=dict(metadata),
            source_module=getattr(obj, "__module__", None),
        )
        return obj

    return decorator


def _module_class_builder(cls, name: str, metadata: Mapping[str, object]):
    """Builder + parameter declarations for a traced nn ``Module`` class."""
    input_shape = metadata.get("input_shape")
    if input_shape is None:
        raise ValueError(
            f"model workload {name!r} needs input_shape=... metadata "
            "(the per-sample tensor shape to trace at)"
        )
    shape = tuple(int(dim) for dim in input_shape)
    ctor_params = _params_from_signature(cls.__init__)

    def build(batch: int = 1, element_type=None, **ctor: object) -> ModuleOp:
        from ..ir.types import i8
        from ..frontend.nn.tracer import trace

        model = cls(**ctor)
        return trace(
            model,
            (batch, *shape),
            name=name,
            element_type=element_type if element_type is not None else i8,
        )

    params = (ParamDecl("batch", 1), *ctor_params)
    return build, params


def _unregister(name: str) -> None:
    """Test-only hook: drop a registration."""
    _REGISTRY.pop(name.lower(), None)


# ---------------------------------------------------------------------------
# Lookup and parsing
# ---------------------------------------------------------------------------


def parse_workload_id(text: str) -> Tuple[Optional[str], str, Dict[str, str]]:
    """Split a workload id into (kind, name, raw parameter strings).

    Accepted spellings::

        resnet18                  bare registered name
        resnet18@batch=4          explicit parameters (comma-separated)
        2mm@n=16,tsteps=2
        lenet@4                   bare value = the first declared parameter
        model:lenet@4             legacy kind-qualified form (still accepted)
    """
    text = text.strip()
    kind: Optional[str] = None
    if ":" in text:
        prefix, _, rest = text.partition(":")
        kind = prefix.strip().lower()
        text = rest.strip()
    name, _, params_text = text.partition("@")
    name = name.strip().lower()
    if not name:
        raise ValueError(f"empty workload name in {text!r}")
    params: Dict[str, str] = {}
    if params_text:
        for item in params_text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" in item:
                key, _, value = item.partition("=")
                params[key.strip()] = value.strip()
            else:
                params[""] = item  # positional shorthand, resolved at lookup
    return kind, name, params


def get_workload(
    spec: Union[str, Workload, "object"], kind: Optional[str] = None
) -> Workload:
    """Resolve a workload id / spec / handle to a bound :class:`Workload`.

    Unknown names raise :class:`UnknownWorkloadError` listing every
    registered name with a closest-match suggestion.
    """
    if isinstance(spec, Workload):
        return spec
    from ..hida.pipeline import WorkloadSpec

    if isinstance(spec, WorkloadSpec):
        handle = get_workload(spec.name, kind=spec.kind)
        params: Dict[str, object] = dict(spec.params)
        declared = {decl.name for decl in handle.definition.params}
        if spec.batch != 1 and "batch" in declared:
            params["batch"] = spec.batch
        # A batch on a batch-less workload (kernels) is ignored, exactly as
        # the pre-registry build_kernel path ignored WorkloadSpec.batch.
        return handle.at(**params) if params else handle
    if not isinstance(spec, str):
        raise TypeError(f"cannot resolve a workload from {spec!r}")

    parsed_kind, name, raw_params = parse_workload_id(spec)
    if parsed_kind is not None:
        if parsed_kind not in WORKLOAD_KINDS:
            raise UnknownWorkloadError(
                unknown_name_message("workload kind", parsed_kind, WORKLOAD_KINDS),
                closest_names(parsed_kind, WORKLOAD_KINDS),
            )
        kind = parsed_kind
    _ensure_builtins()
    definition = _REGISTRY.get(name)
    if definition is None or (kind is not None and definition.kind != kind):
        candidates = list_workloads(kind=kind)
        raise UnknownWorkloadError(
            unknown_name_message(
                f"{kind} workload" if kind else "workload", name, candidates
            ),
            closest_names(name, candidates),
        )
    handle = Workload(definition)
    if "" in raw_params:
        # Bare "@value" binds the first declared parameter (legacy
        # "model:lenet@4" batch shorthand).
        if not definition.params:
            raise UnknownWorkloadError(
                f"workload {name!r} takes no parameters "
                f"(got {raw_params['']!r})"
            )
        raw_params[definition.params[0].name] = raw_params.pop("")
    return handle.at(**raw_params) if raw_params else handle


def iter_workloads(
    kind: Optional[str] = None, tag: Optional[str] = None
) -> Iterator[Workload]:
    """Unbound handles for every registered workload, registration order."""
    _ensure_builtins()
    for definition in _REGISTRY.values():
        if kind is not None and definition.kind != kind:
            continue
        if tag is not None and tag not in definition.tags:
            continue
        yield Workload(definition)


def list_workloads(kind: Optional[str] = None, tag: Optional[str] = None) -> List[str]:
    """Registered workload names (optionally filtered by kind and tag)."""
    return [handle.name for handle in iter_workloads(kind=kind, tag=tag)]


def source_modules(names: Sequence[str]) -> List[str]:
    """Importable modules whose import (re)registers the named workloads.

    Used by the DSE runner to make custom registrations visible in worker
    processes under the ``spawn`` start method.  Built-in frontend modules
    and ``__main__`` are excluded (the former load via
    :func:`_ensure_builtins`, the latter cannot be re-imported).
    """
    _ensure_builtins()
    modules = set()
    for name in names:
        definition = _REGISTRY.get(str(name).lower())
        if definition is None or definition.source_module in (None, "__main__"):
            continue
        if definition.source_module.startswith("repro."):
            continue
        modules.add(definition.source_module)
    return sorted(modules)


def as_module(workload: Union[ModuleOp, str, Workload, "object"], **extra) -> ModuleOp:
    """Coerce a module / workload id / handle / spec to a built module.

    The polymorphic front door used by the baselines: pass a pre-built
    module through unchanged, or resolve anything else via the registry.
    """
    if isinstance(workload, ModuleOp):
        return workload
    return get_workload(workload).build_module(**extra)
