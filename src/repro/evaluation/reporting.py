"""Plain-text table rendering for the benchmark harnesses.

The benchmark files print the same rows the paper's tables report; these
helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table", "format_ratio", "print_table"]


def format_ratio(value: Optional[float]) -> str:
    """Render an improvement ratio the way the paper does (``1.95x``)."""
    if value is None:
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.2f}x"


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))
    print()
