"""Plain-text table rendering for the benchmark harnesses.

The benchmark files print the same rows the paper's tables report; these
helpers keep the formatting in one place.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ExplorationResult",
    "format_table",
    "format_ratio",
    "print_table",
]


def format_ratio(value: Optional[float]) -> str:
    """Render an improvement ratio the way the paper does (``1.95x``)."""
    if value is None:
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.2f}x"


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))
    print()


@dataclasses.dataclass
class ExplorationResult:
    """Everything produced by one design-space exploration run.

    ``records`` and ``frontier`` hold plain JSON-safe dicts (one per design
    point) as produced by :mod:`repro.dse.runner`, so the result can be
    archived as a CI artifact and diffed across runs without custom codecs.
    """

    records: List[Dict] = dataclasses.field(default_factory=list)
    frontier: List[Dict] = dataclasses.field(default_factory=list)
    objectives: Sequence[str] = ("latency_cycles", "dsp", "bram")
    workers: int = 1
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: List[Dict] = dataclasses.field(default_factory=list)
    #: Points left unevaluated by a ``--resume`` replay (not in the cache).
    skipped: int = 0
    #: Search-strategy name when the run was adaptive (None = full sweep).
    strategy: Optional[str] = None
    #: Evaluation budget of the search (distinct points; cache hits count).
    budget: Optional[int] = None
    #: Per-generation search progress: generation index, points evaluated
    #: that generation, cumulative evaluations vs budget, frontier size and
    #: (informational, run-internal) frontier hypervolume.
    generations: List[Dict] = dataclasses.field(default_factory=list)

    @property
    def num_points(self) -> int:
        return len(self.records)

    @property
    def num_cached(self) -> int:
        return sum(1 for record in self.records if record.get("cached"))

    @property
    def points_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.num_points / self.elapsed_seconds

    def frontier_keys(self) -> List[str]:
        """Stable identity of the frontier (for determinism checks)."""
        return [str(record.get("point_key", "")) for record in self.frontier]

    def best_by(self, metric: str, minimize: bool = True) -> Optional[Dict]:
        # Records missing the metric (errored points, partial summaries)
        # are ignored rather than scored 0.0 — a 0.0 default would make an
        # errored record "win" every minimization.
        scored = [
            r
            for r in self.records
            if r.get("summary", {}).get(metric) is not None
        ]
        if not scored:
            return None
        chooser = min if minimize else max
        return chooser(scored, key=lambda r: float(r["summary"][metric]))

    # -------------------------------------------------------------- rendering
    def frontier_table(self, max_rows: int = 0) -> str:
        headers = ["design point", "latency", "dsp", "bram", "throughput/s", "cached"]
        rows = []
        frontier = self.frontier[:max_rows] if max_rows else self.frontier
        for record in frontier:
            summary = record.get("summary", {})
            rows.append(
                [
                    record.get("label", record.get("point_key", "?")),
                    summary.get("latency_cycles"),
                    summary.get("dsp"),
                    summary.get("bram"),
                    summary.get("throughput"),
                    "yes" if record.get("cached") else "no",
                ]
            )
        title = (
            f"Pareto frontier ({len(self.frontier)}/{self.num_points} points, "
            f"objectives: {', '.join(self.objectives)})"
        )
        return format_table(headers, rows, title)

    def search_table(self) -> str:
        """Per-generation progress of an adaptive search run."""
        headers = ["gen", "evaluated", "total/budget", "frontier", "hypervolume"]
        rows = [
            [
                generation.get("generation"),
                generation.get("evaluated"),
                f"{generation.get('total_evaluations')}/{self.budget}",
                generation.get("frontier_size"),
                generation.get("hypervolume"),
            ]
            for generation in self.generations
        ]
        return format_table(
            headers, rows, f"Search progress (strategy: {self.strategy})"
        )

    def summary(self) -> Dict[str, float]:
        return {
            "points": float(self.num_points),
            "frontier": float(len(self.frontier)),
            "cached": float(self.num_cached),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "errors": float(len(self.errors)),
            "skipped": float(self.skipped),
            "workers": float(self.workers),
            "elapsed_seconds": self.elapsed_seconds,
            "points_per_second": self.points_per_second,
        }

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        return {
            "records": self.records,
            "frontier": self.frontier,
            "objectives": list(self.objectives),
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "errors": self.errors,
            "skipped": self.skipped,
            "strategy": self.strategy,
            "budget": self.budget,
            "generations": self.generations,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "ExplorationResult":
        return cls(
            records=list(data.get("records", [])),
            frontier=list(data.get("frontier", [])),
            objectives=tuple(data.get("objectives", ("latency_cycles", "dsp", "bram"))),
            workers=int(data.get("workers", 1)),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            errors=list(data.get("errors", [])),
            skipped=int(data.get("skipped", 0)),
            strategy=data.get("strategy"),
            budget=data.get("budget"),
            generations=list(data.get("generations", [])),
        )
