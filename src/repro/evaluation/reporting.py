"""Plain-text table rendering for the benchmark harnesses.

The benchmark files print the same rows the paper's tables report; these
helpers keep the formatting in one place.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ExplorationResult",
    "format_table",
    "format_ratio",
    "print_table",
    "relative_disagreement",
]


def relative_disagreement(
    base_summary: Dict, refined_summary: Dict, objectives: Sequence[str]
) -> float:
    """Worst relative per-objective delta between two QoR summaries.

    The single definition of the fidelity-disagreement metric: the runner's
    per-generation ``disagree`` column and the per-point
    :meth:`ExplorationResult.disagreements` report both read it, so the two
    views can never drift apart.
    """
    worst = 0.0
    for name in objectives:
        low, high = base_summary.get(name), refined_summary.get(name)
        if low is None or high is None:
            continue
        low, high = float(low), float(high)
        worst = max(worst, abs(high - low) / max(abs(low), abs(high), 1e-9))
    return worst


def format_ratio(value: Optional[float]) -> str:
    """Render an improvement ratio the way the paper does (``1.95x``)."""
    if value is None:
        return "-"
    if value == float("inf"):
        return "inf"
    return f"{value:.2f}x"


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Render rows as an aligned plain-text table."""
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> None:
    print()
    print(format_table(headers, rows, title))
    print()


@dataclasses.dataclass
class ExplorationResult:
    """Everything produced by one design-space exploration run.

    ``records`` and ``frontier`` hold plain JSON-safe dicts (one per design
    point) as produced by :mod:`repro.dse.runner`, so the result can be
    archived as a CI artifact and diffed across runs without custom codecs.
    """

    records: List[Dict] = dataclasses.field(default_factory=list)
    frontier: List[Dict] = dataclasses.field(default_factory=list)
    objectives: Sequence[str] = ("latency_cycles", "dsp", "bram")
    workers: int = 1
    elapsed_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: List[Dict] = dataclasses.field(default_factory=list)
    #: Points left unevaluated by a ``--resume`` replay (not in the cache).
    skipped: int = 0
    #: Search-strategy name when the run was adaptive (None = full sweep).
    strategy: Optional[str] = None
    #: Evaluation budget of the search (distinct points; cache hits count).
    budget: Optional[int] = None
    #: Per-generation search progress: generation index, points evaluated
    #: that generation, promotions and their worst estimate/simulate
    #: disagreement, cumulative evaluations vs budget, frontier size and
    #: (informational, run-internal) frontier hypervolume.
    generations: List[Dict] = dataclasses.field(default_factory=list)
    #: Top QoR fidelity of the run (see :mod:`repro.dse.fidelity`); the
    #: base ``"estimate"`` level means single-fidelity.
    fidelity: str = "estimate"
    #: Fraction of each generation promoted to the top fidelity (None =
    #: single-fidelity run).
    promote_top: Optional[float] = None
    #: True when ``patience`` stopped the search before the budget ran out.
    stopped_early: bool = False
    #: Compilations resumed mid-pipeline from a stage-boundary IR snapshot
    #: (see :mod:`repro.compiler.ircache`); 0 when the IR cache was off.
    prefix_hits: int = 0
    #: Total stage executions those resumptions skipped.
    stages_skipped: int = 0
    #: Points the static pre-filter rejected before any evaluation (one
    #: record per point: reason, detail, rule counts; see
    #: :mod:`repro.analysis.prefilter`).  Rejections never consume budget.
    rejected: List[Dict] = dataclasses.field(default_factory=list)
    #: Frontier members dropped by ``explore(validate_frontier=True)``:
    #: their pipeline changed program behavior under the reference
    #: interpreter (one record per point: label, error, mismatching
    #: stage checks; see :mod:`repro.analysis.tv`).
    validation_failures: List[Dict] = dataclasses.field(default_factory=list)
    #: Telemetry summary of the run when tracing was enabled (span counts
    #: and the compile / simulate / cache-probe wall-time split; see
    #: :func:`repro.obs.telemetry_summary`).  None on untraced runs, and
    #: omitted from :meth:`to_dict` then, so result files are byte-identical
    #: to pre-telemetry output.
    telemetry: Optional[Dict] = None

    @property
    def num_points(self) -> int:
        return len(self.records)

    @property
    def num_cached(self) -> int:
        return sum(1 for record in self.records if record.get("cached"))

    @property
    def points_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.num_points / self.elapsed_seconds

    @property
    def num_promoted(self) -> int:
        """Scored records above the base fidelity (promotion races).

        Errored re-evaluations are excluded — they produced no simulated
        QoR, so counting them would advertise disagreement rows that
        :meth:`disagreements` (rightly) cannot show.
        """
        return sum(
            1
            for record in self.records
            if "error" not in record
            and record.get("fidelity", "estimate") != "estimate"
        )

    @property
    def num_designs(self) -> int:
        """Distinct design points evaluated (what ``budget`` counts).

        A multi-fidelity run re-evaluates promoted points, so ``num_points``
        (records, i.e. evaluations) exceeds this; single-fidelity runs have
        the two equal.
        """
        return len({record.get("point_key") for record in self.records})

    def disagreements(self) -> List[Dict]:
        """Per-point estimate-vs-promoted objective comparison.

        One row per promoted point: the base and promoted values of every
        objective plus the worst relative delta — how much the dataflow
        simulation moved the analytic score.  Rows are ordered worst
        disagreement first (then point key), so the top row is where the
        cheap model is least trustworthy.
        """
        base: Dict[str, Dict] = {}
        promoted: Dict[str, Dict] = {}
        for record in self.records:
            if "error" in record:
                continue
            key = str(record.get("point_key", ""))
            if record.get("fidelity", "estimate") == "estimate":
                base.setdefault(key, record)
            else:
                promoted[key] = record
        rows: List[Dict] = []
        for key, refined in promoted.items():
            original = base.get(key)
            if original is None:
                continue
            comparison: Dict[str, object] = {
                "point_key": key,
                "label": refined.get("label", original.get("label", "?")),
                "fidelity": refined.get("fidelity"),
            }
            for name in self.objectives:
                comparison[f"estimate_{name}"] = original.get("summary", {}).get(
                    name
                )
                comparison[f"{refined.get('fidelity')}_{name}"] = refined.get(
                    "summary", {}
                ).get(name)
            comparison["max_disagreement"] = relative_disagreement(
                original.get("summary", {}),
                refined.get("summary", {}),
                self.objectives,
            )
            rows.append(comparison)
        rows.sort(
            key=lambda row: (-float(row["max_disagreement"]), row["point_key"])
        )
        return rows

    def frontier_keys(self) -> List[str]:
        """Stable identity of the frontier (for determinism checks)."""
        return [str(record.get("point_key", "")) for record in self.frontier]

    def best_by(self, metric: str, minimize: bool = True) -> Optional[Dict]:
        # Records missing the metric (errored points, partial summaries)
        # are ignored rather than scored 0.0 — a 0.0 default would make an
        # errored record "win" every minimization.
        scored = [
            r
            for r in self.records
            if r.get("summary", {}).get(metric) is not None
        ]
        if not scored:
            return None
        chooser = min if minimize else max
        return chooser(scored, key=lambda r: float(r["summary"][metric]))

    # -------------------------------------------------------------- rendering
    def frontier_table(self, max_rows: int = 0) -> str:
        headers = [
            "design point",
            "latency",
            "dsp",
            "bram",
            "throughput/s",
            "fidelity",
            "cached",
        ]
        rows = []
        frontier = self.frontier[:max_rows] if max_rows else self.frontier
        for record in frontier:
            summary = record.get("summary", {})
            rows.append(
                [
                    record.get("label", record.get("point_key", "?")),
                    summary.get("latency_cycles"),
                    summary.get("dsp"),
                    summary.get("bram"),
                    summary.get("throughput"),
                    record.get("fidelity", "estimate"),
                    "yes" if record.get("cached") else "no",
                ]
            )
        title = (
            f"Pareto frontier ({len(self.frontier)}/{self.num_designs} designs, "
            f"objectives: {', '.join(self.objectives)})"
        )
        return format_table(headers, rows, title)

    def search_table(self) -> str:
        """Per-generation progress of an adaptive search run.

        Multi-fidelity runs add the promotion columns: how many of the
        generation's designs were re-evaluated by the simulator and the
        worst relative disagreement between the two fidelities.  Runs with
        the IR snapshot cache on add a ``reuse`` column: per generation,
        how many compilations resumed from a cached stage prefix and how
        many stage executions that skipped.
        """
        multi = any(generation.get("promoted") for generation in self.generations)
        reuse = self.prefix_hits > 0 or any(
            generation.get("prefix_hits") for generation in self.generations
        )
        headers = ["gen", "evaluated", "total/budget", "frontier", "hypervolume"]
        if multi:
            headers[3:3] = ["promoted", "disagree"]
        if reuse:
            headers.append("reuse")
        rows = []
        for generation in self.generations:
            row = [
                generation.get("generation"),
                generation.get("evaluated"),
                f"{generation.get('total_evaluations')}/{self.budget}",
                generation.get("frontier_size"),
                generation.get("hypervolume"),
            ]
            if multi:
                disagreement = generation.get("max_disagreement")
                row[3:3] = [
                    generation.get("promoted", 0),
                    None if disagreement is None else f"{disagreement:.1%}",
                ]
            if reuse:
                row.append(
                    f"{generation.get('prefix_hits', 0)} hit(s)/"
                    f"{generation.get('stages_skipped', 0)} stage(s)"
                )
            rows.append(row)
        title = f"Search progress (strategy: {self.strategy}"
        if multi:
            title += f", fidelity: {self.fidelity}, promote top {self.promote_top:.0%}"
        title += ", stopped early)" if self.stopped_early else ")"
        return format_table(headers, rows, title)

    def disagreement_table(self, max_rows: int = 0) -> str:
        """Estimate-vs-simulation comparison of every promoted point."""
        rows_data = self.disagreements()
        if max_rows:
            rows_data = rows_data[:max_rows]
        headers = ["design point", "fidelity"]
        for name in self.objectives:
            headers += [f"est {name}", f"{self.fidelity} {name}"]
        headers.append("disagree")
        rows = []
        for comparison in rows_data:
            row = [comparison.get("label"), comparison.get("fidelity")]
            for name in self.objectives:
                row.append(comparison.get(f"estimate_{name}"))
                row.append(comparison.get(f"{comparison.get('fidelity')}_{name}"))
            row.append(f"{float(comparison['max_disagreement']):.1%}")
            rows.append(row)
        return format_table(
            headers,
            rows,
            f"Fidelity disagreement ({self.num_promoted} promoted point(s))",
        )

    def summary(self) -> Dict[str, float]:
        return {
            "points": float(self.num_points),
            "designs": float(self.num_designs),
            "frontier": float(len(self.frontier)),
            "cached": float(self.num_cached),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "errors": float(len(self.errors)),
            "skipped": float(self.skipped),
            "promotions": float(self.num_promoted),
            "workers": float(self.workers),
            "elapsed_seconds": self.elapsed_seconds,
            "points_per_second": self.points_per_second,
            "prefix_hits": float(self.prefix_hits),
            "stages_skipped": float(self.stages_skipped),
            "rejected": float(len(self.rejected)),
            "validation_failures": float(len(self.validation_failures)),
        }

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        data = {
            "records": self.records,
            "frontier": self.frontier,
            "objectives": list(self.objectives),
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "errors": self.errors,
            "skipped": self.skipped,
            "strategy": self.strategy,
            "budget": self.budget,
            "generations": self.generations,
            "fidelity": self.fidelity,
            "promote_top": self.promote_top,
            "stopped_early": self.stopped_early,
            "prefix_hits": self.prefix_hits,
            "stages_skipped": self.stages_skipped,
            "rejected": self.rejected,
            "validation_failures": self.validation_failures,
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict) -> "ExplorationResult":
        return cls(
            records=list(data.get("records", [])),
            frontier=list(data.get("frontier", [])),
            objectives=tuple(data.get("objectives", ("latency_cycles", "dsp", "bram"))),
            workers=int(data.get("workers", 1)),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            errors=list(data.get("errors", [])),
            skipped=int(data.get("skipped", 0)),
            strategy=data.get("strategy"),
            budget=data.get("budget"),
            generations=list(data.get("generations", [])),
            fidelity=str(data.get("fidelity", "estimate")),
            promote_top=data.get("promote_top"),
            stopped_early=bool(data.get("stopped_early", False)),
            prefix_hits=int(data.get("prefix_hits", 0)),
            stages_skipped=int(data.get("stages_skipped", 0)),
            rejected=list(data.get("rejected", [])),
            validation_failures=list(data.get("validation_failures", [])),
            telemetry=data.get("telemetry"),
        )
