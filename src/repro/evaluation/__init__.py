"""repro.evaluation — experiment harnesses reproducing the paper's studies."""

from .lenet_case_study import (
    FACTOR_RANGES,
    LeNetDesignPoint,
    LeNetEvaluation,
    best_design,
    compile_hida_lenet,
    evaluate_design_point,
    exhaustive_search,
    expert_design_point,
    pareto_frontier,
    run_case_study,
)
from .reporting import ExplorationResult, format_ratio, format_table, print_table

__all__ = [
    "FACTOR_RANGES",
    "LeNetDesignPoint",
    "LeNetEvaluation",
    "best_design",
    "compile_hida_lenet",
    "evaluate_design_point",
    "exhaustive_search",
    "expert_design_point",
    "pareto_frontier",
    "run_case_study",
    "ExplorationResult",
    "format_ratio",
    "format_table",
    "print_table",
]
