"""The LeNet accelerator case study of Section 2 (Tables 1-2, Figure 1).

The paper's motivating experiment: an exhaustive sweep over the six parallel
factors of Table 1 (plus the batch size), under both dataflow and
non-dataflow settings, on a PYNQ-Z2 budget — compared with a hand-tuned
expert design and the automatically generated HIDA design.

Evaluating 2.4e4 Vitis HLS runs took the paper hundreds of CPU hours; here
each design point is evaluated with the same analytical QoR model the rest
of the reproduction uses (per-task latency from MACs and parallelism, DSP /
BRAM / LUT resource costs, max-utilization metric), so the full sweep takes
seconds.  The HIDA point is produced by the real compilation pipeline.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..estimation.platform import PYNQ_Z2, Platform
from ..hida.pipeline import CompileResult, HidaOptions, compile_module
from ..workloads import get_workload

__all__ = [
    "FACTOR_RANGES",
    "LeNetDesignPoint",
    "LeNetEvaluation",
    "evaluate_design_point",
    "exhaustive_search",
    "pareto_frontier",
    "expert_design_point",
    "best_design",
    "compile_hida_lenet",
    "run_case_study",
]

#: Parameter ranges of Table 1.  CPF / KPF denote channel / kernel parallel
#: factors; the batch factor applies to all layers.
FACTOR_RANGES: Dict[str, Sequence[int]] = {
    "batch": (1, 5, 10, 15, 20),
    "kpf_task1": (1, 2, 3, 6),
    "kpf_task2": (1, 2, 4, 8, 16),
    "cpf_task2": (1, 2, 3, 6),
    "kpf_task3": (1, 2, 3, 4, 6, 8),
    "cpf_task3": (1, 2, 4, 8, 16),
}

# Per-task workload of the LeNet accelerator (MAC counts for one image),
# following the task decomposition of Table 1:
#   Task1: conv1 (1->6, 5x5, 28x28 out) + ReLU + pool
#   Task2: conv2 (6->16, 5x5, 10x10 out) + ReLU + pool
#   Task3: conv3 (16->120, 5x5, 1x1 out) + ReLU
#   Task4: linear (120 -> 10)
_TASK_MACS = {
    "task1": 6 * 1 * 5 * 5 * 28 * 28,
    "task2": 16 * 6 * 5 * 5 * 10 * 10,
    "task3": 120 * 16 * 5 * 5,
    "task4": 120 * 10,
}

# Inter-task activation buffer sizes in elements (8-bit activations).
_TASK_BUFFER_ELEMENTS = {
    "input": 1 * 28 * 28,
    "task1": 6 * 14 * 14,
    "task2": 16 * 5 * 5,
    "task3": 120,
    "task4": 10,
}

# Weight footprints in elements.
_WEIGHT_ELEMENTS = 6 * 25 + 16 * 6 * 25 + 120 * 16 * 25 + 120 * 10

_PIPELINE_DEPTH = 12
_LUT_BASE = 4500
_LUT_PER_PARALLEL = 145
_BRAM_BITS = 18 * 1024


@dataclasses.dataclass(frozen=True)
class LeNetDesignPoint:
    """One configuration of the exhaustive search."""

    batch: int
    kpf_task1: int
    kpf_task2: int
    cpf_task2: int
    kpf_task3: int
    cpf_task3: int
    dataflow: bool

    def parallelism(self) -> Dict[str, int]:
        return {
            "task1": self.kpf_task1,
            "task2": self.kpf_task2 * self.cpf_task2,
            "task3": self.kpf_task3 * self.cpf_task3,
            "task4": 1,
        }


@dataclasses.dataclass
class LeNetEvaluation:
    """Evaluated metrics of one design point."""

    point: LeNetDesignPoint
    throughput: float  # images per second
    utilization: float  # max(BRAM%, DSP%, LUT%)
    dsp: float
    bram: float
    lut: float

    @property
    def fits(self) -> bool:
        return self.utilization <= 1.0

    def as_row(self) -> Dict[str, float]:
        return {
            "batch": self.point.batch,
            "dataflow": float(self.point.dataflow),
            "throughput": self.throughput,
            "utilization": self.utilization,
            "dsp": self.dsp,
            "bram": self.bram,
            "lut": self.lut,
        }


def evaluate_design_point(
    point: LeNetDesignPoint, platform: Platform = PYNQ_Z2
) -> LeNetEvaluation:
    """Analytically evaluate one LeNet configuration."""
    parallelism = point.parallelism()

    # Per-task latency for a batch of images.
    latencies = {}
    for task, macs in _TASK_MACS.items():
        factor = max(parallelism[task], 1)
        latencies[task] = point.batch * macs / factor + _PIPELINE_DEPTH

    if point.dataflow:
        # Tasks overlap through ping-pong buffers: the interval is set by the
        # slowest task; double buffering doubles the activation storage.
        interval = max(latencies.values())
        buffer_copies = 2
    else:
        interval = sum(latencies.values())
        buffer_copies = 1

    throughput = point.batch * platform.clock_hz / interval

    # Resources.
    total_parallelism = sum(parallelism.values())
    dsp = float(total_parallelism)
    activation_bits = sum(_TASK_BUFFER_ELEMENTS.values()) * 8 * point.batch
    weight_bits = _WEIGHT_ELEMENTS * 8
    bram = (activation_bits * buffer_copies + weight_bits) / _BRAM_BITS
    # Array partitioning for parallel access adds bank fragmentation.
    bram += 0.5 * sum(math.sqrt(f) for f in parallelism.values())
    lut = _LUT_BASE + _LUT_PER_PARALLEL * total_parallelism
    if point.dataflow:
        lut += 900  # dataflow FIFO / handshake control

    utilization = platform.max_utilization({"dsp": dsp, "bram": bram, "lut": lut})
    return LeNetEvaluation(
        point=point,
        throughput=throughput,
        utilization=utilization,
        dsp=dsp,
        bram=bram,
        lut=lut,
    )


def exhaustive_search(
    platform: Platform = PYNQ_Z2,
    dataflow_settings: Sequence[bool] = (True, False),
    limit: Optional[int] = None,
) -> List[LeNetEvaluation]:
    """Evaluate the full Table 1 configuration space (both dataflow settings)."""
    results: List[LeNetEvaluation] = []
    combos = itertools.product(
        FACTOR_RANGES["batch"],
        FACTOR_RANGES["kpf_task1"],
        FACTOR_RANGES["kpf_task2"],
        FACTOR_RANGES["cpf_task2"],
        FACTOR_RANGES["kpf_task3"],
        FACTOR_RANGES["cpf_task3"],
        dataflow_settings,
    )
    for batch, k1, k2, c2, k3, c3, dataflow in combos:
        point = LeNetDesignPoint(batch, k1, k2, c2, k3, c3, dataflow)
        results.append(evaluate_design_point(point, platform))
        if limit is not None and len(results) >= limit:
            break
    return results


def pareto_frontier(results: Iterable[LeNetEvaluation]) -> List[LeNetEvaluation]:
    """Designs not dominated in the (utilization, throughput) plane."""
    feasible = sorted(
        (r for r in results if r.fits), key=lambda r: (r.utilization, -r.throughput)
    )
    frontier: List[LeNetEvaluation] = []
    best = -1.0
    for result in feasible:
        if result.throughput > best:
            frontier.append(result)
            best = result.throughput
    return frontier


def expert_design_point() -> LeNetDesignPoint:
    """The hand-tuned expert configuration (heuristic CPF/KPF selection).

    Mirrors the heuristics of [76]: parallelism roughly proportional to each
    layer's compute, restricted to the Table 1 factor values.
    """
    return LeNetDesignPoint(
        batch=10,
        kpf_task1=6,
        kpf_task2=16,
        cpf_task2=6,
        kpf_task3=4,
        cpf_task3=16,
        dataflow=True,
    )


def best_design(results: Iterable[LeNetEvaluation]) -> LeNetEvaluation:
    """The feasible design with the highest throughput."""
    feasible = [r for r in results if r.fits]
    if not feasible:
        raise ValueError("no feasible design point")
    return max(feasible, key=lambda r: r.throughput)


def compile_hida_lenet(
    parallel_factors: Sequence[int] = (16, 32, 64),
    batches: Sequence[int] = (10, 20),
    platform_name: str = "pynq-z2",
    workload: str = "lenet",
) -> Tuple[float, float, CompileResult]:
    """Compile LeNet with the real HIDA pipeline; pick the best fitting design.

    ``workload`` is resolved through the :mod:`repro.workloads` registry, so
    the same sweep can be pointed at any registered model.  Returns
    (throughput in images/s, utilization, compile result).
    """
    handle = get_workload(workload, kind="model")
    best: Optional[Tuple[float, float, CompileResult]] = None
    for batch in batches:
        for factor in parallel_factors:
            module = handle.at(batch=batch).build_module()
            options = HidaOptions(
                platform=platform_name,
                max_parallel_factor=factor,
                tile_size=0,
            )
            result = compile_module(module, options)
            utilization = result.max_utilization()
            throughput = result.throughput * batch
            if utilization > 1.0:
                continue
            if best is None or throughput > best[0]:
                best = (throughput, utilization, result)
    if best is None:
        raise RuntimeError("no HIDA LeNet configuration fits the platform")
    return best


def run_case_study(platform: Platform = PYNQ_Z2) -> Dict[str, Dict[str, float]]:
    """Produce the Table 2 summary: expert vs exhaustive vs HIDA."""
    results = exhaustive_search(platform)
    expert = evaluate_design_point(expert_design_point(), platform)
    exhaustive_best = best_design(results)
    hida_throughput, hida_utilization, hida_result = compile_hida_lenet()
    return {
        "expert": {
            "throughput": expert.throughput,
            "utilization": expert.utilization,
            "develop_hours": 40.0,
        },
        "exhaustive": {
            "throughput": exhaustive_best.throughput,
            "utilization": exhaustive_best.utilization,
            "develop_hours": 210.0,
        },
        "hida": {
            "throughput": hida_throughput,
            "utilization": hida_utilization,
            "develop_hours": hida_result.compile_seconds / 3600.0,
        },
    }
