"""Shared name-resolution helpers for the workload and target registries.

Both registries (and the CLIs built on them) report unknown names the same
way: the full list of registered names plus a closest-match suggestion,
mirroring the fusion-pattern errors of ``HidaOptions.from_dict``.
"""

from __future__ import annotations

import difflib
from typing import List, Sequence

__all__ = ["closest_names", "unknown_name_message"]


def closest_names(name: str, candidates: Sequence[str], limit: int = 3) -> List[str]:
    """Registered names most similar to ``name`` (best first, may be empty)."""
    return difflib.get_close_matches(name.lower(), list(candidates), n=limit, cutoff=0.5)


def unknown_name_message(kind: str, name: str, candidates: Sequence[str]) -> str:
    """A did-you-mean error message for an unknown registry name."""
    message = f"unknown {kind} {name!r}"
    suggestions = closest_names(name, candidates)
    if suggestions:
        message += f"; did you mean {suggestions[0]!r}?"
    ordered = ", ".join(candidates)
    message += f" (available: {ordered or 'none registered'})"
    return message
