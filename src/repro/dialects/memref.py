"""memref dialect: allocation, load/store and copy on mutable buffers."""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.core import Operation, Value, register_operation
from ..ir.types import MemRefType

__all__ = [
    "AllocOp",
    "DeallocOp",
    "LoadOp",
    "StoreOp",
    "CopyOp",
    "SubViewOp",
    "GetGlobalOp",
]


@register_operation
class AllocOp(Operation):
    """Allocate an on-chip (or external, per memory space) buffer."""

    OPERATION_NAME = "memref.alloc"

    @classmethod
    def create(cls, memref_type: MemRefType, name_hint: Optional[str] = None) -> "AllocOp":
        op = cls(name=cls.OPERATION_NAME, result_types=[memref_type])
        if name_hint:
            op.result().name_hint = name_hint
        return op

    @property
    def memref_type(self) -> MemRefType:
        return self.result().type


@register_operation
class DeallocOp(Operation):
    OPERATION_NAME = "memref.dealloc"

    @classmethod
    def create(cls, memref: Value) -> "DeallocOp":
        return cls(name=cls.OPERATION_NAME, operands=[memref])


@register_operation
class LoadOp(Operation):
    """Load a scalar from a memref at explicit index operands."""

    OPERATION_NAME = "memref.load"

    @classmethod
    def create(cls, memref: Value, indices: Sequence[Value] = ()) -> "LoadOp":
        element_type = memref.type.element_type
        return cls(
            name=cls.OPERATION_NAME,
            operands=[memref, *indices],
            result_types=[element_type],
        )

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[1:]


@register_operation
class StoreOp(Operation):
    """Store a scalar to a memref at explicit index operands."""

    OPERATION_NAME = "memref.store"

    @classmethod
    def create(cls, value: Value, memref: Value, indices: Sequence[Value] = ()) -> "StoreOp":
        return cls(name=cls.OPERATION_NAME, operands=[value, memref, *indices])

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def indices(self) -> Sequence[Value]:
        return self.operands[2:]


@register_operation
class CopyOp(Operation):
    """Copy the full contents of ``source`` into ``target``.

    Inserted by HIDA's multi-producer elimination and data-path balancing
    (explicit memory copies between a buffer and its duplicate).
    """

    OPERATION_NAME = "memref.copy"

    @classmethod
    def create(cls, source: Value, target: Value) -> "CopyOp":
        return cls(name=cls.OPERATION_NAME, operands=[source, target])

    @property
    def source(self) -> Value:
        return self.operand(0)

    @property
    def target(self) -> Value:
        return self.operand(1)


@register_operation
class SubViewOp(Operation):
    """A rectangular tile view into a larger memref (used by loop tiling)."""

    OPERATION_NAME = "memref.subview"

    @classmethod
    def create(
        cls,
        source: Value,
        offsets: Sequence[int],
        sizes: Sequence[int],
        strides: Sequence[int],
    ) -> "SubViewOp":
        source_type: MemRefType = source.type
        result_type = MemRefType(sizes, source_type.element_type, source_type.memory_space)
        return cls(
            name=cls.OPERATION_NAME,
            operands=[source],
            result_types=[result_type],
            attributes={
                "offsets": tuple(offsets),
                "sizes": tuple(sizes),
                "strides": tuple(strides),
            },
        )

    @property
    def source(self) -> Value:
        return self.operand(0)


@register_operation
class GetGlobalOp(Operation):
    """Reference a module-level constant buffer (e.g. DNN weights)."""

    OPERATION_NAME = "memref.get_global"

    @classmethod
    def create(cls, symbol: str, memref_type: MemRefType) -> "GetGlobalOp":
        return cls(
            name=cls.OPERATION_NAME,
            result_types=[memref_type],
            attributes={"symbol": symbol},
        )

    @property
    def symbol(self) -> str:
        return self.get_attr("symbol")
