"""repro.dialects — the dialect stack HIDA is built from.

Existing-dialect substrates: ``arith``, ``scf``, ``affine``, ``memref``,
``tensor``, ``linalg`` and the HLS directive dialect.  HIDA-specific
dialects: the Functional/Structural dataflow dialect in
:mod:`repro.dialects.dataflow`.
"""

from . import affine, affine_map, arith, dataflow, hls, linalg, memref, scf, tensor

__all__ = [
    "affine",
    "affine_map",
    "arith",
    "dataflow",
    "hls",
    "linalg",
    "memref",
    "scf",
    "tensor",
]
