"""HIDA-IR: the hierarchical dataflow dialect (Functional + Structural).

This module implements the key operations of Table 3 in the paper:

Functional dataflow (transparent from above, drives algorithmic
optimization and task fusion):

* :class:`DispatchOp` — launches multiple tasks in its region;
* :class:`TaskOp` — owns a transparent region, may contain nested
  dispatch ops with sub-tasks, yields tensor results.

Structural dataflow (isolated from above, drives scheduling and
parallelization):

* :class:`ScheduleOp` — an isolated region with multiple nodes, carrying
  explicit scheduling information;
* :class:`NodeOp` — an isolated region with explicit per-argument I/O
  memory-effect information;
* :class:`BufferOp` — a memory-mapped buffer with ping-pong semantics and
  partition / tiling / vectorization / placement attributes;
* :class:`StreamOp` plus read/write ops — FIFO stream channels (single-bit
  streams are used as synchronization tokens for elastic node execution).

Module interface:

* :class:`PortOp`, :class:`BundleOp`, :class:`PackOp` — memory or stream
  ports, named port bundles, and packing of an external memory block into a
  port.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..ir.core import Block, Operation, Value, register_operation
from ..ir.types import MemRefType, StreamType, Type, i1
from .hls import ArrayPartition

__all__ = [
    "MemoryEffect",
    "BufferLayout",
    "DispatchOp",
    "TaskOp",
    "YieldOp",
    "ScheduleOp",
    "NodeOp",
    "BufferOp",
    "StreamOp",
    "StreamReadOp",
    "StreamWriteOp",
    "PortOp",
    "BundleOp",
    "PackOp",
    "get_producers",
    "get_consumers",
    "get_node_users",
    "is_external_buffer",
    "defining_buffer_op",
]


class MemoryEffect:
    """Explicit memory effects carried by node arguments."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "readwrite"
    PARAM = "param"

    ALL = (READ, WRITE, READ_WRITE, PARAM)

    @staticmethod
    def reads(effect: str) -> bool:
        return effect in (MemoryEffect.READ, MemoryEffect.READ_WRITE)

    @staticmethod
    def writes(effect: str) -> bool:
        return effect in (MemoryEffect.WRITE, MemoryEffect.READ_WRITE)


@dataclasses.dataclass(frozen=True)
class BufferLayout:
    """Data layout of a buffer: per-dimension tiling and vectorization factors.

    Mirrors the ``#hida.layout<[tiles], [vectors]>`` attribute in Figure 4 of
    the paper; both are convertible to semi-affine maps for polyhedral
    analysis (see :meth:`to_affine_map`).
    """

    tile_factors: Tuple[int, ...]
    vector_factors: Tuple[int, ...]

    def __init__(
        self, tile_factors: Sequence[int], vector_factors: Optional[Sequence[int]] = None
    ) -> None:
        tiles = tuple(int(t) for t in tile_factors)
        vectors = tuple(int(v) for v in (vector_factors or [1] * len(tiles)))
        if len(tiles) != len(vectors):
            raise ValueError("tile and vector factor ranks must match")
        if any(t < 1 for t in tiles) or any(v < 1 for v in vectors):
            raise ValueError("layout factors must be >= 1")
        object.__setattr__(self, "tile_factors", tiles)
        object.__setattr__(self, "vector_factors", vectors)

    @classmethod
    def default(cls, rank: int) -> "BufferLayout":
        return cls([1] * rank, [1] * rank)

    @property
    def rank(self) -> int:
        return len(self.tile_factors)

    def to_affine_map(self):
        """Semi-affine map (d_i) -> (d_i floordiv T_i, d_i mod T_i) flattened."""
        from .affine_map import AffineMap, dim

        results = []
        for i, tile in enumerate(self.tile_factors):
            if tile > 1:
                results.append(dim(i) // tile)
                results.append(dim(i) % tile)
            else:
                results.append(dim(i))
        return AffineMap(self.rank, 0, results)

    def __str__(self) -> str:
        return f"layout<{list(self.tile_factors)}, {list(self.vector_factors)}>"


# ---------------------------------------------------------------------------
# Functional dataflow
# ---------------------------------------------------------------------------


@register_operation
class DispatchOp(Operation):
    """Launches multiple tasks in its (transparent) region."""

    OPERATION_NAME = "hida.dispatch"

    @classmethod
    def create(cls, result_types: Sequence[Type] = ()) -> "DispatchOp":
        op = cls(
            name=cls.OPERATION_NAME,
            result_types=result_types,
            num_regions=1,
        )
        op.regions[0].add_entry_block()
        return op

    @property
    def tasks(self) -> List["TaskOp"]:
        return [op for op in self.body.operations if isinstance(op, TaskOp)]

    def verify(self) -> None:
        if not self.regions:
            raise ValueError("hida.dispatch must own a region")


@register_operation
class TaskOp(Operation):
    """A dataflow task owning a transparent region.

    Results are the values yielded by the terminating :class:`YieldOp`; at
    the Functional level these are typically tensors that downstream tasks
    consume directly.
    """

    OPERATION_NAME = "hida.task"

    @classmethod
    def create(
        cls,
        result_types: Sequence[Type] = (),
        label: str = "",
    ) -> "TaskOp":
        op = cls(
            name=cls.OPERATION_NAME,
            result_types=result_types,
            attributes={"label": label} if label else {},
            num_regions=1,
        )
        op.regions[0].add_entry_block()
        return op

    @property
    def label(self) -> str:
        return self.get_attr("label", "")

    def set_label(self, label: str) -> None:
        self.set_attr("label", label)

    @property
    def yield_op(self) -> Optional["YieldOp"]:
        last = self.body.last_op
        return last if isinstance(last, YieldOp) else None

    @property
    def sub_dispatches(self) -> List[DispatchOp]:
        return [op for op in self.body.operations if isinstance(op, DispatchOp)]

    def payload_ops(self) -> List[Operation]:
        """Ops in the task body excluding the terminator."""
        return [op for op in self.body.operations if not isinstance(op, YieldOp)]

    def verify(self) -> None:
        yield_op = self.yield_op
        num_yielded = yield_op.num_operands if yield_op else 0
        if num_yielded != self.num_results:
            raise ValueError(
                f"hida.task yields {num_yielded} values but has "
                f"{self.num_results} results"
            )


@register_operation
class YieldOp(Operation):
    """Terminator yielding task / dispatch results."""

    OPERATION_NAME = "hida.yield"

    @classmethod
    def create(cls, operands: Sequence[Value] = ()) -> "YieldOp":
        return cls(name=cls.OPERATION_NAME, operands=operands)


# ---------------------------------------------------------------------------
# Structural dataflow
# ---------------------------------------------------------------------------


@register_operation
class ScheduleOp(Operation):
    """An isolated region with multiple nodes and explicit scheduling info."""

    OPERATION_NAME = "hida.schedule"

    ISOLATED_FROM_ABOVE = True

    @classmethod
    def create(cls, operands: Sequence[Value] = (), label: str = "") -> "ScheduleOp":
        op = cls(
            name=cls.OPERATION_NAME,
            operands=operands,
            attributes={"label": label} if label else {},
            num_regions=1,
        )
        op.regions[0].add_entry_block(arg_types=[v.type for v in operands])
        return op

    @property
    def label(self) -> str:
        return self.get_attr("label", "")

    @property
    def nodes(self) -> List["NodeOp"]:
        return [op for op in self.body.operations if isinstance(op, NodeOp)]

    @property
    def buffers(self) -> List["BufferOp"]:
        return [op for op in self.body.operations if isinstance(op, BufferOp)]

    @property
    def streams(self) -> List["StreamOp"]:
        return [op for op in self.body.operations if isinstance(op, StreamOp)]

    def block_argument_for(self, operand_index: int) -> Value:
        return self.body.arguments[operand_index]

    def add_operand_with_argument(self, value: Value) -> Value:
        """Pass one more external value into the schedule; returns its block arg."""
        self.append_operand(value)
        return self.body.add_argument(value.type, name_hint=value.name_hint)

    def verify(self) -> None:
        if len(self.body.arguments) != self.num_operands:
            raise ValueError(
                "hida.schedule block arguments must match its operands"
            )


@register_operation
class NodeOp(Operation):
    """A dataflow node with an isolated region and explicit memory effects.

    Operands are grouped by their memory effect, mirroring the RO / RW / out
    argument lists of Figure 4.  Each operand has a matching block argument
    of the same type inside the node body.
    """

    OPERATION_NAME = "hida.node"

    ISOLATED_FROM_ABOVE = True

    @classmethod
    def create(
        cls,
        inputs: Sequence[Value] = (),
        outputs: Sequence[Value] = (),
        inouts: Sequence[Value] = (),
        params: Sequence[Value] = (),
        label: str = "",
    ) -> "NodeOp":
        operands = [*inputs, *outputs, *inouts, *params]
        effects = (
            [MemoryEffect.READ] * len(inputs)
            + [MemoryEffect.WRITE] * len(outputs)
            + [MemoryEffect.READ_WRITE] * len(inouts)
            + [MemoryEffect.PARAM] * len(params)
        )
        op = cls(
            name=cls.OPERATION_NAME,
            operands=operands,
            attributes={"effects": effects, "label": label},
            num_regions=1,
        )
        body = op.regions[0].add_entry_block(arg_types=[v.type for v in operands])
        for arg, value in zip(body.arguments, operands):
            arg.name_hint = value.name_hint
        return op

    # ------------------------------------------------------------ attributes
    @property
    def label(self) -> str:
        return self.get_attr("label", "")

    def set_label(self, label: str) -> None:
        self.set_attr("label", label)

    @property
    def effects(self) -> List[str]:
        return list(self.get_attr("effects", []))

    def effect_of(self, operand_index: int) -> str:
        return self.effects[operand_index]

    def set_effect(self, operand_index: int, effect: str) -> None:
        effects = self.effects
        effects[operand_index] = effect
        self.set_attr("effects", effects)

    # --------------------------------------------------------------- queries
    def _operands_with_effect(self, predicate) -> List[Tuple[int, Value]]:
        return [
            (i, v)
            for i, (v, e) in enumerate(zip(self.operands, self.effects))
            if predicate(e)
        ]

    @property
    def inputs(self) -> List[Value]:
        return [v for _, v in self._operands_with_effect(lambda e: e == MemoryEffect.READ)]

    @property
    def outputs(self) -> List[Value]:
        return [v for _, v in self._operands_with_effect(lambda e: e == MemoryEffect.WRITE)]

    @property
    def inouts(self) -> List[Value]:
        return [
            v for _, v in self._operands_with_effect(lambda e: e == MemoryEffect.READ_WRITE)
        ]

    @property
    def params(self) -> List[Value]:
        return [v for _, v in self._operands_with_effect(lambda e: e == MemoryEffect.PARAM)]

    def reads(self, value: Value) -> bool:
        """True if this node reads from ``value`` (READ or READ_WRITE)."""
        return any(
            operand is value and MemoryEffect.reads(effect)
            for operand, effect in zip(self.operands, self.effects)
        )

    def writes(self, value: Value) -> bool:
        """True if this node writes to ``value`` (WRITE or READ_WRITE)."""
        return any(
            operand is value and MemoryEffect.writes(effect)
            for operand, effect in zip(self.operands, self.effects)
        )

    def uses_value(self, value: Value) -> bool:
        return any(operand is value for operand in self.operands)

    def block_argument_for(self, operand: Value) -> Value:
        """Block argument corresponding to a specific operand value."""
        for i, candidate in enumerate(self.operands):
            if candidate is operand:
                return self.body.arguments[i]
        raise ValueError("value is not an operand of this node")

    def operand_index_of(self, value: Value) -> int:
        for i, candidate in enumerate(self.operands):
            if candidate is value:
                return i
        raise ValueError("value is not an operand of this node")

    def add_operand_with_argument(self, value: Value, effect: str) -> Value:
        """Add an extra operand (with the given effect); returns the block arg."""
        self.append_operand(value)
        effects = self.effects
        effects.append(effect)
        self.set_attr("effects", effects)
        return self.body.add_argument(value.type, name_hint=value.name_hint)

    def replace_operand(self, old: Value, new: Value) -> None:
        """Rewrite uses of ``old`` as an operand of this node with ``new``."""
        for i, operand in enumerate(self.operands):
            if operand is old:
                self.set_operand(i, new)

    @property
    def sub_schedules(self) -> List[ScheduleOp]:
        return [op for op in self.body.operations if isinstance(op, ScheduleOp)]

    def verify(self) -> None:
        if len(self.effects) != self.num_operands:
            raise ValueError("hida.node effects list must match operand count")
        for effect in self.effects:
            if effect not in MemoryEffect.ALL:
                raise ValueError(f"unknown memory effect {effect!r}")
        if len(self.body.arguments) != self.num_operands:
            raise ValueError("hida.node block arguments must match operands")


@register_operation
class BufferOp(Operation):
    """A memory-mapped buffer with ping-pong semantics.

    Attributes mirror Figure 4: ``depth`` (number of ping-pong stages),
    ``partition`` (an :class:`~repro.dialects.hls.ArrayPartition`),
    ``layout`` (a :class:`BufferLayout`) and ``memory_kind`` (``bram_t2p``,
    ``bram_s2p``, ``uram``, ``lutram``, or ``dram`` for external placement).
    """

    OPERATION_NAME = "hida.buffer"

    @classmethod
    def create(
        cls,
        memref_type: MemRefType,
        depth: int = 1,
        partition: Optional[ArrayPartition] = None,
        layout: Optional[BufferLayout] = None,
        memory_kind: str = "bram_t2p",
        name_hint: Optional[str] = None,
    ) -> "BufferOp":
        rank = memref_type.rank
        op = cls(
            name=cls.OPERATION_NAME,
            result_types=[memref_type],
            attributes={
                "depth": int(depth),
                "partition": partition or ArrayPartition.none(rank),
                "layout": layout or BufferLayout.default(rank),
                "memory_kind": memory_kind,
            },
        )
        if name_hint:
            op.result().name_hint = name_hint
        return op

    @property
    def memref_type(self) -> MemRefType:
        return self.result().type

    @property
    def depth(self) -> int:
        return self.get_attr("depth", 1)

    def set_depth(self, depth: int) -> None:
        self.set_attr("depth", int(depth))

    @property
    def partition(self) -> ArrayPartition:
        return self.get_attr("partition")

    def set_partition(self, partition: ArrayPartition) -> None:
        self.set_attr("partition", partition)

    @property
    def layout(self) -> BufferLayout:
        return self.get_attr("layout")

    def set_layout(self, layout: BufferLayout) -> None:
        self.set_attr("layout", layout)

    @property
    def memory_kind(self) -> str:
        return self.get_attr("memory_kind", "bram_t2p")

    def set_memory_kind(self, kind: str) -> None:
        self.set_attr("memory_kind", kind)

    @property
    def is_external(self) -> bool:
        return self.memory_kind == "dram" or not self.memref_type.is_on_chip

    def verify(self) -> None:
        if self.depth < 1:
            raise ValueError("hida.buffer depth must be >= 1")
        if self.partition.rank != self.memref_type.rank:
            raise ValueError("hida.buffer partition rank mismatch")


@register_operation
class StreamOp(Operation):
    """A FIFO stream channel with a bounded number of entries.

    Single-bit streams (element type ``i1``) are used as synchronization
    tokens for elastic node execution when buffers are spilled to external
    memory.
    """

    OPERATION_NAME = "hida.stream"

    @classmethod
    def create(
        cls,
        element_type: Type = i1,
        depth: int = 2,
        name_hint: Optional[str] = None,
    ) -> "StreamOp":
        op = cls(
            name=cls.OPERATION_NAME,
            result_types=[StreamType(element_type, depth)],
        )
        if name_hint:
            op.result().name_hint = name_hint
        return op

    @property
    def stream_type(self) -> StreamType:
        return self.result().type

    @property
    def depth(self) -> int:
        return self.stream_type.depth

    @property
    def is_token(self) -> bool:
        element = self.stream_type.element_type
        return getattr(element, "width", None) == 1


@register_operation
class StreamReadOp(Operation):
    """Blocking read of one element from a stream channel."""

    OPERATION_NAME = "hida.stream_read"

    @classmethod
    def create(cls, stream: Value) -> "StreamReadOp":
        stream_type: StreamType = stream.type
        return cls(
            name=cls.OPERATION_NAME,
            operands=[stream],
            result_types=[stream_type.element_type],
        )

    @property
    def stream(self) -> Value:
        return self.operand(0)


@register_operation
class StreamWriteOp(Operation):
    """Blocking write of one element to a stream channel."""

    OPERATION_NAME = "hida.stream_write"

    @classmethod
    def create(cls, stream: Value, value: Value) -> "StreamWriteOp":
        return cls(name=cls.OPERATION_NAME, operands=[stream, value])

    @property
    def stream(self) -> Value:
        return self.operand(0)

    @property
    def value(self) -> Value:
        return self.operand(1)


# ---------------------------------------------------------------------------
# Module interface
# ---------------------------------------------------------------------------


@register_operation
class PortOp(Operation):
    """A memory-mapped or stream port with explicit type and latency."""

    OPERATION_NAME = "hida.port"

    @classmethod
    def create(
        cls,
        port_type: Type,
        kind: str = "memory",
        latency: int = 64,
        name: str = "",
    ) -> "PortOp":
        return cls(
            name=cls.OPERATION_NAME,
            result_types=[port_type],
            attributes={"kind": kind, "latency": latency, "port_name": name},
        )

    @property
    def kind(self) -> str:
        return self.get_attr("kind")

    @property
    def latency(self) -> int:
        return self.get_attr("latency", 64)

    @property
    def port_name(self) -> str:
        return self.get_attr("port_name", "")


@register_operation
class BundleOp(Operation):
    """A named bundle of ports (e.g. one AXI interface shared by buffers)."""

    OPERATION_NAME = "hida.bundle"

    @classmethod
    def create(cls, ports: Sequence[Value], name: str = "gmem") -> "BundleOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=list(ports),
            attributes={"bundle_name": name},
        )

    @property
    def bundle_name(self) -> str:
        return self.get_attr("bundle_name")


@register_operation
class PackOp(Operation):
    """Pack an external memory block into a port."""

    OPERATION_NAME = "hida.pack"

    @classmethod
    def create(cls, memory: Value, port: Value, offset: int = 0) -> "PackOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[memory, port],
            attributes={"offset": offset},
        )

    @property
    def offset(self) -> int:
        return self.get_attr("offset", 0)


# ---------------------------------------------------------------------------
# Dataflow graph queries
# ---------------------------------------------------------------------------


def get_node_users(buffer: Value) -> List[NodeOp]:
    """All nodes that take ``buffer`` as an operand, in program order."""
    users = [op for op in buffer.users if isinstance(op, NodeOp)]
    block = users[0].parent if users else None
    if block is not None:
        users.sort(key=lambda n: block.index_of(n) if n.parent is block else 1 << 30)
    return users


def get_producers(buffer: Value) -> List[NodeOp]:
    """Nodes with a write effect on ``buffer``."""
    return [node for node in get_node_users(buffer) if node.writes(buffer)]


def get_consumers(buffer: Value) -> List[NodeOp]:
    """Nodes with a read effect on ``buffer``."""
    return [node for node in get_node_users(buffer) if node.reads(buffer)]


def defining_buffer_op(value: Value) -> Optional[BufferOp]:
    """The BufferOp producing ``value``, if any."""
    op = value.defining_op
    return op if isinstance(op, BufferOp) else None


def is_external_buffer(buffer: Value, schedule: ScheduleOp) -> bool:
    """Whether ``buffer`` is allocated outside ``schedule``'s region.

    External buffers may be observed by nodes outside the schedule, so
    multi-producer elimination must fall back to node fusion (Algorithm 3,
    lines 11-13).
    """
    buffer_op = buffer.defining_op
    if buffer_op is None:
        # A block argument of the schedule or an ancestor: external.
        return True
    return not schedule.is_ancestor_of(buffer_op)
