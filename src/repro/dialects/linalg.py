"""linalg dialect: named tensor-level compute operations.

These ops are what the PyTorch-like frontend emits (the role Torch-MLIR +
linalg play in the paper).  Each op knows its output shape and its
multiply-accumulate count, which feed the Functional-dataflow optimizations
and the QoR estimation.  The linalg-to-affine lowering pass expands them
into affine loop nests for the Structural dataflow.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..ir.core import Operation, Value, register_operation
from ..ir.types import TensorType, Type, f32

__all__ = [
    "LinalgOp",
    "Conv2DOp",
    "DepthwiseConv2DOp",
    "MaxPool2DOp",
    "AvgPool2DOp",
    "MatmulOp",
    "LinearOp",
    "AddOp",
    "MulOp",
    "ReluOp",
    "BatchNormOp",
    "SoftmaxOp",
    "ReshapeOp",
    "ConcatOp",
    "UpsampleOp",
    "FillOp",
    "GenericOp",
    "ELEMENTWISE_OP_NAMES",
]


class LinalgOp(Operation):
    """Base class of named linalg ops.

    Subclasses implement :meth:`macs` (multiply-accumulate operations per
    invocation) and may refine :meth:`num_scalar_ops` (total scalar ops, used
    by the intensity analysis when the op has no MACs).
    """

    OPERATION_NAME = "linalg.op"

    def macs(self) -> int:
        """Multiply-accumulate count of one execution of this op."""
        return 0

    def num_scalar_ops(self) -> int:
        """Total scalar operations (defaults to output element count)."""
        macs = self.macs()
        if macs:
            return macs
        if self.results and isinstance(self.result().type, TensorType):
            return self.result().type.num_elements
        return 1

    @property
    def output_type(self) -> TensorType:
        return self.result().type

    @property
    def is_elementwise(self) -> bool:
        return self.name in ELEMENTWISE_OP_NAMES


def _conv_output_hw(
    in_h: int, in_w: int, kernel: int, stride: int, padding: int
) -> Tuple[int, int]:
    out_h = (in_h + 2 * padding - kernel) // stride + 1
    out_w = (in_w + 2 * padding - kernel) // stride + 1
    return out_h, out_w


@register_operation
class Conv2DOp(LinalgOp):
    """2-D convolution over NCHW tensors with OIHW weights."""

    OPERATION_NAME = "linalg.conv2d"

    @classmethod
    def create(
        cls,
        input: Value,
        weight: Value,
        bias: Optional[Value] = None,
        stride: int = 1,
        padding: int = 0,
    ) -> "Conv2DOp":
        in_type: TensorType = input.type
        w_type: TensorType = weight.type
        batch, in_c, in_h, in_w = in_type.shape
        out_c, w_in_c, k_h, k_w = w_type.shape
        if w_in_c != in_c:
            raise ValueError(
                f"conv2d channel mismatch: input has {in_c}, weight expects {w_in_c}"
            )
        out_h, out_w = _conv_output_hw(in_h, in_w, k_h, stride, padding)
        out_type = TensorType((batch, out_c, out_h, out_w), in_type.element_type)
        operands = [input, weight] + ([bias] if bias is not None else [])
        return cls(
            name=cls.OPERATION_NAME,
            operands=operands,
            result_types=[out_type],
            attributes={
                "stride": stride,
                "padding": padding,
                "kernel": (k_h, k_w),
                "has_bias": bias is not None,
            },
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def weight(self) -> Value:
        return self.operand(1)

    @property
    def stride(self) -> int:
        return self.get_attr("stride", 1)

    @property
    def padding(self) -> int:
        return self.get_attr("padding", 0)

    def macs(self) -> int:
        out = self.output_type.shape  # (N, OC, OH, OW)
        w = self.weight.type.shape  # (OC, IC, KH, KW)
        return out[0] * out[1] * out[2] * out[3] * w[1] * w[2] * w[3]


@register_operation
class DepthwiseConv2DOp(LinalgOp):
    """Depthwise 2-D convolution (channel multiplier 1), as in MobileNet."""

    OPERATION_NAME = "linalg.depthwise_conv2d"

    @classmethod
    def create(
        cls,
        input: Value,
        weight: Value,
        stride: int = 1,
        padding: int = 0,
    ) -> "DepthwiseConv2DOp":
        in_type: TensorType = input.type
        w_type: TensorType = weight.type
        batch, in_c, in_h, in_w = in_type.shape
        w_c, _one, k_h, k_w = w_type.shape
        if w_c != in_c:
            raise ValueError("depthwise conv channel mismatch")
        out_h, out_w = _conv_output_hw(in_h, in_w, k_h, stride, padding)
        out_type = TensorType((batch, in_c, out_h, out_w), in_type.element_type)
        return cls(
            name=cls.OPERATION_NAME,
            operands=[input, weight],
            result_types=[out_type],
            attributes={"stride": stride, "padding": padding, "kernel": (k_h, k_w)},
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def weight(self) -> Value:
        return self.operand(1)

    @property
    def stride(self) -> int:
        return self.get_attr("stride", 1)

    @property
    def padding(self) -> int:
        return self.get_attr("padding", 0)

    def macs(self) -> int:
        out = self.output_type.shape
        k_h, k_w = self.get_attr("kernel")
        return out[0] * out[1] * out[2] * out[3] * k_h * k_w


class _Pool2DOp(LinalgOp):
    """Shared implementation of max/average pooling."""

    @classmethod
    def create(
        cls,
        input: Value,
        kernel: int = 2,
        stride: Optional[int] = None,
        padding: int = 0,
    ):
        stride = stride or kernel
        in_type: TensorType = input.type
        batch, channels, in_h, in_w = in_type.shape
        out_h, out_w = _conv_output_hw(in_h, in_w, kernel, stride, padding)
        out_type = TensorType((batch, channels, out_h, out_w), in_type.element_type)
        return cls(
            name=cls.OPERATION_NAME,
            operands=[input],
            result_types=[out_type],
            attributes={"kernel": kernel, "stride": stride, "padding": padding},
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def kernel(self) -> int:
        return self.get_attr("kernel")

    @property
    def stride(self) -> int:
        return self.get_attr("stride")

    def num_scalar_ops(self) -> int:
        out = self.output_type.shape
        return out[0] * out[1] * out[2] * out[3] * self.kernel * self.kernel


@register_operation
class MaxPool2DOp(_Pool2DOp):
    OPERATION_NAME = "linalg.maxpool2d"


@register_operation
class AvgPool2DOp(_Pool2DOp):
    OPERATION_NAME = "linalg.avgpool2d"


@register_operation
class MatmulOp(LinalgOp):
    """Matrix multiplication ``(M, K) x (K, N) -> (M, N)``."""

    OPERATION_NAME = "linalg.matmul"

    @classmethod
    def create(cls, lhs: Value, rhs: Value) -> "MatmulOp":
        l_type: TensorType = lhs.type
        r_type: TensorType = rhs.type
        m, k = l_type.shape
        k2, n = r_type.shape
        if k != k2:
            raise ValueError(f"matmul inner dimension mismatch: {k} vs {k2}")
        out_type = TensorType((m, n), l_type.element_type)
        return cls(
            name=cls.OPERATION_NAME,
            operands=[lhs, rhs],
            result_types=[out_type],
        )

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def macs(self) -> int:
        m, n = self.output_type.shape
        k = self.lhs.type.shape[1]
        return m * n * k


@register_operation
class LinearOp(LinalgOp):
    """Fully-connected layer ``(N, IF) x (OF, IF)^T + bias -> (N, OF)``."""

    OPERATION_NAME = "linalg.linear"

    @classmethod
    def create(cls, input: Value, weight: Value, bias: Optional[Value] = None) -> "LinearOp":
        in_type: TensorType = input.type
        w_type: TensorType = weight.type
        batch, in_features = in_type.shape
        out_features, w_in = w_type.shape
        if w_in != in_features:
            raise ValueError(
                f"linear feature mismatch: input {in_features}, weight {w_in}"
            )
        out_type = TensorType((batch, out_features), in_type.element_type)
        operands = [input, weight] + ([bias] if bias is not None else [])
        return cls(
            name=cls.OPERATION_NAME,
            operands=operands,
            result_types=[out_type],
            attributes={"has_bias": bias is not None},
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    @property
    def weight(self) -> Value:
        return self.operand(1)

    def macs(self) -> int:
        batch, out_features = self.output_type.shape
        in_features = self.input.type.shape[1]
        return batch * out_features * in_features


class _BinaryElementwiseOp(LinalgOp):
    @classmethod
    def create(cls, lhs: Value, rhs: Value):
        if lhs.type.shape != rhs.type.shape:
            raise ValueError(
                f"elementwise shape mismatch: {lhs.type.shape} vs {rhs.type.shape}"
            )
        return cls(
            name=cls.OPERATION_NAME,
            operands=[lhs, rhs],
            result_types=[lhs.type],
        )

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)


@register_operation
class AddOp(_BinaryElementwiseOp):
    """Elementwise addition (e.g. ResNet shortcut merge)."""

    OPERATION_NAME = "linalg.add"


@register_operation
class MulOp(_BinaryElementwiseOp):
    """Elementwise multiplication."""

    OPERATION_NAME = "linalg.mul"


class _UnaryElementwiseOp(LinalgOp):
    @classmethod
    def create(cls, input: Value):
        return cls(
            name=cls.OPERATION_NAME,
            operands=[input],
            result_types=[input.type],
        )

    @property
    def input(self) -> Value:
        return self.operand(0)


@register_operation
class ReluOp(_UnaryElementwiseOp):
    OPERATION_NAME = "linalg.relu"


@register_operation
class SoftmaxOp(_UnaryElementwiseOp):
    OPERATION_NAME = "linalg.softmax"


@register_operation
class BatchNormOp(LinalgOp):
    """Batch normalization folded into a per-channel scale and shift."""

    OPERATION_NAME = "linalg.batch_norm"

    @classmethod
    def create(cls, input: Value, scale: Value, shift: Value) -> "BatchNormOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[input, scale, shift],
            result_types=[input.type],
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    def macs(self) -> int:
        return self.output_type.num_elements


@register_operation
class ReshapeOp(LinalgOp):
    """Reshape / flatten without moving data."""

    OPERATION_NAME = "linalg.reshape"

    @classmethod
    def create(cls, input: Value, shape: Sequence[int]) -> "ReshapeOp":
        in_type: TensorType = input.type
        out_type = TensorType(shape, in_type.element_type)
        if out_type.num_elements != in_type.num_elements:
            raise ValueError(
                f"reshape element count mismatch: {in_type.num_elements} "
                f"vs {out_type.num_elements}"
            )
        return cls(
            name=cls.OPERATION_NAME,
            operands=[input],
            result_types=[out_type],
            attributes={"shape": tuple(shape)},
        )

    @property
    def input(self) -> Value:
        return self.operand(0)

    def num_scalar_ops(self) -> int:
        return 0


@register_operation
class ConcatOp(LinalgOp):
    """Concatenate tensors along an axis (YOLO-style feature merges)."""

    OPERATION_NAME = "linalg.concat"

    @classmethod
    def create(cls, inputs: Sequence[Value], axis: int = 1) -> "ConcatOp":
        first: TensorType = inputs[0].type
        shape = list(first.shape)
        shape[axis] = sum(v.type.shape[axis] for v in inputs)
        out_type = TensorType(shape, first.element_type)
        return cls(
            name=cls.OPERATION_NAME,
            operands=list(inputs),
            result_types=[out_type],
            attributes={"axis": axis},
        )

    def num_scalar_ops(self) -> int:
        return 0


@register_operation
class UpsampleOp(LinalgOp):
    """Nearest-neighbour spatial upsampling by an integer factor."""

    OPERATION_NAME = "linalg.upsample"

    @classmethod
    def create(cls, input: Value, factor: int = 2) -> "UpsampleOp":
        in_type: TensorType = input.type
        batch, channels, h, w = in_type.shape
        out_type = TensorType((batch, channels, h * factor, w * factor), in_type.element_type)
        return cls(
            name=cls.OPERATION_NAME,
            operands=[input],
            result_types=[out_type],
            attributes={"factor": factor},
        )

    @property
    def input(self) -> Value:
        return self.operand(0)


@register_operation
class FillOp(LinalgOp):
    """Produce a tensor filled with a constant (weights / zero initialisers)."""

    OPERATION_NAME = "linalg.fill"

    @classmethod
    def create(cls, shape: Sequence[int], value: float = 0.0, element_type: Type = f32) -> "FillOp":
        return cls(
            name=cls.OPERATION_NAME,
            result_types=[TensorType(shape, element_type)],
            attributes={"value": value},
        )

    def num_scalar_ops(self) -> int:
        return 0


@register_operation
class GenericOp(LinalgOp):
    """A structured op described only by iteration-space sizes and a MAC count.

    Used for operators without a dedicated named op; carries enough
    information for the intensity analysis and the lowering to loops.
    """

    OPERATION_NAME = "linalg.generic"

    @classmethod
    def create(
        cls,
        inputs: Sequence[Value],
        output_type: TensorType,
        iteration_space: Sequence[int],
        macs_per_iteration: int = 1,
        label: str = "generic",
    ) -> "GenericOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=list(inputs),
            result_types=[output_type],
            attributes={
                "iteration_space": tuple(iteration_space),
                "macs_per_iteration": macs_per_iteration,
                "label": label,
            },
        )

    def macs(self) -> int:
        space = self.get_attr("iteration_space", ())
        total = 1
        for size in space:
            total *= size
        return total * self.get_attr("macs_per_iteration", 1)


ELEMENTWISE_OP_NAMES = {
    "linalg.add",
    "linalg.mul",
    "linalg.relu",
    "linalg.batch_norm",
    "linalg.softmax",
}
