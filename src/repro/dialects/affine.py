"""affine dialect: loops with static bounds and affine memory accesses.

This is the main *control* IR HIDA operates on.  Loop bounds and steps are
compile-time integers (the affine restriction), and loads/stores carry an
:class:`~repro.dialects.affine_map.AffineMap` from the enclosing loop
induction variables to buffer subscripts, which enables the dependence and
connection analyses of HIDA-OPT.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..ir.core import Block, Operation, Value, register_operation
from ..ir.types import IndexType, MemRefType
from .affine_map import AffineMap

__all__ = [
    "AffineForOp",
    "AffineIfOp",
    "AffineYieldOp",
    "AffineLoadOp",
    "AffineStoreOp",
    "AffineApplyOp",
    "get_loop_band",
    "get_perfectly_nested_band",
    "enclosing_loops",
    "loop_nest_depth",
    "trip_count",
    "total_trip_count",
]


@register_operation
class AffineForOp(Operation):
    """``affine.for %i = lb to ub step s`` with constant bounds.

    Directive attributes (set by HLS transforms):

    * ``pipeline`` (bool) and ``target_ii`` (int) — loop pipelining;
    * ``unroll_factor`` (int) — full/partial unrolling applied to this loop;
    * ``parallel`` (bool) — the loop carries no dependence and can be
      unrolled freely;
    * ``point_loop`` (bool) — marks intra-tile loops created by tiling.
    """

    OPERATION_NAME = "affine.for"

    @classmethod
    def create(
        cls,
        lower_bound: int,
        upper_bound: int,
        step: int = 1,
        name_hint: Optional[str] = None,
    ) -> "AffineForOp":
        if step <= 0:
            raise ValueError(f"loop step must be positive, got {step}")
        op = cls(
            name=cls.OPERATION_NAME,
            attributes={
                "lower_bound": int(lower_bound),
                "upper_bound": int(upper_bound),
                "step": int(step),
            },
            num_regions=1,
        )
        body = op.regions[0].add_entry_block(arg_types=[IndexType()])
        body.arguments[0].name_hint = name_hint or "i"
        return op

    # ----------------------------------------------------------------- bounds
    @property
    def lower_bound(self) -> int:
        return self.get_attr("lower_bound")

    @property
    def upper_bound(self) -> int:
        return self.get_attr("upper_bound")

    @property
    def step(self) -> int:
        return self.get_attr("step")

    def set_bounds(self, lower: int, upper: int, step: Optional[int] = None) -> None:
        self.set_attr("lower_bound", int(lower))
        self.set_attr("upper_bound", int(upper))
        if step is not None:
            self.set_attr("step", int(step))

    @property
    def trip_count(self) -> int:
        span = self.upper_bound - self.lower_bound
        if span <= 0:
            return 0
        return math.ceil(span / self.step)

    @property
    def induction_variable(self) -> Value:
        return self.body.arguments[0]

    # ------------------------------------------------------------- directives
    @property
    def is_pipelined(self) -> bool:
        return bool(self.get_attr("pipeline", False))

    def set_pipeline(self, enabled: bool = True, target_ii: int = 1) -> None:
        self.set_attr("pipeline", enabled)
        self.set_attr("target_ii", int(target_ii))

    @property
    def target_ii(self) -> int:
        return int(self.get_attr("target_ii", 1))

    @property
    def unroll_factor(self) -> int:
        return int(self.get_attr("unroll_factor", 1))

    def set_unroll_factor(self, factor: int) -> None:
        self.set_attr("unroll_factor", int(factor))

    @property
    def is_parallel(self) -> bool:
        return bool(self.get_attr("parallel", False))

    def set_parallel(self, parallel: bool = True) -> None:
        self.set_attr("parallel", parallel)

    # ----------------------------------------------------------------- verify
    def verify(self) -> None:
        if self.step <= 0:
            raise ValueError("affine.for step must be positive")
        if not self.regions or self.regions[0].empty:
            raise ValueError("affine.for must have a body block")
        if not self.body.arguments:
            raise ValueError("affine.for body must have an induction variable")


@register_operation
class AffineIfOp(Operation):
    """``affine.if`` guarded by an affine condition over enclosing IVs."""

    OPERATION_NAME = "affine.if"

    @classmethod
    def create(
        cls,
        condition_map: AffineMap,
        operands: Sequence[Value] = (),
        with_else: bool = False,
    ) -> "AffineIfOp":
        op = cls(
            name=cls.OPERATION_NAME,
            operands=operands,
            attributes={"condition": condition_map},
            num_regions=2 if with_else else 1,
        )
        for region in op.regions:
            region.add_entry_block()
        return op

    @property
    def condition(self) -> AffineMap:
        return self.get_attr("condition")

    @property
    def then_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def else_block(self) -> Optional[Block]:
        return self.regions[1].entry_block if len(self.regions) > 1 else None


@register_operation
class AffineYieldOp(Operation):
    """Terminator of affine loop and if bodies."""

    OPERATION_NAME = "affine.yield"

    @classmethod
    def create(cls, operands: Sequence[Value] = ()) -> "AffineYieldOp":
        return cls(name=cls.OPERATION_NAME, operands=operands)


@register_operation
class AffineApplyOp(Operation):
    """Apply a single-result affine map to index operands."""

    OPERATION_NAME = "affine.apply"

    @classmethod
    def create(cls, map: AffineMap, operands: Sequence[Value]) -> "AffineApplyOp":
        if map.num_results != 1:
            raise ValueError("affine.apply requires a single-result map")
        return cls(
            name=cls.OPERATION_NAME,
            operands=operands,
            result_types=[IndexType()],
            attributes={"map": map},
        )

    @property
    def map(self) -> AffineMap:
        return self.get_attr("map")


class _AffineMemAccess(Operation):
    """Shared behaviour of affine load and store."""

    @property
    def access_map(self) -> AffineMap:
        return self.get_attr("map")

    def set_access_map(self, map: AffineMap) -> None:
        self.set_attr("map", map)

    @property
    def memref(self) -> Value:
        raise NotImplementedError

    @property
    def index_operands(self) -> Sequence[Value]:
        raise NotImplementedError

    def access_loop_positions(self) -> List[Optional[int]]:
        """For each subscript, the operand position of the single IV it uses."""
        return self.access_map.result_dim_positions()


@register_operation
class AffineLoadOp(_AffineMemAccess):
    """``affine.load %memref[map(ivs)]``."""

    OPERATION_NAME = "affine.load"

    @classmethod
    def create(
        cls,
        memref: Value,
        indices: Sequence[Value],
        map: Optional[AffineMap] = None,
    ) -> "AffineLoadOp":
        memref_type: MemRefType = memref.type
        access_map = map or AffineMap.identity(len(indices))
        return cls(
            name=cls.OPERATION_NAME,
            operands=[memref, *indices],
            result_types=[memref_type.element_type],
            attributes={"map": access_map},
        )

    @property
    def memref(self) -> Value:
        return self.operand(0)

    @property
    def index_operands(self) -> Sequence[Value]:
        return self.operands[1:]

    def verify(self) -> None:
        if self.access_map.num_dims != len(self.index_operands):
            raise ValueError(
                "affine.load access map dims do not match index operand count"
            )


@register_operation
class AffineStoreOp(_AffineMemAccess):
    """``affine.store %value, %memref[map(ivs)]``."""

    OPERATION_NAME = "affine.store"

    @classmethod
    def create(
        cls,
        value: Value,
        memref: Value,
        indices: Sequence[Value],
        map: Optional[AffineMap] = None,
    ) -> "AffineStoreOp":
        access_map = map or AffineMap.identity(len(indices))
        return cls(
            name=cls.OPERATION_NAME,
            operands=[value, memref, *indices],
            attributes={"map": access_map},
        )

    @property
    def value(self) -> Value:
        return self.operand(0)

    @property
    def memref(self) -> Value:
        return self.operand(1)

    @property
    def index_operands(self) -> Sequence[Value]:
        return self.operands[2:]

    def verify(self) -> None:
        if self.access_map.num_dims != len(self.index_operands):
            raise ValueError(
                "affine.store access map dims do not match index operand count"
            )


# ---------------------------------------------------------------------------
# Loop nest utilities
# ---------------------------------------------------------------------------


def enclosing_loops(op: Operation) -> List[AffineForOp]:
    """All affine.for loops enclosing ``op``, outermost first."""
    loops: List[AffineForOp] = []
    parent = op.parent_op
    while parent is not None:
        if isinstance(parent, AffineForOp):
            loops.append(parent)
        parent = parent.parent_op
    loops.reverse()
    return loops


def get_loop_band(root: AffineForOp) -> List[AffineForOp]:
    """The maximal loop band rooted at ``root``: root plus nested for-loops
    reachable by descending through single-loop bodies (ignoring yields)."""
    band = [root]
    current = root
    while True:
        inner_loops = [
            op for op in current.body.operations if isinstance(op, AffineForOp)
        ]
        if len(inner_loops) != 1:
            break
        current = inner_loops[0]
        band.append(current)
    return band


def get_perfectly_nested_band(root: AffineForOp) -> List[AffineForOp]:
    """The perfectly nested band rooted at ``root``.

    Descends while the body of the current loop contains exactly one loop and
    no other operations except terminators.
    """
    band = [root]
    current = root
    while True:
        body_ops = [
            op
            for op in current.body.operations
            if not isinstance(op, AffineYieldOp)
        ]
        if len(body_ops) != 1 or not isinstance(body_ops[0], AffineForOp):
            break
        current = body_ops[0]
        band.append(current)
    return band


def loop_nest_depth(op: Operation) -> int:
    """Maximum affine.for nesting depth inside ``op`` (inclusive)."""
    best = 0
    for nested in op.walk():
        if isinstance(nested, AffineForOp):
            depth = 1 + len(enclosing_loops(nested))
            # Only count loops enclosed within `op` itself.
            outer = [l for l in enclosing_loops(nested) if op.is_ancestor_of(l)]
            depth = 1 + len(outer)
            best = max(best, depth)
    return best


def trip_count(loop: AffineForOp) -> int:
    """Trip count of a single affine loop."""
    return loop.trip_count


def total_trip_count(op: Operation) -> int:
    """Product of trip counts of all loops inside ``op`` along the deepest nest.

    Used as a quick estimate of the iteration space size of a node.
    """
    loops = [nested for nested in op.walk() if isinstance(nested, AffineForOp)]
    if not loops:
        return 1
    # Iteration space = sum over innermost loops of product of enclosing trips.
    total = 0
    for loop in loops:
        inner_loops = [
            o for o in loop.body.operations if isinstance(o, AffineForOp)
        ]
        if inner_loops:
            continue  # not innermost
        product = loop.trip_count
        for outer in enclosing_loops(loop):
            if op.is_ancestor_of(outer):
                product *= max(outer.trip_count, 1)
        total += product
    return max(total, 1)
