"""scf dialect: structured control flow with arbitrary SSA bounds.

Only the operations needed by the frontends and lowering paths are modelled:
``scf.for``, ``scf.if`` and ``scf.yield``.  HIDA mostly operates on the
affine dialect; scf is kept to represent programs whose bounds are not
affine (and as a lowering target in tests exercising the dialect stack of
Figure 2 in the paper).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.core import Block, Operation, Value, register_operation
from ..ir.types import IndexType, Type

__all__ = ["ForOp", "IfOp", "YieldOp", "WhileOp"]


@register_operation
class ForOp(Operation):
    """``scf.for %i = %lb to %ub step %step`` with a single-block body."""

    OPERATION_NAME = "scf.for"

    @classmethod
    def create(
        cls,
        lower_bound: Value,
        upper_bound: Value,
        step: Value,
        iter_args: Sequence[Value] = (),
    ) -> "ForOp":
        op = cls(
            name=cls.OPERATION_NAME,
            operands=[lower_bound, upper_bound, step, *iter_args],
            result_types=[v.type for v in iter_args],
            num_regions=1,
        )
        arg_types: list[Type] = [IndexType(), *[v.type for v in iter_args]]
        op.regions[0].add_entry_block(arg_types=arg_types)
        op.body.arguments[0].name_hint = "iv"
        return op

    @property
    def lower_bound(self) -> Value:
        return self.operand(0)

    @property
    def upper_bound(self) -> Value:
        return self.operand(1)

    @property
    def step(self) -> Value:
        return self.operand(2)

    @property
    def induction_variable(self) -> Value:
        return self.body.arguments[0]

    @property
    def iter_args(self) -> Sequence[Value]:
        return self.body.arguments[1:]

    def verify(self) -> None:
        if self.num_operands < 3:
            raise ValueError("scf.for expects lower bound, upper bound and step")


@register_operation
class IfOp(Operation):
    """``scf.if %cond`` with a then-region and an optional else-region."""

    OPERATION_NAME = "scf.if"

    @classmethod
    def create(
        cls,
        condition: Value,
        result_types: Sequence[Type] = (),
        with_else: bool = False,
    ) -> "IfOp":
        op = cls(
            name=cls.OPERATION_NAME,
            operands=[condition],
            result_types=result_types,
            num_regions=2 if with_else else 1,
        )
        for region in op.regions:
            region.add_entry_block()
        return op

    @property
    def condition(self) -> Value:
        return self.operand(0)

    @property
    def then_block(self) -> Block:
        return self.regions[0].entry_block

    @property
    def else_block(self) -> Optional[Block]:
        if len(self.regions) > 1:
            return self.regions[1].entry_block
        return None


@register_operation
class WhileOp(Operation):
    """``scf.while`` with a condition region and a body region."""

    OPERATION_NAME = "scf.while"

    @classmethod
    def create(cls, init_args: Sequence[Value] = ()) -> "WhileOp":
        op = cls(
            name=cls.OPERATION_NAME,
            operands=init_args,
            result_types=[v.type for v in init_args],
            num_regions=2,
        )
        for region in op.regions:
            region.add_entry_block(arg_types=[v.type for v in init_args])
        return op


@register_operation
class YieldOp(Operation):
    """Region terminator yielding values to the parent op."""

    OPERATION_NAME = "scf.yield"

    @classmethod
    def create(cls, operands: Sequence[Value] = ()) -> "YieldOp":
        return cls(name=cls.OPERATION_NAME, operands=operands)
