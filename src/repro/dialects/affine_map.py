"""Affine expressions and (semi-)affine maps.

HIDA represents loop bounds, memory access functions, buffer partition
fashions and data layouts as affine maps; the partition/layout attributes of
a ``buffer`` op are "designed to be converted to semi-affine maps".  This
module provides a small symbolic affine expression language with
simplification, evaluation, and composition, sufficient for dependence
analysis and for the permutation/scaling-map construction of HIDA-OPT.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "AffineExpr",
    "AffineDimExpr",
    "AffineSymbolExpr",
    "AffineConstantExpr",
    "AffineBinaryExpr",
    "AffineMap",
    "dim",
    "symbol",
    "constant",
]

Number = Union[int, Fraction]


class AffineExpr:
    """Base class of affine expressions over dims (d0, d1, ...) and symbols."""

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: "ExprLike") -> "AffineExpr":
        return _binary("add", self, _wrap(other))

    def __radd__(self, other: "ExprLike") -> "AffineExpr":
        return _binary("add", _wrap(other), self)

    def __sub__(self, other: "ExprLike") -> "AffineExpr":
        return _binary("add", self, _binary("mul", _wrap(other), constant(-1)))

    def __rsub__(self, other: "ExprLike") -> "AffineExpr":
        return _binary("add", _wrap(other), _binary("mul", self, constant(-1)))

    def __mul__(self, other: "ExprLike") -> "AffineExpr":
        return _binary("mul", self, _wrap(other))

    def __rmul__(self, other: "ExprLike") -> "AffineExpr":
        return _binary("mul", _wrap(other), self)

    def __floordiv__(self, other: "ExprLike") -> "AffineExpr":
        return _binary("floordiv", self, _wrap(other))

    def __mod__(self, other: "ExprLike") -> "AffineExpr":
        return _binary("mod", self, _wrap(other))

    def ceildiv(self, other: "ExprLike") -> "AffineExpr":
        return _binary("ceildiv", self, _wrap(other))

    # --------------------------------------------------------------- queries
    def evaluate(
        self,
        dims: Sequence[Number] = (),
        symbols: Sequence[Number] = (),
    ) -> Number:
        """Evaluate the expression with concrete dim/symbol values."""
        raise NotImplementedError

    def used_dims(self) -> Tuple[int, ...]:
        """Sorted tuple of dim positions referenced by this expression."""
        dims: set = set()
        self._collect_dims(dims)
        return tuple(sorted(dims))

    def _collect_dims(self, out: set) -> None:
        raise NotImplementedError

    def coefficient_of(self, dim_position: int) -> Fraction:
        """Linear coefficient of dim ``dim_position`` (0 if absent/non-linear)."""
        base = self.evaluate(
            [0] * (dim_position + 1 + max((0,) + self.used_dims())),
        )
        probe_dims = [0] * (dim_position + 1 + max((0,) + self.used_dims()))
        probe_dims[dim_position] = 1
        return Fraction(self.evaluate(probe_dims)) - Fraction(base)

    def is_constant(self) -> bool:
        return not self.used_dims() and not self._uses_symbols()

    def _uses_symbols(self) -> bool:
        return False

    def __str__(self) -> str:  # pragma: no cover - overridden
        return "affine_expr"

    def __repr__(self) -> str:
        return str(self)


ExprLike = Union[AffineExpr, int]


def _wrap(value: ExprLike) -> AffineExpr:
    if isinstance(value, AffineExpr):
        return value
    return AffineConstantExpr(int(value))


@dataclasses.dataclass(frozen=True)
class AffineDimExpr(AffineExpr):
    """A dimension (typically a loop induction variable), ``d<position>``."""

    position: int

    def evaluate(self, dims: Sequence[Number] = (), symbols: Sequence[Number] = ()) -> Number:
        return dims[self.position]

    def _collect_dims(self, out: set) -> None:
        out.add(self.position)

    def __str__(self) -> str:
        return f"d{self.position}"


@dataclasses.dataclass(frozen=True)
class AffineSymbolExpr(AffineExpr):
    """A symbol (a runtime-invariant parameter), ``s<position>``."""

    position: int

    def evaluate(self, dims: Sequence[Number] = (), symbols: Sequence[Number] = ()) -> Number:
        return symbols[self.position]

    def _collect_dims(self, out: set) -> None:
        return None

    def _uses_symbols(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"s{self.position}"


@dataclasses.dataclass(frozen=True)
class AffineConstantExpr(AffineExpr):
    """An integer constant."""

    value: int

    def evaluate(self, dims: Sequence[Number] = (), symbols: Sequence[Number] = ()) -> Number:
        return self.value

    def _collect_dims(self, out: set) -> None:
        return None

    def __str__(self) -> str:
        return str(self.value)


_BINARY_SYMBOLS = {
    "add": "+",
    "mul": "*",
    "floordiv": "floordiv",
    "ceildiv": "ceildiv",
    "mod": "mod",
}


@dataclasses.dataclass(frozen=True)
class AffineBinaryExpr(AffineExpr):
    """A binary affine (or semi-affine, for div/mod) expression."""

    kind: str
    lhs: AffineExpr
    rhs: AffineExpr

    def evaluate(self, dims: Sequence[Number] = (), symbols: Sequence[Number] = ()) -> Number:
        lhs = self.lhs.evaluate(dims, symbols)
        rhs = self.rhs.evaluate(dims, symbols)
        if self.kind == "add":
            return lhs + rhs
        if self.kind == "mul":
            return lhs * rhs
        if self.kind == "floordiv":
            return int(lhs) // int(rhs)
        if self.kind == "ceildiv":
            return -(-int(lhs) // int(rhs))
        if self.kind == "mod":
            return int(lhs) % int(rhs)
        raise ValueError(f"unknown affine binary kind {self.kind!r}")

    def _collect_dims(self, out: set) -> None:
        self.lhs._collect_dims(out)
        self.rhs._collect_dims(out)

    def _uses_symbols(self) -> bool:
        return self.lhs._uses_symbols() or self.rhs._uses_symbols()

    def __str__(self) -> str:
        return f"({self.lhs} {_BINARY_SYMBOLS[self.kind]} {self.rhs})"


def _binary(kind: str, lhs: AffineExpr, rhs: AffineExpr) -> AffineExpr:
    """Create a binary expression with light constant folding."""
    if isinstance(lhs, AffineConstantExpr) and isinstance(rhs, AffineConstantExpr):
        return AffineConstantExpr(
            int(AffineBinaryExpr(kind, lhs, rhs).evaluate())
        )
    if kind == "add":
        if isinstance(lhs, AffineConstantExpr) and lhs.value == 0:
            return rhs
        if isinstance(rhs, AffineConstantExpr) and rhs.value == 0:
            return lhs
    if kind == "mul":
        for a, b in ((lhs, rhs), (rhs, lhs)):
            if isinstance(a, AffineConstantExpr):
                if a.value == 0:
                    return AffineConstantExpr(0)
                if a.value == 1:
                    return b
    return AffineBinaryExpr(kind, lhs, rhs)


def dim(position: int) -> AffineDimExpr:
    """Shorthand for :class:`AffineDimExpr`."""
    return AffineDimExpr(position)


def symbol(position: int) -> AffineSymbolExpr:
    """Shorthand for :class:`AffineSymbolExpr`."""
    return AffineSymbolExpr(position)


def constant(value: int) -> AffineConstantExpr:
    """Shorthand for :class:`AffineConstantExpr`."""
    return AffineConstantExpr(value)


@dataclasses.dataclass(frozen=True)
class AffineMap:
    """A function mapping ``num_dims`` dims and ``num_symbols`` symbols to results."""

    num_dims: int
    num_symbols: int
    results: Tuple[AffineExpr, ...]

    def __init__(
        self,
        num_dims: int,
        num_symbols: int,
        results: Sequence[ExprLike],
    ) -> None:
        object.__setattr__(self, "num_dims", num_dims)
        object.__setattr__(self, "num_symbols", num_symbols)
        object.__setattr__(
            self, "results", tuple(_wrap(r) for r in results)
        )

    # ---------------------------------------------------------- constructors
    @classmethod
    def identity(cls, rank: int) -> "AffineMap":
        return cls(rank, 0, [dim(i) for i in range(rank)])

    @classmethod
    def constant_map(cls, values: Sequence[int]) -> "AffineMap":
        return cls(0, 0, [constant(v) for v in values])

    @classmethod
    def permutation(cls, order: Sequence[int]) -> "AffineMap":
        return cls(len(order), 0, [dim(i) for i in order])

    @classmethod
    def from_callable(cls, rank: int, fn) -> "AffineMap":
        """Build a map from a Python callable over dim expressions."""
        exprs = fn(*[dim(i) for i in range(rank)])
        if isinstance(exprs, AffineExpr):
            exprs = [exprs]
        return cls(rank, 0, list(exprs))

    # --------------------------------------------------------------- queries
    @property
    def num_results(self) -> int:
        return len(self.results)

    def evaluate(
        self,
        dims: Sequence[Number] = (),
        symbols: Sequence[Number] = (),
    ) -> Tuple[Number, ...]:
        if len(dims) != self.num_dims:
            raise ValueError(
                f"map expects {self.num_dims} dims, got {len(dims)}"
            )
        return tuple(r.evaluate(dims, symbols) for r in self.results)

    def is_identity(self) -> bool:
        if self.num_results != self.num_dims:
            return False
        return all(
            isinstance(r, AffineDimExpr) and r.position == i
            for i, r in enumerate(self.results)
        )

    def is_permutation(self) -> bool:
        positions = []
        for r in self.results:
            if not isinstance(r, AffineDimExpr):
                return False
            positions.append(r.position)
        return sorted(positions) == list(range(self.num_dims))

    def used_dims(self) -> Tuple[int, ...]:
        dims_used: set = set()
        for r in self.results:
            r._collect_dims(dims_used)
        return tuple(sorted(dims_used))

    def result_dim_positions(self) -> List[Optional[int]]:
        """For each result, the single dim it depends on (or None).

        Used by the connection analysis of HIDA-OPT to derive permutation
        maps: a result like ``d2 * 2`` maps to dim position 2.
        """
        positions: List[Optional[int]] = []
        for r in self.results:
            used = r.used_dims()
            positions.append(used[0] if len(used) == 1 else None)
        return positions

    def result_strides(self) -> List[Fraction]:
        """For each result, the linear coefficient of its single used dim.

        Results that use no dim or more than one dim report stride 0.
        """
        strides: List[Fraction] = []
        for r in self.results:
            used = r.used_dims()
            if len(used) != 1:
                strides.append(Fraction(0))
                continue
            pos = used[0]
            zeros = [0] * self.num_dims
            probe = [0] * self.num_dims
            probe[pos] = 1
            base = Fraction(r.evaluate(zeros))
            strides.append(Fraction(r.evaluate(probe)) - base)
        return strides

    # ------------------------------------------------------------- transform
    def compose(self, other: "AffineMap") -> "AffineMap":
        """Return ``self ∘ other`` (apply other first, then self)."""
        if self.num_dims != other.num_results:
            raise ValueError(
                f"cannot compose: {self.num_dims} dims vs {other.num_results} results"
            )
        substituted = [
            _substitute(r, other.results) for r in self.results
        ]
        return AffineMap(other.num_dims, other.num_symbols, substituted)

    def __str__(self) -> str:
        dims_str = ", ".join(f"d{i}" for i in range(self.num_dims))
        syms_str = ", ".join(f"s{i}" for i in range(self.num_symbols))
        syms = f"[{syms_str}]" if self.num_symbols else ""
        res = ", ".join(str(r) for r in self.results)
        return f"({dims_str}){syms} -> ({res})"


def _substitute(expr: AffineExpr, dim_replacements: Sequence[AffineExpr]) -> AffineExpr:
    if isinstance(expr, AffineDimExpr):
        return dim_replacements[expr.position]
    if isinstance(expr, (AffineConstantExpr, AffineSymbolExpr)):
        return expr
    if isinstance(expr, AffineBinaryExpr):
        return _binary(
            expr.kind,
            _substitute(expr.lhs, dim_replacements),
            _substitute(expr.rhs, dim_replacements),
        )
    raise TypeError(f"unknown affine expression {expr!r}")
