"""arith dialect: elementary scalar arithmetic and comparison operations.

These ops are the *payload* IR at the bottom of loop nests.  The HIDA
intensity analysis counts them to derive each node's computation intensity,
and the resource model maps them to DSP/LUT costs.
"""

from __future__ import annotations

from typing import Optional

from ..ir.core import Operation, Value, register_operation
from ..ir.types import Type, i1

__all__ = [
    "BinaryOp",
    "AddFOp",
    "SubFOp",
    "MulFOp",
    "DivFOp",
    "AddIOp",
    "SubIOp",
    "MulIOp",
    "DivIOp",
    "MaxFOp",
    "MinFOp",
    "MaxIOp",
    "MinIOp",
    "CmpOp",
    "SelectOp",
    "CastOp",
    "ExpOp",
    "SqrtOp",
    "NegFOp",
    "MACOp",
    "is_compute_op",
    "is_multiply_accumulate",
]


class BinaryOp(Operation):
    """Base class for binary elementwise scalar ops."""

    OPERATION_NAME = "arith.binary"

    @classmethod
    def create(cls, lhs: Value, rhs: Value, result_type: Optional[Type] = None):
        return cls(
            name=cls.OPERATION_NAME,
            operands=[lhs, rhs],
            result_types=[result_type or lhs.type],
        )

    @property
    def lhs(self) -> Value:
        return self.operand(0)

    @property
    def rhs(self) -> Value:
        return self.operand(1)

    def verify(self) -> None:
        if self.num_operands != 2:
            raise ValueError(f"{self.name} expects 2 operands")


class UnaryOp(Operation):
    """Base class for unary elementwise scalar ops."""

    OPERATION_NAME = "arith.unary"

    @classmethod
    def create(cls, operand: Value, result_type: Optional[Type] = None):
        return cls(
            name=cls.OPERATION_NAME,
            operands=[operand],
            result_types=[result_type or operand.type],
        )


@register_operation
class AddFOp(BinaryOp):
    OPERATION_NAME = "arith.addf"


@register_operation
class SubFOp(BinaryOp):
    OPERATION_NAME = "arith.subf"


@register_operation
class MulFOp(BinaryOp):
    OPERATION_NAME = "arith.mulf"


@register_operation
class DivFOp(BinaryOp):
    OPERATION_NAME = "arith.divf"


@register_operation
class AddIOp(BinaryOp):
    OPERATION_NAME = "arith.addi"


@register_operation
class SubIOp(BinaryOp):
    OPERATION_NAME = "arith.subi"


@register_operation
class MulIOp(BinaryOp):
    OPERATION_NAME = "arith.muli"


@register_operation
class DivIOp(BinaryOp):
    OPERATION_NAME = "arith.divi"


@register_operation
class MaxFOp(BinaryOp):
    OPERATION_NAME = "arith.maxf"


@register_operation
class MinFOp(BinaryOp):
    OPERATION_NAME = "arith.minf"


@register_operation
class MaxIOp(BinaryOp):
    OPERATION_NAME = "arith.maxi"


@register_operation
class MinIOp(BinaryOp):
    OPERATION_NAME = "arith.mini"


@register_operation
class NegFOp(UnaryOp):
    OPERATION_NAME = "arith.negf"


@register_operation
class ExpOp(UnaryOp):
    OPERATION_NAME = "math.exp"


@register_operation
class SqrtOp(UnaryOp):
    OPERATION_NAME = "math.sqrt"


@register_operation
class CmpOp(Operation):
    """Comparison producing an ``i1``; ``predicate`` is e.g. ``"lt"``, ``"ge"``."""

    OPERATION_NAME = "arith.cmp"

    @classmethod
    def create(cls, predicate: str, lhs: Value, rhs: Value) -> "CmpOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[lhs, rhs],
            result_types=[i1],
            attributes={"predicate": predicate},
        )

    @property
    def predicate(self) -> str:
        return self.get_attr("predicate")


@register_operation
class SelectOp(Operation):
    """``result = condition ? true_value : false_value``."""

    OPERATION_NAME = "arith.select"

    @classmethod
    def create(cls, condition: Value, true_value: Value, false_value: Value) -> "SelectOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[condition, true_value, false_value],
            result_types=[true_value.type],
        )


@register_operation
class CastOp(Operation):
    """Numeric cast between integer/float/index types."""

    OPERATION_NAME = "arith.cast"

    @classmethod
    def create(cls, operand: Value, result_type: Type) -> "CastOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[operand],
            result_types=[result_type],
        )


@register_operation
class MACOp(Operation):
    """Fused multiply-accumulate ``acc + lhs * rhs`` (one DSP on FPGA)."""

    OPERATION_NAME = "arith.mac"

    @classmethod
    def create(cls, lhs: Value, rhs: Value, acc: Value) -> "MACOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[lhs, rhs, acc],
            result_types=[acc.type],
        )


_COMPUTE_OP_NAMES = {
    "arith.addf",
    "arith.subf",
    "arith.mulf",
    "arith.divf",
    "arith.addi",
    "arith.subi",
    "arith.muli",
    "arith.divi",
    "arith.maxf",
    "arith.minf",
    "arith.maxi",
    "arith.mini",
    "arith.negf",
    "arith.mac",
    "math.exp",
    "math.sqrt",
    "arith.select",
    "arith.cmp",
}

_MULTIPLY_OP_NAMES = {"arith.mulf", "arith.muli", "arith.divf", "arith.divi", "arith.mac"}


def is_compute_op(op: Operation) -> bool:
    """True for ops that the intensity analysis counts as computation."""
    return op.name in _COMPUTE_OP_NAMES


def is_multiply_accumulate(op: Operation) -> bool:
    """True for ops that consume DSP blocks (multiplies, divides, MACs)."""
    return op.name in _MULTIPLY_OP_NAMES
