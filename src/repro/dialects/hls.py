"""HLS directive and primitive IR (ScaleHLS-style Directive/Primitive ops).

HIDA reuses the directive-level IR of ScaleHLS to express HLS pragmas such as
loop pipelining, loop unrolling and array partitioning.  In this
reproduction, pipelining and unrolling live as attributes of
``affine.for`` (see :class:`~repro.dialects.affine.AffineForOp`); this module
defines the array partition / interface directives and explicit primitive
ops that have no natural home on a loop.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from ..ir.core import Operation, Value, register_operation

__all__ = [
    "PartitionKind",
    "ArrayPartition",
    "ArrayPartitionOp",
    "InterfaceOp",
    "DataflowDirectiveOp",
    "partition_of",
    "set_partition",
    "bank_count",
]


class PartitionKind:
    """Array partition fashions supported by HLS tools."""

    NONE = "none"
    CYCLIC = "cyclic"
    BLOCK = "block"
    COMPLETE = "complete"

    ALL = (NONE, CYCLIC, BLOCK, COMPLETE)


@dataclasses.dataclass(frozen=True)
class ArrayPartition:
    """Per-dimension partition fashion and factor of a buffer.

    ``kinds[i]`` and ``factors[i]`` describe dimension ``i``; the number of
    memory banks instantiated is the product of the factors (a ``complete``
    partition of a dimension uses the dimension size as its factor).
    """

    kinds: Tuple[str, ...]
    factors: Tuple[int, ...]

    def __init__(self, kinds: Sequence[str], factors: Sequence[int]) -> None:
        kinds = tuple(kinds)
        factors = tuple(int(f) for f in factors)
        if len(kinds) != len(factors):
            raise ValueError("partition kinds and factors must have equal length")
        for kind in kinds:
            if kind not in PartitionKind.ALL:
                raise ValueError(f"unknown partition kind {kind!r}")
        for factor in factors:
            if factor < 1:
                raise ValueError(f"partition factors must be >= 1, got {factor}")
        object.__setattr__(self, "kinds", kinds)
        object.__setattr__(self, "factors", factors)

    @classmethod
    def none(cls, rank: int) -> "ArrayPartition":
        return cls([PartitionKind.NONE] * rank, [1] * rank)

    @property
    def rank(self) -> int:
        return len(self.factors)

    @property
    def banks(self) -> int:
        total = 1
        for factor in self.factors:
            total *= max(factor, 1)
        return total

    def with_dim(self, dim: int, kind: str, factor: int) -> "ArrayPartition":
        kinds = list(self.kinds)
        factors = list(self.factors)
        kinds[dim] = kind
        factors[dim] = factor
        return ArrayPartition(kinds, factors)

    def __str__(self) -> str:
        inner = ", ".join(
            f"{k}:{f}" for k, f in zip(self.kinds, self.factors)
        )
        return f"partition<[{inner}]>"


@register_operation
class ArrayPartitionOp(Operation):
    """Explicitly request an array partition on a memref value."""

    OPERATION_NAME = "hls.array_partition"

    @classmethod
    def create(cls, memref: Value, partition: ArrayPartition) -> "ArrayPartitionOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[memref],
            attributes={"partition": partition},
        )

    @property
    def partition(self) -> ArrayPartition:
        return self.get_attr("partition")


@register_operation
class InterfaceOp(Operation):
    """Declare the HLS interface of a function argument (AXI, BRAM, stream)."""

    OPERATION_NAME = "hls.interface"

    @classmethod
    def create(
        cls,
        value: Value,
        mode: str = "m_axi",
        bundle: str = "gmem",
        latency: int = 64,
    ) -> "InterfaceOp":
        return cls(
            name=cls.OPERATION_NAME,
            operands=[value],
            attributes={"mode": mode, "bundle": bundle, "latency": latency},
        )

    @property
    def mode(self) -> str:
        return self.get_attr("mode")

    @property
    def latency(self) -> int:
        return self.get_attr("latency", 64)


@register_operation
class DataflowDirectiveOp(Operation):
    """Marks a region of a function as executing under the HLS dataflow pragma."""

    OPERATION_NAME = "hls.dataflow"

    @classmethod
    def create(cls) -> "DataflowDirectiveOp":
        op = cls(name=cls.OPERATION_NAME, num_regions=1)
        op.regions[0].add_entry_block()
        return op


# ---------------------------------------------------------------------------
# Partition annotations carried on memref values.
#
# A value has no attribute dictionary, so partitions are attached to the
# operation producing it (alloc, buffer, function argument's owner), keyed by
# result index; helpers below hide this detail.
# ---------------------------------------------------------------------------

_PARTITION_ATTR = "partitions"


def set_partition(value: Value, partition: ArrayPartition) -> None:
    """Attach a partition annotation to the producer of ``value``."""
    owner = value.defining_op
    if owner is None:
        # Block argument: store on the parent op of the owning block.
        block = value.owner
        owner = block.parent_op
        if owner is None:
            raise ValueError("cannot attach a partition to a detached value")
        key = f"arg{value.index}"
    else:
        key = f"result{value.index}"
    table = dict(owner.get_attr(_PARTITION_ATTR, {}))
    table[key] = partition
    owner.set_attr(_PARTITION_ATTR, table)


def partition_of(value: Value) -> Optional[ArrayPartition]:
    """Partition annotation of ``value``, or None if unpartitioned."""
    owner = value.defining_op
    if owner is None:
        block = value.owner
        owner = block.parent_op
        if owner is None:
            return None
        key = f"arg{value.index}"
    else:
        key = f"result{value.index}"
    table = owner.get_attr(_PARTITION_ATTR, {})
    return table.get(key)


def bank_count(value: Value) -> int:
    """Number of memory banks required by ``value``'s partition (1 if none)."""
    partition = partition_of(value)
    return partition.banks if partition else 1
