"""tensor dialect: a few operations on immutable tensor values."""

from __future__ import annotations

from typing import Sequence

from ..ir.core import Operation, Value, register_operation
from ..ir.types import MemRefType, TensorType, Type, f32

__all__ = ["EmptyOp", "FromMemrefOp", "ToMemrefOp", "ExtractSliceOp"]


@register_operation
class EmptyOp(Operation):
    """Produce an uninitialized tensor of a given shape."""

    OPERATION_NAME = "tensor.empty"

    @classmethod
    def create(cls, shape: Sequence[int], element_type: Type = f32) -> "EmptyOp":
        return cls(
            name=cls.OPERATION_NAME,
            result_types=[TensorType(shape, element_type)],
        )


@register_operation
class FromMemrefOp(Operation):
    """View the contents of a memref as an immutable tensor."""

    OPERATION_NAME = "tensor.from_memref"

    @classmethod
    def create(cls, memref: Value) -> "FromMemrefOp":
        memref_type: MemRefType = memref.type
        return cls(
            name=cls.OPERATION_NAME,
            operands=[memref],
            result_types=[TensorType(memref_type.shape, memref_type.element_type)],
        )

    @property
    def memref(self) -> Value:
        return self.operand(0)


@register_operation
class ToMemrefOp(Operation):
    """Materialize a tensor into a (newly allocated) memref."""

    OPERATION_NAME = "tensor.to_memref"

    @classmethod
    def create(cls, tensor: Value, memory_space: str = "bram") -> "ToMemrefOp":
        tensor_type: TensorType = tensor.type
        return cls(
            name=cls.OPERATION_NAME,
            operands=[tensor],
            result_types=[
                MemRefType(tensor_type.shape, tensor_type.element_type, memory_space)
            ],
        )

    @property
    def tensor(self) -> Value:
        return self.operand(0)


@register_operation
class ExtractSliceOp(Operation):
    """Extract a rectangular slice (tile) of a tensor."""

    OPERATION_NAME = "tensor.extract_slice"

    @classmethod
    def create(
        cls,
        source: Value,
        offsets: Sequence[int],
        sizes: Sequence[int],
    ) -> "ExtractSliceOp":
        source_type: TensorType = source.type
        return cls(
            name=cls.OPERATION_NAME,
            operands=[source],
            result_types=[TensorType(sizes, source_type.element_type)],
            attributes={"offsets": tuple(offsets), "sizes": tuple(sizes)},
        )
