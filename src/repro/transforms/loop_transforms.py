"""Loop-level transformations: unrolling, tiling, pipelining, permutation.

These play the role of the ScaleHLS loop/directive transforms that HIDA
reuses.  Unrolling and pipelining are expressed primarily as directives
(attributes consumed by the QoR estimator and the HLS C++ emitter); literal
unrolling is available for small factors and is exercised by the tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dialects.affine import AffineForOp, AffineYieldOp, get_perfectly_nested_band
from ..dialects.affine_map import AffineMap, dim
from ..dialects.affine import AffineApplyOp
from ..ir.builder import Builder
from ..ir.core import Operation, Value

__all__ = [
    "annotate_unroll",
    "unroll_loop",
    "pipeline_loop",
    "pipeline_innermost_loops",
    "tile_loop",
    "tile_band",
    "normalize_band_unroll",
    "loop_bands_of",
    "innermost_loops_of",
]


def loop_bands_of(op: Operation) -> List[List[AffineForOp]]:
    """Top-level loop bands directly inside ``op``'s regions (not nested ones)."""
    bands: List[List[AffineForOp]] = []
    for region in op.regions:
        for block in region.blocks:
            for child in block.operations:
                if isinstance(child, AffineForOp):
                    bands.append(get_perfectly_nested_band(child))
    return bands


def innermost_loops_of(op: Operation) -> List[AffineForOp]:
    """All innermost affine loops nested in ``op``."""
    result = []
    for loop in op.walk():
        if isinstance(loop, AffineForOp):
            has_inner = any(
                isinstance(child, AffineForOp) for child in loop.body.operations
            )
            if not has_inner:
                result.append(loop)
    return result


def annotate_unroll(loop: AffineForOp, factor: int) -> None:
    """Record an unroll directive on ``loop`` (clamped to its trip count)."""
    factor = max(1, min(int(factor), max(loop.trip_count, 1)))
    loop.set_unroll_factor(factor)


def unroll_loop(loop: AffineForOp, factor: int, literal: bool = False) -> AffineForOp:
    """Unroll ``loop`` by ``factor``.

    With ``literal=False`` (default) only the directive attribute is set,
    matching how downstream HLS tools consume unroll pragmas.  With
    ``literal=True`` the loop body is physically replicated ``factor`` times
    and the loop step is scaled, which is used in tests and small kernels.
    """
    annotate_unroll(loop, factor)
    if not literal:
        return loop
    factor = loop.unroll_factor
    if factor <= 1:
        return loop
    body = loop.body
    original_ops = [
        op for op in body.operations if not isinstance(op, AffineYieldOp)
    ]
    iv = loop.induction_variable
    for copy_index in range(1, factor):
        builder = Builder.at_end(body)
        # shifted_iv = iv + copy_index * step
        apply_op = builder.insert(
            AffineApplyOp.create(
                AffineMap(1, 0, [dim(0) + copy_index * loop.step]), [iv]
            )
        )
        value_map: Dict[Value, Value] = {iv: apply_op.result()}
        for op in original_ops:
            builder.insert(op.clone(value_map))
    loop.set_bounds(loop.lower_bound, loop.upper_bound, loop.step * factor)
    loop.set_unroll_factor(1)
    return loop


def pipeline_loop(loop: AffineForOp, target_ii: int = 1) -> None:
    """Apply the loop-pipeline directive to ``loop``."""
    loop.set_pipeline(True, target_ii)


def pipeline_innermost_loops(op: Operation, target_ii: int = 1) -> int:
    """Pipeline every innermost loop nested in ``op``; returns the count."""
    loops = innermost_loops_of(op)
    for loop in loops:
        pipeline_loop(loop, target_ii)
    return len(loops)


def tile_loop(loop: AffineForOp, tile_size: int) -> Optional[AffineForOp]:
    """Tile one loop: the loop becomes the tile loop (stepping by the tile
    size) and a new point loop is created inside it.

    Returns the newly created point loop, or None when the tile size does not
    divide the loop into more than one tile.
    """
    tile_size = int(tile_size)
    if tile_size <= 0:
        raise ValueError("tile size must be positive")
    trip = loop.trip_count
    if tile_size >= trip or tile_size < 1:
        return None
    original_step = loop.step
    body = loop.body
    original_ops = [
        op for op in body.operations if not isinstance(op, AffineYieldOp)
    ]
    # The original loop becomes the tile loop.
    loop.set_bounds(loop.lower_bound, loop.upper_bound, original_step * tile_size)
    # Create the point loop and move the body into it.
    builder = Builder.at_end(body)
    point_loop = builder.insert(
        AffineForOp.create(0, tile_size * original_step, original_step, name_hint="pt")
    )
    point_loop.set_attr("point_loop", True)
    for op in original_ops:
        op.detach()
        point_loop.body.append(op)
    # iv_combined = tile_iv + point_iv
    inner_builder = Builder.at_start(point_loop.body)
    combined = inner_builder.insert(
        AffineApplyOp.create(
            AffineMap(2, 0, [dim(0) + dim(1)]),
            [loop.induction_variable, point_loop.induction_variable],
        )
    )
    loop.induction_variable.replace_uses_if(
        combined.result(),
        lambda user: user is not combined and point_loop.is_ancestor_of(user),
    )
    return point_loop


def tile_band(band: Sequence[AffineForOp], tile_sizes: Sequence[int]) -> List[AffineForOp]:
    """Tile each loop of a band; returns the created point loops."""
    point_loops = []
    for loop, size in zip(band, tile_sizes):
        point = tile_loop(loop, size)
        if point is not None:
            point_loops.append(point)
    return point_loops


def normalize_band_unroll(
    band: Sequence[AffineForOp], unroll_factors: Sequence[int]
) -> List[int]:
    """Annotate a band with unroll factors, clamping each to its trip count.

    Returns the clamped factors actually applied.
    """
    applied = []
    for loop, factor in zip(band, unroll_factors):
        annotate_unroll(loop, factor)
        applied.append(loop.unroll_factor)
    return applied
