"""Loop-level transformations: unrolling, tiling, pipelining, permutation.

These play the role of the ScaleHLS loop/directive transforms that HIDA
reuses.  Unrolling and pipelining are expressed primarily as directives
(attributes consumed by the QoR estimator and the HLS C++ emitter); literal
unrolling is available for small factors and is exercised by the tests.

Every transform can be gated on the dependence engine: pass ``check=True``
(or call :func:`permute_band`, which always checks) and an illegal request
raises :class:`repro.analysis.legality.TransformLegalityError` instead of
producing IR whose directives no schedule could honour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dialects.affine import (
    AffineApplyOp,
    AffineForOp,
    AffineYieldOp,
    get_perfectly_nested_band,
)
from ..dialects.affine_map import AffineMap, dim
from ..ir.builder import Builder
from ..ir.core import Operation, Value

__all__ = [
    "annotate_unroll",
    "innermost_loops_of",
    "loop_bands_of",
    "normalize_band_unroll",
    "permute_band",
    "pipeline_innermost_loops",
    "pipeline_loop",
    "tile_band",
    "tile_loop",
    "unroll_loop",
]


def loop_bands_of(op: Operation) -> List[List[AffineForOp]]:
    """Top-level loop bands directly inside ``op``'s regions (not nested ones)."""
    bands: List[List[AffineForOp]] = []
    for region in op.regions:
        for block in region.blocks:
            for child in block.operations:
                if isinstance(child, AffineForOp):
                    bands.append(get_perfectly_nested_band(child))
    return bands


def innermost_loops_of(op: Operation) -> List[AffineForOp]:
    """All innermost affine loops nested in ``op``."""
    result = []
    for loop in op.walk():
        if isinstance(loop, AffineForOp):
            has_inner = any(
                isinstance(child, AffineForOp) for child in loop.body.operations
            )
            if not has_inner:
                result.append(loop)
    return result


def annotate_unroll(loop: AffineForOp, factor: int, check: bool = False) -> None:
    """Record an unroll directive on ``loop`` (clamped to its trip count).

    With ``check=True`` the request is verified against the dependence
    engine first and an illegal factor raises ``TransformLegalityError``.
    """
    factor = max(1, min(int(factor), max(loop.trip_count, 1)))
    if check and factor > 1:
        from ..analysis.legality import legal_unroll

        legal_unroll(loop, factor).raise_if_illegal()
    loop.set_unroll_factor(factor)


def unroll_loop(
    loop: AffineForOp, factor: int, literal: bool = False, check: bool = False
) -> AffineForOp:
    """Unroll ``loop`` by ``factor``.

    With ``literal=False`` (default) only the directive attribute is set,
    matching how downstream HLS tools consume unroll pragmas.  With
    ``literal=True`` the loop body is physically replicated ``factor`` times
    and the loop step is scaled, which is used in tests and small kernels.
    When the factor does not divide the trip count, the trailing iterations
    the widened step cannot cover are split into an epilogue loop after the
    unrolled one (found by the translation-validation fuzzer: without the
    epilogue the last group runs past the upper bound).
    ``check=True`` verifies the factor against carried dependences first.
    """
    annotate_unroll(loop, factor, check=check)
    if not literal:
        return loop
    factor = loop.unroll_factor
    if factor <= 1:
        return loop
    body = loop.body
    original_ops = [
        op for op in body.operations if not isinstance(op, AffineYieldOp)
    ]
    iv = loop.induction_variable
    remainder = loop.trip_count % factor
    if remainder:
        split = loop.lower_bound + (loop.trip_count - remainder) * loop.step
        epilogue = AffineForOp.create(
            split, loop.upper_bound, loop.step, name_hint=iv.name_hint
        )
        tail_builder = Builder.at_end(epilogue.body)
        tail_map: Dict[Value, Value] = {iv: epilogue.induction_variable}
        for op in original_ops:
            tail_builder.insert(op.clone(tail_map))
        parent = loop.parent_block
        assert parent is not None
        parent.insert(parent.operations.index(loop) + 1, epilogue)
        loop.set_bounds(loop.lower_bound, split, loop.step)
    for copy_index in range(1, factor):
        builder = Builder.at_end(body)
        # shifted_iv = iv + copy_index * step
        apply_op = builder.insert(
            AffineApplyOp.create(
                AffineMap(1, 0, [dim(0) + copy_index * loop.step]), [iv]
            )
        )
        value_map: Dict[Value, Value] = {iv: apply_op.result()}
        for op in original_ops:
            builder.insert(op.clone(value_map))
    loop.set_bounds(loop.lower_bound, loop.upper_bound, loop.step * factor)
    loop.set_unroll_factor(1)
    return loop


def pipeline_loop(loop: AffineForOp, target_ii: int = 1, check: bool = False) -> None:
    """Apply the loop-pipeline directive to ``loop``.

    With ``check=True`` a ``target_ii`` below the loop's recurrence MII
    raises ``TransformLegalityError`` (the hida parallelize pass instead
    *clamps* the II up to the bound).
    """
    if check:
        from ..analysis.legality import legal_pipeline_ii

        legal_pipeline_ii(loop, target_ii).raise_if_illegal()
    loop.set_pipeline(True, target_ii)


def pipeline_innermost_loops(op: Operation, target_ii: int = 1) -> int:
    """Pipeline every innermost loop nested in ``op``; returns the count."""
    loops = innermost_loops_of(op)
    for loop in loops:
        pipeline_loop(loop, target_ii)
    return len(loops)


def permute_band(
    band: Sequence[AffineForOp], permutation: Sequence[int], check: bool = True
) -> List[AffineForOp]:
    """Reorder a perfect band so new level ``j`` is old level ``permutation[j]``.

    The loops stay in place structurally; their bounds, steps, directive
    attributes and induction-variable uses are exchanged (two-phase swap, so
    cyclic permutations work).  Returns the band in its new level order,
    i.e. ``band`` itself — the outermost op is still the outermost op.

    ``check=True`` (default) verifies legality first: a permutation that
    could reverse a dependence raises ``TransformLegalityError``.
    """
    loops = list(band)
    order = [int(i) for i in permutation]
    if sorted(order) != list(range(len(loops))):
        raise ValueError(
            f"{order} is not a permutation of 0..{len(loops) - 1}"
        )
    if check:
        from ..analysis.legality import legal_permutation

        legal_permutation(loops, order).raise_if_illegal()
    if order == list(range(len(loops))):
        return loops

    bounds = [(l.lower_bound, l.upper_bound, l.step) for l in loops]
    attrs = [dict(l.attributes) for l in loops]
    hints = [l.induction_variable.name_hint for l in loops]
    # Phase 1: route every old IV's uses through a placeholder so swaps
    # cannot collide (IVs are block arguments and stay physically in place).
    placeholders: List[Value] = []
    for loop in loops:
        placeholder = loop.body.add_argument(loop.induction_variable.type)
        loop.induction_variable.replace_uses_if(placeholder, lambda _user: True)
        placeholders.append(placeholder)
    # Phase 2: old level p moves to new level order.index(p): its iteration
    # values are now produced by the loop at that new position.
    for new_level, old_level in enumerate(order):
        lb, ub, step = bounds[old_level]
        loops[new_level].set_bounds(lb, ub, step)
        loops[new_level].attributes.clear()
        loops[new_level].attributes.update(attrs[old_level])
        loops[new_level].induction_variable.name_hint = hints[old_level]
        placeholders[old_level].replace_uses_if(
            loops[new_level].induction_variable, lambda _user: True
        )
    for loop in loops:
        loop.body.erase_argument(len(loop.body.arguments) - 1)
    return loops


def tile_loop(loop: AffineForOp, tile_size: int) -> Optional[AffineForOp]:
    """Tile one loop: the loop becomes the tile loop (stepping by the tile
    size) and a new point loop is created inside it.

    Returns the newly created point loop, or None when the tile size does not
    divide the loop into more than one tile.
    """
    tile_size = int(tile_size)
    if tile_size <= 0:
        raise ValueError("tile size must be positive")
    trip = loop.trip_count
    if tile_size >= trip or tile_size < 1:
        return None
    original_step = loop.step
    body = loop.body
    original_ops = [
        op for op in body.operations if not isinstance(op, AffineYieldOp)
    ]
    # The original loop becomes the tile loop.
    loop.set_bounds(loop.lower_bound, loop.upper_bound, original_step * tile_size)
    # Create the point loop and move the body into it.
    builder = Builder.at_end(body)
    point_loop = builder.insert(
        AffineForOp.create(0, tile_size * original_step, original_step, name_hint="pt")
    )
    point_loop.set_attr("point_loop", True)
    for op in original_ops:
        op.detach()
        point_loop.body.append(op)
    # iv_combined = tile_iv + point_iv
    inner_builder = Builder.at_start(point_loop.body)
    combined = inner_builder.insert(
        AffineApplyOp.create(
            AffineMap(2, 0, [dim(0) + dim(1)]),
            [loop.induction_variable, point_loop.induction_variable],
        )
    )
    loop.induction_variable.replace_uses_if(
        combined.result(),
        lambda user: user is not combined and point_loop.is_ancestor_of(user),
    )
    return point_loop


def tile_band(band: Sequence[AffineForOp], tile_sizes: Sequence[int]) -> List[AffineForOp]:
    """Tile each loop of a band; returns the created point loops."""
    point_loops = []
    for loop, size in zip(band, tile_sizes):
        point = tile_loop(loop, size)
        if point is not None:
            point_loops.append(point)
    return point_loops


def normalize_band_unroll(
    band: Sequence[AffineForOp], unroll_factors: Sequence[int]
) -> List[int]:
    """Annotate a band with unroll factors, clamping each to its trip count.

    Returns the clamped factors actually applied.
    """
    applied = []
    for loop, factor in zip(band, unroll_factors):
        annotate_unroll(loop, factor)
        applied.append(loop.unroll_factor)
    return applied
