"""Lowering of linalg (tensor-level) operations to affine loop nests.

This conversion performs bufferization (tensors become memrefs) and expands
every named linalg op into an affine loop nest with explicit loads/stores,
mirroring MLIR's linalg-to-affine-loops path.  It runs after Functional
dataflow construction so the loop nests stay inside their enclosing
``hida.task`` regions; the Structural lowering then converts tasks into
nodes over the generated buffers.

Weight tensors produced by ``linalg.fill`` become module-level globals
placed in external memory (``memref.get_global``) rather than compute
loops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import linalg
from ..dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ..dialects.affine_map import AffineExpr, AffineMap, constant, dim
from ..dialects.arith import AddFOp, ExpOp, MaxFOp, MulFOp
from ..dialects.dataflow import YieldOp
from ..dialects.memref import AllocOp, GetGlobalOp
from ..ir.builder import Builder, InsertionPoint
from ..ir.builtin import ConstantOp, FuncOp, ModuleOp, ReturnOp
from ..ir.core import Value
from ..ir.passes import AnalysisManager, Pass
from ..ir.types import FunctionType, MemRefType, TensorType

__all__ = ["LowerLinalgToAffinePass", "lower_linalg_to_affine"]


class _LoweringContext:
    """Tracks the tensor-value to memref-value mapping during lowering."""

    def __init__(self, func: FuncOp) -> None:
        self.func = func
        self.memref_of: Dict[int, Value] = {}
        self._global_count = 0
        #: Insertion point for buffer allocations: the top of the function so
        #: buffers are visible to every task that produces or consumes them.
        self.alloc_builder = Builder.at_start(func.entry_block)

    def map(self, tensor: Value, memref: Value) -> None:
        self.memref_of[id(tensor)] = memref

    def lookup(self, tensor: Value) -> Value:
        """Resolve a tensor to its buffer, looking through task/dispatch results."""
        if id(tensor) in self.memref_of:
            return self.memref_of[id(tensor)]
        if isinstance(tensor.type, MemRefType):
            return tensor  # already a buffer (e.g. rewritten container results)
        defining = tensor.defining_op
        if defining is not None and defining.regions:
            # A task or dispatch result: chase the corresponding yielded value.
            terminator = defining.regions[0].entry_block.last_op
            if terminator is not None and terminator.num_operands > getattr(tensor, "index", -1):
                yielded = terminator.operand(tensor.index)
                resolved = self.lookup(yielded)
                self.memref_of[id(tensor)] = resolved
                return resolved
        raise KeyError(f"no buffer allocated for tensor {tensor!r}")

    def next_global_name(self, label: str) -> str:
        self._global_count += 1
        return f"{label}_{self._global_count}"


def _alloc_buffer(
    builder: Builder, tensor_type: TensorType, name_hint: str, memory_space: str = "bram"
) -> Value:
    memref_type = MemRefType(tensor_type.shape, tensor_type.element_type, memory_space)
    alloc = builder.insert(AllocOp.create(memref_type, name_hint=name_hint))
    return alloc.result()


def _build_loop_nest(
    builder: Builder, bounds: Sequence[int], names: Sequence[str]
) -> Tuple[List[AffineForOp], List[Value], Builder]:
    """Create a perfect loop nest; returns loops, IVs and the innermost builder."""
    loops: List[AffineForOp] = []
    ivs: List[Value] = []
    current = builder
    for bound, name in zip(bounds, names):
        loop = current.insert(AffineForOp.create(0, max(int(bound), 1), name_hint=name))
        loops.append(loop)
        ivs.append(loop.induction_variable)
        current = Builder.at_end(loop.body)
    return loops, ivs, current


def _access(
    builder: Builder,
    memref: Value,
    ivs: Sequence[Value],
    exprs: Sequence[AffineExpr],
) -> Value:
    """Emit an affine.load with the access map given by ``exprs`` over ``ivs``."""
    access_map = AffineMap(len(ivs), 0, list(exprs))
    op = builder.insert(AffineLoadOp.create(memref, list(ivs), access_map))
    return op.result()


def _store(
    builder: Builder,
    value: Value,
    memref: Value,
    ivs: Sequence[Value],
    exprs: Sequence[AffineExpr],
) -> None:
    access_map = AffineMap(len(ivs), 0, list(exprs))
    builder.insert(AffineStoreOp.create(value, memref, list(ivs), access_map))


def _lower_conv2d(op: linalg.Conv2DOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    input_buf = ctx.lookup(op.input)
    weight_buf = ctx.lookup(op.weight)
    n, oc, oh, ow = op.output_type.shape
    _, ic, kh, kw = op.weight.type.shape
    stride, padding = op.stride, op.padding
    loops, ivs, inner = _build_loop_nest(
        builder, (n, oc, oh, ow, ic, kh, kw), ("n", "oc", "oh", "ow", "ic", "kh", "kw")
    )
    d = [dim(i) for i in range(7)]
    in_val = _access(
        inner,
        input_buf,
        ivs,
        [d[0], d[4], d[2] * stride + d[5] - padding, d[3] * stride + d[6] - padding],
    )
    w_val = _access(inner, weight_buf, ivs, [d[1], d[4], d[5], d[6]])
    out_val = _access(inner, out, ivs, [d[0], d[1], d[2], d[3]])
    product = inner.insert(MulFOp.create(in_val, w_val)).result()
    acc = inner.insert(AddFOp.create(out_val, product)).result()
    _store(inner, acc, out, ivs, [d[0], d[1], d[2], d[3]])
    # Reduction loops (ic, kh, kw) carry a dependence and cannot be trivially
    # parallelized; the spatial loops can.
    for loop in loops[:4]:
        loop.set_parallel(True)


def _lower_depthwise(op: linalg.DepthwiseConv2DOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    input_buf = ctx.lookup(op.input)
    weight_buf = ctx.lookup(op.weight)
    n, c, oh, ow = op.output_type.shape
    _, _, kh, kw = op.weight.type.shape
    stride, padding = op.stride, op.padding
    loops, ivs, inner = _build_loop_nest(
        builder, (n, c, oh, ow, kh, kw), ("n", "c", "oh", "ow", "kh", "kw")
    )
    d = [dim(i) for i in range(6)]
    in_val = _access(
        inner,
        input_buf,
        ivs,
        [d[0], d[1], d[2] * stride + d[4] - padding, d[3] * stride + d[5] - padding],
    )
    w_val = _access(inner, weight_buf, ivs, [d[1], constant(0), d[4], d[5]])
    out_val = _access(inner, out, ivs, [d[0], d[1], d[2], d[3]])
    product = inner.insert(MulFOp.create(in_val, w_val)).result()
    acc = inner.insert(AddFOp.create(out_val, product)).result()
    _store(inner, acc, out, ivs, [d[0], d[1], d[2], d[3]])
    for loop in loops[:4]:
        loop.set_parallel(True)


def _lower_pool(op, out: Value, ctx: _LoweringContext, builder: Builder, is_max: bool) -> None:
    input_buf = ctx.lookup(op.input)
    n, c, oh, ow = op.output_type.shape
    kernel, stride = op.kernel, op.stride
    padding = op.get_attr("padding", 0)
    loops, ivs, inner = _build_loop_nest(
        builder, (n, c, oh, ow, kernel, kernel), ("n", "c", "oh", "ow", "kh", "kw")
    )
    d = [dim(i) for i in range(6)]
    in_val = _access(
        inner,
        input_buf,
        ivs,
        [d[0], d[1], d[2] * stride + d[4] - padding, d[3] * stride + d[5] - padding],
    )
    out_val = _access(inner, out, ivs, [d[0], d[1], d[2], d[3]])
    if is_max:
        new_val = inner.insert(MaxFOp.create(out_val, in_val)).result()
    else:
        scale = inner.insert(
            ConstantOp.create(1.0 / float(kernel * kernel), in_val.type)
        ).result()
        scaled = inner.insert(MulFOp.create(in_val, scale)).result()
        new_val = inner.insert(AddFOp.create(out_val, scaled)).result()
    _store(inner, new_val, out, ivs, [d[0], d[1], d[2], d[3]])
    for loop in loops[:4]:
        loop.set_parallel(True)


def _lower_linear(op: linalg.LinearOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    input_buf = ctx.lookup(op.input)
    weight_buf = ctx.lookup(op.weight)
    n, of = op.output_type.shape
    in_features = op.input.type.shape[1]
    loops, ivs, inner = _build_loop_nest(builder, (n, of, in_features), ("n", "of", "if"))
    d = [dim(i) for i in range(3)]
    in_val = _access(inner, input_buf, ivs, [d[0], d[2]])
    w_val = _access(inner, weight_buf, ivs, [d[1], d[2]])
    out_val = _access(inner, out, ivs, [d[0], d[1]])
    product = inner.insert(MulFOp.create(in_val, w_val)).result()
    acc = inner.insert(AddFOp.create(out_val, product)).result()
    _store(inner, acc, out, ivs, [d[0], d[1]])
    for loop in loops[:2]:
        loop.set_parallel(True)


def _lower_matmul(op: linalg.MatmulOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    lhs_buf = ctx.lookup(op.lhs)
    rhs_buf = ctx.lookup(op.rhs)
    m, n = op.output_type.shape
    k = op.lhs.type.shape[1]
    loops, ivs, inner = _build_loop_nest(builder, (m, n, k), ("i", "j", "k"))
    d = [dim(i) for i in range(3)]
    lhs_val = _access(inner, lhs_buf, ivs, [d[0], d[2]])
    rhs_val = _access(inner, rhs_buf, ivs, [d[2], d[1]])
    out_val = _access(inner, out, ivs, [d[0], d[1]])
    product = inner.insert(MulFOp.create(lhs_val, rhs_val)).result()
    acc = inner.insert(AddFOp.create(out_val, product)).result()
    _store(inner, acc, out, ivs, [d[0], d[1]])
    for loop in loops[:2]:
        loop.set_parallel(True)


def _lower_elementwise(op: linalg.LinalgOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    shape = op.output_type.shape
    names = [f"d{i}" for i in range(len(shape))]
    loops, ivs, inner = _build_loop_nest(builder, shape, names)
    d = [dim(i) for i in range(len(shape))]
    identity = list(d)

    if isinstance(op, (linalg.AddOp, linalg.MulOp)):
        lhs = _access(inner, ctx.lookup(op.lhs), ivs, identity)
        rhs = _access(inner, ctx.lookup(op.rhs), ivs, identity)
        op_cls = AddFOp if isinstance(op, linalg.AddOp) else MulFOp
        result = inner.insert(op_cls.create(lhs, rhs)).result()
    elif isinstance(op, linalg.ReluOp):
        value = _access(inner, ctx.lookup(op.input), ivs, identity)
        zero = inner.insert(ConstantOp.create(0.0, value.type)).result()
        result = inner.insert(MaxFOp.create(value, zero)).result()
    elif isinstance(op, linalg.SoftmaxOp):
        value = _access(inner, ctx.lookup(op.input), ivs, identity)
        result = inner.insert(ExpOp.create(value)).result()
    elif isinstance(op, linalg.BatchNormOp):
        value = _access(inner, ctx.lookup(op.input), ivs, identity)
        channel_dim = d[1] if len(shape) >= 2 else d[0]
        scale = _access(inner, ctx.lookup(op.operand(1)), ivs, [channel_dim])
        shift = _access(inner, ctx.lookup(op.operand(2)), ivs, [channel_dim])
        scaled = inner.insert(MulFOp.create(value, scale)).result()
        result = inner.insert(AddFOp.create(scaled, shift)).result()
    else:  # pragma: no cover - guarded by dispatch table
        raise NotImplementedError(f"unsupported elementwise op {op.name}")
    _store(inner, result, out, ivs, identity)
    for loop in loops:
        loop.set_parallel(True)


def _linearize(exprs: Sequence[AffineExpr], shape: Sequence[int]) -> AffineExpr:
    """Row-major linearization of multi-dimensional index expressions."""
    flat: AffineExpr = constant(0)
    for expr, size in zip(exprs, shape):
        flat = flat * int(size) + expr
    return flat


def _delinearize(flat: AffineExpr, shape: Sequence[int]) -> List[AffineExpr]:
    """Row-major de-linearization into per-dimension index expressions."""
    exprs: List[AffineExpr] = []
    remaining = flat
    strides: List[int] = []
    stride = 1
    for size in reversed(shape):
        strides.append(stride)
        stride *= int(size)
    strides.reverse()
    for i, size in enumerate(shape):
        expr = (flat // strides[i]) % int(size) if i > 0 else flat // strides[i]
        exprs.append(expr)
    return exprs


def _lower_reshape(op: linalg.ReshapeOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    input_buf = ctx.lookup(op.input)
    in_shape = op.input.type.shape
    out_shape = op.output_type.shape
    total = op.output_type.num_elements
    loops, ivs, inner = _build_loop_nest(builder, (total,), ("flat",))
    flat = dim(0)
    in_exprs = _delinearize(flat, in_shape)
    out_exprs = _delinearize(flat, out_shape)
    value = _access(inner, input_buf, ivs, in_exprs)
    _store(inner, value, out, ivs, out_exprs)
    loops[0].set_parallel(True)


def _lower_concat(op: linalg.ConcatOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    axis = op.get_attr("axis", 1)
    offset = 0
    for operand in op.operands:
        in_shape = operand.type.shape
        names = [f"d{i}" for i in range(len(in_shape))]
        loops, ivs, inner = _build_loop_nest(builder, in_shape, names)
        d = [dim(i) for i in range(len(in_shape))]
        out_exprs: List[AffineExpr] = list(d)
        out_exprs[axis] = d[axis] + offset
        value = _access(inner, ctx.lookup(operand), ivs, list(d))
        _store(inner, value, out, ivs, out_exprs)
        offset += in_shape[axis]
        for loop in loops:
            loop.set_parallel(True)


def _lower_upsample(op: linalg.UpsampleOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    factor = op.get_attr("factor", 2)
    out_shape = op.output_type.shape
    names = [f"d{i}" for i in range(len(out_shape))]
    loops, ivs, inner = _build_loop_nest(builder, out_shape, names)
    d = [dim(i) for i in range(len(out_shape))]
    in_exprs = [d[0], d[1], d[2] // factor, d[3] // factor]
    value = _access(inner, ctx.lookup(op.input), ivs, in_exprs)
    _store(inner, value, out, ivs, list(d))
    for loop in loops:
        loop.set_parallel(True)


def _lower_generic(op: linalg.GenericOp, out: Value, ctx: _LoweringContext, builder: Builder) -> None:
    space = op.get_attr("iteration_space", op.output_type.shape)
    names = [f"d{i}" for i in range(len(space))]
    loops, ivs, inner = _build_loop_nest(builder, space, names)
    d = [dim(i) for i in range(len(space))]
    out_rank = op.output_type.rank
    out_exprs = list(d[:out_rank])
    acc = None
    for operand in op.operands:
        rank = operand.type.rank
        value = _access(inner, ctx.lookup(operand), ivs, list(d[:rank]))
        acc = value if acc is None else inner.insert(MulFOp.create(acc, value)).result()
    if acc is None:
        acc = inner.insert(ConstantOp.create(0.0, op.output_type.element_type)).result()
    _store(inner, acc, out, ivs, out_exprs)


def _lower_op(op: linalg.LinalgOp, ctx: _LoweringContext, builder: Builder) -> Optional[Value]:
    """Lower one linalg op; returns the output buffer value, or None to skip."""
    if isinstance(op, linalg.FillOp):
        # Weights / constants become external globals, not compute loops.
        tensor_type: TensorType = op.result().type
        memref_type = MemRefType(tensor_type.shape, tensor_type.element_type, "dram")
        global_op = ctx.alloc_builder.insert(
            GetGlobalOp.create(ctx.next_global_name(op.get_attr("label", "weight")), memref_type)
        )
        ctx.map(op.result(), global_op.result())
        return global_op.result()

    out_buffer = _alloc_buffer(
        ctx.alloc_builder, op.output_type, f"{op.name.split('.')[-1]}_out"
    )
    if isinstance(op, linalg.Conv2DOp):
        _lower_conv2d(op, out_buffer, ctx, builder)
    elif isinstance(op, linalg.DepthwiseConv2DOp):
        _lower_depthwise(op, out_buffer, ctx, builder)
    elif isinstance(op, linalg.MaxPool2DOp):
        _lower_pool(op, out_buffer, ctx, builder, is_max=True)
    elif isinstance(op, linalg.AvgPool2DOp):
        _lower_pool(op, out_buffer, ctx, builder, is_max=False)
    elif isinstance(op, linalg.LinearOp):
        _lower_linear(op, out_buffer, ctx, builder)
    elif isinstance(op, linalg.MatmulOp):
        _lower_matmul(op, out_buffer, ctx, builder)
    elif isinstance(op, (linalg.AddOp, linalg.MulOp, linalg.ReluOp, linalg.SoftmaxOp, linalg.BatchNormOp)):
        _lower_elementwise(op, out_buffer, ctx, builder)
    elif isinstance(op, linalg.ReshapeOp):
        _lower_reshape(op, out_buffer, ctx, builder)
    elif isinstance(op, linalg.ConcatOp):
        _lower_concat(op, out_buffer, ctx, builder)
    elif isinstance(op, linalg.UpsampleOp):
        _lower_upsample(op, out_buffer, ctx, builder)
    elif isinstance(op, linalg.GenericOp):
        _lower_generic(op, out_buffer, ctx, builder)
    else:
        raise NotImplementedError(f"no affine lowering for {op.name}")
    ctx.map(op.result(), out_buffer)
    return out_buffer


def lower_linalg_to_affine(module: ModuleOp) -> ModuleOp:
    """Lower all linalg ops (in tasks or at function level) to affine loops.

    Tensors are bufferized: function tensor arguments become dram memrefs,
    intermediate tensors become on-chip allocations, and weights become
    external globals.  ``hida.task`` regions are preserved — the loops
    replace the linalg ops inside them.
    """
    for func in module.functions:
        ctx = _LoweringContext(func)
        # Rewrite function signature: tensor args -> dram memrefs.
        new_inputs = []
        for arg in func.entry_block.arguments:
            if isinstance(arg.type, TensorType):
                arg.type = MemRefType(arg.type.shape, arg.type.element_type, "dram")
            new_inputs.append(arg.type)
        func_type: FunctionType = func.function_type
        func.set_attr("function_type", FunctionType(new_inputs, ()))
        for arg in func.entry_block.arguments:
            ctx.map(arg, arg)

        # Collect linalg ops in program order (including those inside tasks).
        linalg_ops = [
            op for op in func.walk() if isinstance(op, linalg.LinalgOp)
        ]
        for op in linalg_ops:
            builder = Builder(InsertionPoint.before(op))
            _lower_op(op, ctx, builder)

        # Task/dispatch results were tensors; rewrite their consumers to use
        # the corresponding buffers, then drop the results and yields.
        container_ops = [
            op
            for op in func.walk()
            if op.name in ("hida.task", "hida.dispatch") and op.num_results
        ]
        for container in container_ops:
            for result in container.results:
                if result.has_uses:
                    result.replace_all_uses_with(ctx.lookup(result))
        for op in func.walk():
            if isinstance(op, (YieldOp, ReturnOp)) and op.num_operands:
                op.set_operands([])
        for container in container_ops:
            container.results = []
        # Erase the original linalg ops (in reverse order so uses vanish first).
        for op in reversed(linalg_ops):
            op.erase()
    return module


class LowerLinalgToAffinePass(Pass):
    """Pass wrapper around :func:`lower_linalg_to_affine`."""

    name = "lower-linalg-to-affine"

    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        lower_linalg_to_affine(module)
