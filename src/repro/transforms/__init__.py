"""repro.transforms — generic loop and bufferization transforms."""

from .array_partition import (
    access_partition_demand,
    partition_buffers_in,
    partition_factors_of_value,
    partition_for_accesses,
)
from .canonicalize import (
    CanonicalizePass,
    eliminate_dead_code,
    simplify_dispatch_hierarchy,
)
from .linalg_to_affine import LowerLinalgToAffinePass, lower_linalg_to_affine
from .loop_transforms import (
    annotate_unroll,
    innermost_loops_of,
    loop_bands_of,
    normalize_band_unroll,
    pipeline_innermost_loops,
    pipeline_loop,
    tile_band,
    tile_loop,
    unroll_loop,
)

__all__ = [
    "access_partition_demand",
    "partition_buffers_in",
    "partition_factors_of_value",
    "partition_for_accesses",
    "CanonicalizePass",
    "eliminate_dead_code",
    "simplify_dispatch_hierarchy",
    "LowerLinalgToAffinePass",
    "lower_linalg_to_affine",
    "annotate_unroll",
    "innermost_loops_of",
    "loop_bands_of",
    "normalize_band_unroll",
    "pipeline_innermost_loops",
    "pipeline_loop",
    "tile_band",
    "tile_loop",
    "unroll_loop",
]
