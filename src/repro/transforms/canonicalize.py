"""Canonicalization: dead code elimination and dataflow hierarchy cleanup."""

from __future__ import annotations


from ..dialects.dataflow import DispatchOp, TaskOp, YieldOp
from ..ir.builtin import FuncOp, ModuleOp
from ..ir.core import Operation
from ..ir.passes import AnalysisManager, Pass

__all__ = [
    "eliminate_dead_code",
    "simplify_dispatch_hierarchy",
    "CanonicalizePass",
]

#: Operations that have observable effects and must never be removed even if
#: their results are unused.
_SIDE_EFFECT_OPS = {
    "affine.store",
    "memref.store",
    "memref.copy",
    "memref.dealloc",
    "func.return",
    "affine.yield",
    "scf.yield",
    "hida.yield",
    "hida.stream_write",
    "hls.array_partition",
    "hls.interface",
    "hida.pack",
    "hida.bundle",
}


def _has_side_effects(op: Operation) -> bool:
    if op.name in _SIDE_EFFECT_OPS:
        return True
    # Ops with regions may contain side-effecting ops.
    return any(
        nested is not op and nested.name in _SIDE_EFFECT_OPS
        for nested in op.walk()
    )


def eliminate_dead_code(top: Operation, max_iterations: int = 8) -> int:
    """Erase ops whose results are unused and that have no side effects.

    Returns the number of erased operations.
    """
    erased_total = 0
    for _ in range(max_iterations):
        erased = 0
        for op in list(top.walk()):
            if op is top or op.parent is None:
                continue
            if isinstance(op, (FuncOp, ModuleOp)):
                continue
            if any(result.has_uses for result in op.results):
                continue
            if _has_side_effects(op):
                continue
            op.erase()
            erased += 1
        erased_total += erased
        if not erased:
            break
    return erased_total


def simplify_dispatch_hierarchy(dispatch: DispatchOp) -> None:
    """Canonicalize the dispatch/task hierarchy.

    A task whose body contains only a single nested task (plus the yield) is
    flattened: the inner task's contents are inlined into the outer task.
    A dispatch containing a single task keeps its structure (it still marks a
    legal dataflow region), matching Algorithm 2 line 10.
    """
    changed = True
    while changed:
        changed = False
        for task in dispatch.walk_ops(TaskOp):
            payload = task.payload_ops()
            if len(payload) == 1 and isinstance(payload[0], TaskOp):
                inner: TaskOp = payload[0]
                inner_yield = inner.yield_op
                yielded = list(inner_yield.operands) if inner_yield else []
                for op in list(inner.body.operations):
                    if isinstance(op, YieldOp):
                        continue
                    op.detach()
                    op.move_before(inner)
                if inner.num_results:
                    inner.replace_all_uses_with(yielded)
                inner.erase()
                changed = True
                break


class CanonicalizePass(Pass):
    """Module-level canonicalization: DCE plus dispatch simplification."""

    name = "canonicalize"

    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        for dispatch in module.walk_ops(DispatchOp):
            simplify_dispatch_hierarchy(dispatch)
        eliminate_dead_code(module)
