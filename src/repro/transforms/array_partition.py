"""Array partitioning driven by loop unroll factors and access maps.

Array partitioning divides a buffer into banks so that unrolled loop bodies
can access multiple elements per cycle.  Following the HIDA approach, the
partition factor of a buffer dimension is derived from the unroll factors of
the loops indexing that dimension, scaled by the access stride (a stride-2
access with unroll 4 touches a range of 8 elements per cycle).

The resulting :class:`~repro.dialects.hls.ArrayPartition` is attached to the
buffer (``hida.buffer`` attribute or value annotation) and consumed by the
resource model to compute BRAM bank counts (Table 6 of the paper).

With ``strict=True`` the chosen partition is verified against the
dependence engine's bank-conflict model
(:func:`repro.analysis.legality.partition_bank_conflicts`): a partition
whose same-cycle access set still collides in one bank raises
``TransformLegalityError`` instead of silently under-provisioning ports.
"""

from __future__ import annotations

import contextlib
import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ..dialects.dataflow import BufferOp, NodeOp
from ..dialects.hls import ArrayPartition, PartitionKind, partition_of, set_partition
from ..ir.core import Block, BlockArgument, Operation, Value
from ..ir.types import MemRefType

__all__ = [
    "access_partition_demand",
    "partition_for_accesses",
    "partition_buffers_in",
    "partition_factors_of_value",
]

AffineAccess = Union[AffineLoadOp, AffineStoreOp]


def _buffer_shape(buffer: Value) -> Tuple[int, ...]:
    buffer_type = buffer.type
    if isinstance(buffer_type, MemRefType):
        return tuple(int(dim) for dim in buffer_type.shape)
    shape = getattr(buffer_type, "shape", ())
    return tuple(int(dim) for dim in shape)


def _loop_unroll_product_for_dim(
    access: AffineAccess, dim_position: Optional[int], stride: float
) -> int:
    """Partition demand of one buffer dimension for one access.

    ``dim_position`` is the index-operand position driving that dimension; the
    demand is the unroll factor of the loop owning that IV times the access
    stride magnitude (rounded up).
    """
    if dim_position is None:
        return 1
    index_operands = list(access.index_operands)
    if dim_position >= len(index_operands):
        return 1
    iv = index_operands[dim_position]
    owner_block = iv.owner
    loop = owner_block.parent_op if isinstance(owner_block, Block) else None
    if not isinstance(loop, AffineForOp):
        return 1
    factor = loop.unroll_factor
    stride_mag = abs(float(stride)) if stride else 1.0
    return max(1, math.ceil(factor * max(stride_mag, 1.0)))


def access_partition_demand(access: AffineAccess, rank: int) -> List[int]:
    """Per-dimension partition demand of a single affine load/store."""
    access_map = access.access_map
    positions = access_map.result_dim_positions()
    strides = access_map.result_strides()
    demand: List[int] = []
    for d in range(rank):
        if d < len(positions):
            demand.append(
                _loop_unroll_product_for_dim(access, positions[d], float(strides[d]))
            )
        else:
            demand.append(1)
    return demand


def partition_for_accesses(
    buffer: Value, accesses: Sequence[AffineAccess], strict: bool = False
) -> ArrayPartition:
    """Combine the demands of all accesses into one partition for ``buffer``.

    The per-dimension factor is the maximum demand over all accesses; cyclic
    partitioning is used (it matches unrolled innermost access patterns) and
    factors are clamped to the dimension size.

    ``strict=True`` additionally verifies the clamped factors against the
    bank-conflict model and raises ``TransformLegalityError`` when the
    unrolled access set of some dimension still exceeds one bank's ports.
    """
    shape = _buffer_shape(buffer)
    rank = len(shape)
    factors = [1] * rank
    for access in accesses:
        demand = access_partition_demand(access, rank)
        for d in range(rank):
            factors[d] = max(factors[d], demand[d])
    factors = [min(f, max(int(s), 1)) for f, s in zip(factors, shape)]
    if strict:
        from ..analysis.legality import (
            TransformLegalityError,
            partition_bank_conflicts,
        )

        conflicts = partition_bank_conflicts(buffer, list(accesses), factors)
        if conflicts:
            raise TransformLegalityError(
                "array partition",
                f"clamped factors {factors} leave a bank conflict: "
                f"{conflicts[0].describe()}",
            )
    kinds = [
        PartitionKind.CYCLIC if f > 1 else PartitionKind.NONE for f in factors
    ]
    return ArrayPartition(kinds, factors)


def _accesses_of(
    buffer: Value, within: Optional[Operation] = None
) -> List[AffineAccess]:
    accesses: List[AffineAccess] = []
    for user in buffer.users:
        if isinstance(user, (AffineLoadOp, AffineStoreOp)) and (
            within is None or within.is_ancestor_of(user)
        ):
            accesses.append(user)
    return accesses


def partition_factors_of_value(buffer: Value) -> Tuple[int, ...]:
    """Current partition factors of a buffer value (all ones if none).

    Node and schedule block arguments are resolved to the underlying buffer
    they alias, so queries made from inside an isolated node see the
    partition chosen at the schedule level.
    """
    buffer = _resolve_through_nodes(buffer)
    defining = buffer.defining_op
    if isinstance(defining, BufferOp):
        return tuple(defining.partition.factors)
    partition = partition_of(buffer)
    if partition is not None:
        return tuple(partition.factors)
    return tuple([1] * len(_buffer_shape(buffer)))


def partition_buffers_in(
    top: Operation, strict: bool = False
) -> Dict[int, ArrayPartition]:
    """Derive and attach partitions for every buffer accessed under ``top``.

    Handles both ``hida.buffer`` results (partition stored on the op) and
    plain memref values (annotation attached via the hls dialect helpers).
    Node block arguments are resolved to the schedule-level buffer they alias
    so that demands from all accessing nodes are combined, which is exactly
    the connection-aware behaviour evaluated in Table 6.

    Returns a map from ``id(buffer value)`` to the chosen partition.
    ``strict`` is forwarded to :func:`partition_for_accesses`.
    """
    # Gather accesses per underlying buffer.
    demands: Dict[int, Tuple[Value, List[AffineAccess]]] = {}
    for op in top.walk():
        if not isinstance(op, (AffineLoadOp, AffineStoreOp)):
            continue
        buffer = op.memref
        # Resolve through node block arguments to the outer buffer.
        resolved = _resolve_through_nodes(buffer)
        entry = demands.setdefault(id(resolved), (resolved, []))
        entry[1].append(op)

    chosen: Dict[int, ArrayPartition] = {}
    for key, (buffer, accesses) in demands.items():
        partition = partition_for_accesses(buffer, accesses, strict=strict)
        defining = buffer.defining_op
        if isinstance(defining, BufferOp):
            defining.set_partition(partition)
        else:
            with contextlib.suppress(ValueError):
                set_partition(buffer, partition)
        chosen[key] = partition
    return chosen


def _resolve_through_nodes(buffer: Value) -> Value:
    """Map a node/schedule block argument back to the buffer passed in."""
    current = buffer
    seen = 0
    while seen < 16:
        seen += 1
        owner = current.owner
        if not isinstance(owner, Block) or not isinstance(current, BlockArgument):
            return current
        parent = owner.parent_op
        if isinstance(parent, NodeOp) or (
            parent is not None and parent.name == "hida.schedule"
        ):
            index = current.index
            if index < parent.num_operands:
                current = parent.operand(index)
                continue
        return current
    return current
