"""Intensity- and connection-aware dataflow parallelization (Section 6.5).

Implements steps (2)-(4) of the HIDA parallelization flow:

* **Node sorting** — nodes (more precisely, their loop bands) are processed
  in descending order of connection count, with computation intensity as the
  tie-breaker;
* **Parallel factor generation** — the per-band parallel factor budget is
  proportional to the band's intensity (intensity-aware, IA); without IA the
  maximum factor is applied to every band;
* **Node parallelization** (Algorithm 4) — an intra-band DSE proposes loop
  unroll-factor vectors, rejects proposals that violate the alignment
  constraints derived from already-parallelized connected bands
  (connection-aware, CA) or exceed the parallel factor, ranks valid
  proposals with the QoR model (latency, DSPs, memory banks) and applies the
  winner.

After parallelization the innermost loops are pipelined and buffer
partitions are derived from the final unroll factors.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects.affine import AffineForOp
from ..dialects.dataflow import ScheduleOp
from ..transforms.array_partition import partition_buffers_in
from ..transforms.loop_transforms import pipeline_loop
from .analysis import (
    BandInfo,
    Connection,
    collect_band_infos,
    collect_connections,
)

__all__ = [
    "ParallelizationOptions",
    "ParallelizationResult",
    "generate_parallel_factors",
    "sort_bands",
    "candidate_unroll_factors",
    "proposal_cost",
    "parallelize_band",
    "parallelize_schedule",
    "count_misalignments",
]


@dataclasses.dataclass
class ParallelizationOptions:
    """Knobs of the dataflow parallelization.

    ``intensity_aware`` and ``connection_aware`` correspond to the IA / CA
    ablation modes of Figure 11; the naive mode disables both.
    """

    max_parallel_factor: int = 32
    intensity_aware: bool = True
    connection_aware: bool = True
    #: Restrict DSE proposals to power-of-two factors (plus exact divisors of
    #: small trip counts), keeping the proposal space tractable.
    powers_of_two_only: bool = False
    #: Upper bound on DSE proposals evaluated per band.
    max_proposals: int = 8192
    #: Pipeline innermost loops after unrolling.
    pipeline: bool = True
    #: Target initiation interval requested for pipelined loops.  II > 1
    #: trades throughput for resources (the scheduler can share operators),
    #: which makes it a useful DSE axis on resource-constrained platforms.
    target_ii: int = 1

    @classmethod
    def naive(cls, max_parallel_factor: int = 32) -> "ParallelizationOptions":
        return cls(
            max_parallel_factor=max_parallel_factor,
            intensity_aware=False,
            connection_aware=False,
        )

    @classmethod
    def ia_only(cls, max_parallel_factor: int = 32) -> "ParallelizationOptions":
        return cls(
            max_parallel_factor=max_parallel_factor,
            intensity_aware=True,
            connection_aware=False,
        )

    @classmethod
    def ca_only(cls, max_parallel_factor: int = 32) -> "ParallelizationOptions":
        return cls(
            max_parallel_factor=max_parallel_factor,
            intensity_aware=False,
            connection_aware=True,
        )


@dataclasses.dataclass
class ParallelizationResult:
    """Chosen unroll factors and bookkeeping for one schedule."""

    unroll_factors: Dict[str, List[int]] = dataclasses.field(default_factory=dict)
    parallel_factors: Dict[str, int] = dataclasses.field(default_factory=dict)
    intensities: Dict[str, int] = dataclasses.field(default_factory=dict)
    constraint_violations: int = 0
    proposals_evaluated: int = 0

    def factors_of(self, label: str) -> Optional[List[int]]:
        return self.unroll_factors.get(label)


# ---------------------------------------------------------------------------
# Step (2): node sorting
# ---------------------------------------------------------------------------


def sort_bands(
    bands: Sequence[BandInfo], connections: Sequence[Connection]
) -> List[BandInfo]:
    """Sort bands by connection count (descending), intensity as tie-breaker."""
    counts = {id(band): 0 for band in bands}
    for connection in connections:
        if id(connection.source) in counts:
            counts[id(connection.source)] += 1
        if id(connection.target) in counts:
            counts[id(connection.target)] += 1
    return sorted(
        bands,
        key=lambda band: (-counts[id(band)], -band.intensity),
    )


# ---------------------------------------------------------------------------
# Step (3): parallel factor generation
# ---------------------------------------------------------------------------


def generate_parallel_factors(
    bands: Sequence[BandInfo], options: ParallelizationOptions
) -> Dict[int, int]:
    """Per-band parallel factor, proportional to intensity when IA is on."""
    factors: Dict[int, int] = {}
    max_intensity = max((band.intensity for band in bands), default=1) or 1
    for band in bands:
        if options.intensity_aware:
            raw = options.max_parallel_factor * band.intensity / max_intensity
            factor = max(1, 2 ** int(round(math.log2(max(raw, 1)))))
        else:
            factor = options.max_parallel_factor
        space = 1
        for trip in band.trip_counts:
            space *= max(trip, 1)
        factors[id(band)] = max(1, min(factor, space))
    return factors


# ---------------------------------------------------------------------------
# Step (4): node parallelization (Algorithm 4)
# ---------------------------------------------------------------------------


def _factor_candidates_for_loop(
    trip: int, parallel: bool, limit: int, powers_of_two_only: bool
) -> List[int]:
    """Candidate unroll factors of one loop."""
    if not parallel:
        return [1]
    limit = max(1, min(limit, trip))
    candidates = {1}
    power = 2
    while power <= limit:
        candidates.add(power)
        power *= 2
    if not powers_of_two_only and trip <= 64:
        for divisor in range(2, limit + 1):
            if trip % divisor == 0:
                candidates.add(divisor)
    return sorted(candidates)


def candidate_unroll_factors(
    band: BandInfo, parallel_factor: int, options: ParallelizationOptions
) -> List[List[int]]:
    """Enumerate unroll-factor vectors whose product does not exceed the budget."""
    per_loop = [
        _factor_candidates_for_loop(
            trip, flag, parallel_factor, options.powers_of_two_only
        )
        for trip, flag in zip(band.trip_counts, band.parallel_flags)
    ]
    proposals: List[List[int]] = []

    def recurse(index: int, current: List[int], product: int) -> None:
        if len(proposals) >= options.max_proposals:
            return
        if index == len(per_loop):
            proposals.append(list(current))
            return
        for factor in per_loop[index]:
            new_product = product * factor
            if new_product > parallel_factor:
                break
            current.append(factor)
            recurse(index + 1, current, new_product)
            current.pop()

    recurse(0, [], 1)
    return proposals


def _violates_constraints(
    factors: Sequence[int], constraints_list: Sequence[Sequence[Optional[int]]]
) -> bool:
    """Algorithm 4 lines 13-16: mutual-divisibility check."""
    for constraints in constraints_list:
        for constraint, factor in zip(constraints, factors):
            if constraint is None:
                continue
            if constraint % factor != 0 and factor % constraint != 0:
                return True
    return False


def proposal_cost(
    band: BandInfo,
    factors: Sequence[int],
    constraints_list: Sequence[Sequence[Optional[int]]],
) -> Tuple[float, float, float, int, float]:
    """Rank one unroll-factor proposal.

    The cost tuple is (iterations, DSPs, memory banks, max factor,
    -inner-loop preference): fewer residual iterations first (latency), then
    compute resources, then the buffer banks implied by the factors combined
    with the alignment constraints, then structural tie-breakers that favour
    balanced factor vectors with parallelism on inner loops.
    """
    iterations = 1.0
    for trip, factor in zip(band.trip_counts, factors):
        iterations *= math.ceil(trip / max(factor, 1))
    product = 1
    for factor in factors:
        product *= factor
    dsp = band.muls_per_iteration * product

    # Combined constraint demand per loop position (from connected bands).
    combined_constraint: List[int] = [1] * band.num_loops
    for constraints in constraints_list:
        for position, constraint in enumerate(constraints):
            if constraint is not None:
                combined_constraint[position] = max(
                    combined_constraint[position], constraint
                )

    banks = 0.0
    for access in band.accesses:
        access_banks = 1.0
        for position, stride in zip(access.dim_loop_positions, access.dim_strides):
            if position is None:
                continue
            own_demand = factors[position] * max(abs(float(stride)), 1.0)
            demand = max(own_demand, float(combined_constraint[position]))
            access_banks *= max(demand, 1.0)
        banks += access_banks

    max_factor = max(factors) if factors else 1
    inner_preference = sum(factor * index for index, factor in enumerate(factors))
    return (iterations, dsp, banks, max_factor, -inner_preference)


def _order_reductions_outward(band: BandInfo) -> bool:
    """ScaleHLS-style loop-order optimization, verified by the engine.

    When the innermost loop of a band carries a dependence (a reduction)
    while other levels are parallel, pipelining the nest as-is is bound by
    the recurrence II.  Permute the band — reduction loops outward, parallel
    loops inward, relative order preserved — so the pipelined innermost loop
    is dependence-free and sustains II=1.  The permutation is applied only
    when :func:`legal_permutation` proves every dependence survives it.
    """
    flags = band.parallel_flags
    if len(band.band) < 2 or flags[-1] or not any(flags):
        return False
    order = [i for i, flag in enumerate(flags) if not flag]
    order += [i for i, flag in enumerate(flags) if flag]
    if order == list(range(len(flags))):
        return False
    from ..analysis.legality import legal_permutation
    from ..transforms.loop_transforms import permute_band

    if not legal_permutation(band.band, order):
        return False
    permute_band(band.band, order, check=False)
    return True


def parallelize_band(
    band: BandInfo,
    connections: Sequence[Connection],
    parallel_factor: int,
    finished_factors: Dict[int, List[int]],
    options: ParallelizationOptions,
    result: ParallelizationResult,
) -> List[int]:
    """Algorithm 4 applied to one band; returns the chosen unroll factors."""
    # Gather constraints from already-parallelized connected bands.
    constraints_list: List[List[Optional[int]]] = []
    if options.connection_aware:
        for connection in connections:
            if connection.source is band and id(connection.target) in finished_factors:
                other = finished_factors[id(connection.target)]
                constraints_list.append(connection.constraints_for(band, other))
            elif connection.target is band and id(connection.source) in finished_factors:
                other = finished_factors[id(connection.source)]
                constraints_list.append(connection.constraints_for(band, other))

    proposals = candidate_unroll_factors(band, parallel_factor, options)
    best: Optional[List[int]] = None
    best_cost: Optional[Tuple] = None
    for factors in proposals:
        result.proposals_evaluated += 1
        if options.connection_aware and _violates_constraints(factors, constraints_list):
            result.constraint_violations += 1
            continue
        cost = proposal_cost(band, factors, constraints_list)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best = factors
    if best is None:
        best = [1] * band.num_loops
    band.apply_unroll_factors(best)
    _order_reductions_outward(band)
    if options.pipeline and band.band:
        innermost = band.band[-1]
        # Pipeline the innermost loop of the (possibly deeper) nest.
        current = innermost
        while True:
            inner = [
                op for op in current.body.operations if isinstance(op, AffineForOp)
            ]
            if not inner:
                break
            current = inner[0]
        # Clamp the directive to the recurrence bound so the pass never
        # claims an II its own carried dependences make unachievable.
        from ..analysis.legality import legal_pipeline_ii

        min_ii = legal_pipeline_ii(current, options.target_ii).min_ii
        pipeline_loop(current, target_ii=max(options.target_ii, min_ii))
    return list(best)


def parallelize_schedule(
    schedule: ScheduleOp,
    options: Optional[ParallelizationOptions] = None,
) -> ParallelizationResult:
    """Run the full IA+CA parallelization on one schedule.

    Applies unroll factors and pipelining to every band, then derives array
    partitions for all buffers from the final factors.
    """
    options = options or ParallelizationOptions()
    result = ParallelizationResult()
    bands = collect_band_infos(schedule)
    if not bands:
        return result
    connections = collect_connections(schedule, bands)
    parallel_factors = generate_parallel_factors(bands, options)
    ordered = sort_bands(bands, connections)

    finished: Dict[int, List[int]] = {}
    for index, band in enumerate(ordered):
        label = f"{band.label}#{index}"
        factors = parallelize_band(
            band,
            connections,
            parallel_factors[id(band)],
            finished,
            options,
            result,
        )
        finished[id(band)] = factors
        result.unroll_factors[label] = factors
        result.parallel_factors[label] = parallel_factors[id(band)]
        result.intensities[label] = band.intensity

    partition_buffers_in(schedule)
    return result


def parallelize_function_bands(
    func,
    options: Optional[ParallelizationOptions] = None,
) -> ParallelizationResult:
    """Parallelize the loop bands of a function that has no dataflow schedule.

    Single-band kernels expose no inter-task optimization opportunity; HIDA
    (like ScaleHLS) still applies the intra-band loop optimizations — unroll
    factor selection under the parallel-factor budget, loop pipelining and
    array partitioning — which is why the two frameworks perform on par on
    the paper's single-loop kernels.
    """
    from ..transforms.loop_transforms import loop_bands_of
    from .analysis import band_info_of

    options = options or ParallelizationOptions()
    result = ParallelizationResult()
    bands = [band_info_of(func, band) for band in loop_bands_of(func)]
    if not bands:
        return result
    parallel_factors = generate_parallel_factors(bands, options)
    for index, band in enumerate(bands):
        factors = parallelize_band(
            band, [], parallel_factors[id(band)], {}, options, result
        )
        label = f"{band.label}#{index}"
        result.unroll_factors[label] = factors
        result.parallel_factors[label] = parallel_factors[id(band)]
        result.intensities[label] = band.intensity
    partition_buffers_in(func)
    return result


def count_misalignments(
    schedule: ScheduleOp,
    bands: Optional[Sequence[BandInfo]] = None,
    connections: Optional[Sequence[Connection]] = None,
) -> int:
    """Count loop pairs whose final unroll factors violate alignment.

    A connected loop pair is misaligned when the two chosen unroll factors
    (after stride scaling) are mutually indivisible.  Misalignment forces the
    compiler to generate fine-grained access control logic, which is what
    degrades the connection-unaware modes at large parallel factors in the
    Figure 11 ablation.
    """
    if bands is None:
        bands = collect_band_infos(schedule)
    if connections is None:
        connections = collect_connections(schedule, bands)
    violations = 0
    for connection in connections:
        source_factors = connection.source.unroll_factors()
        target_factors = connection.target.unroll_factors()
        constraints = connection.constraints_for(connection.target, source_factors)
        for constraint, factor in zip(constraints, target_factors):
            if constraint is None:
                continue
            if constraint % factor != 0 and factor % constraint != 0:
                violations += 1
    return violations
