"""repro.hida — the HIDA-OPT hierarchical dataflow optimizer.

The paper's primary contribution: Functional dataflow construction and task
fusion, Structural lowering, multi-producer elimination, data-path
balancing, intensity/connection analysis, IA+CA parallelization, and the
end-to-end pipeline driver.
"""

from .analysis import (
    BandAccess,
    BandInfo,
    Connection,
    band_info_of,
    collect_band_infos,
    collect_connections,
    connection_table,
    is_parallel_loop,
    node_intensity,
)
from .dataflow_opt import (
    BalanceDataflowPass,
    BalanceReport,
    EliminateMultiProducerPass,
    balance_data_paths,
    eliminate_multiple_producers,
    node_depths,
)
from .functional import (
    ConstructDataflowPass,
    ElementwiseFusionPattern,
    FuseTasksPass,
    FusionPattern,
    InitializationFusionPattern,
    construct_functional_dataflow,
    default_fusion_patterns,
    fuse_dataflow_tasks,
    fuse_tasks,
    task_intensity,
    wrap_block_in_dispatch,
    wrap_ops_in_task,
)
from .parallelize import (
    ParallelizationOptions,
    ParallelizationResult,
    candidate_unroll_factors,
    count_misalignments,
    generate_parallel_factors,
    parallelize_band,
    parallelize_schedule,
    proposal_cost,
    sort_bands,
)
from .pipeline import (
    CompileResult,
    HidaCompiler,
    HidaOptions,
    WorkloadSpec,
    compile_module,
    compile_workload,
)
from .structural import (
    LowerToStructuralPass,
    analyze_memory_effects,
    convert_allocs_to_buffers,
    convert_dispatch_to_schedule,
    convert_task_to_node,
    lower_to_structural_dataflow,
)

__all__ = [
    "BandAccess",
    "BandInfo",
    "Connection",
    "band_info_of",
    "collect_band_infos",
    "collect_connections",
    "connection_table",
    "is_parallel_loop",
    "node_intensity",
    "BalanceDataflowPass",
    "BalanceReport",
    "EliminateMultiProducerPass",
    "balance_data_paths",
    "eliminate_multiple_producers",
    "node_depths",
    "ConstructDataflowPass",
    "ElementwiseFusionPattern",
    "FuseTasksPass",
    "FusionPattern",
    "InitializationFusionPattern",
    "construct_functional_dataflow",
    "default_fusion_patterns",
    "fuse_dataflow_tasks",
    "fuse_tasks",
    "task_intensity",
    "wrap_block_in_dispatch",
    "wrap_ops_in_task",
    "ParallelizationOptions",
    "ParallelizationResult",
    "candidate_unroll_factors",
    "count_misalignments",
    "generate_parallel_factors",
    "parallelize_band",
    "parallelize_schedule",
    "proposal_cost",
    "sort_bands",
    "CompileResult",
    "HidaCompiler",
    "HidaOptions",
    "compile_module",
    "compile_workload",
    "WorkloadSpec",
    "LowerToStructuralPass",
    "analyze_memory_effects",
    "convert_allocs_to_buffers",
    "convert_dispatch_to_schedule",
    "convert_task_to_node",
    "lower_to_structural_dataflow",
]
