"""Functional dataflow construction and task fusion (Algorithms 1 and 2).

Functional dataflow construction walks the IR bottom-up, wraps every
*dispatchable* region with a ``hida.dispatch`` op and every task-worthy
operation with its own ``hida.task``.  A region is dispatchable when it is
owned by an iterative operation (a loop or a function) and contains at least
two iterative operations that can execute in a dataflow manner.

Task fusion then (a) applies pre-defined profitable fusion patterns (e.g.
fuse elementwise operations into their producers) through a worklist, and
(b) keeps fusing the two least-critical adjacent tasks until fusion would
create a new critical task, rebalancing the dataflow.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..dialects import linalg
from ..dialects.affine import AffineForOp
from ..dialects.dataflow import DispatchOp, TaskOp, YieldOp
from ..dialects.memref import AllocOp, GetGlobalOp
from ..ir.builtin import ConstantOp, FuncOp, ModuleOp, ReturnOp
from ..ir.core import Block, Operation, Value
from ..ir.passes import AnalysisManager, Pass
from ..transforms.canonicalize import simplify_dispatch_hierarchy

__all__ = [
    "wrap_ops_in_task",
    "wrap_block_in_dispatch",
    "construct_functional_dataflow",
    "FusionPattern",
    "ElementwiseFusionPattern",
    "InitializationFusionPattern",
    "default_fusion_patterns",
    "fusion_patterns_by_name",
    "fusion_pattern_name",
    "fuse_tasks",
    "task_intensity",
    "fuse_dataflow_tasks",
    "ConstructDataflowPass",
    "FuseTasksPass",
]


# ---------------------------------------------------------------------------
# Construction (Algorithm 1)
# ---------------------------------------------------------------------------

#: Operation kinds that never become tasks on their own (pure data or
#: declarations shared by all tasks in the transparent Functional dataflow).
_NON_TASK_OPS = (
    AllocOp,
    GetGlobalOp,
    ConstantOp,
    ReturnOp,
    YieldOp,
    TaskOp,
    DispatchOp,
)


def _is_task_worthy(op: Operation) -> bool:
    """Whether an op should be wrapped into its own task."""
    if isinstance(op, _NON_TASK_OPS):
        return False
    if isinstance(op, linalg.FillOp):
        return False
    if isinstance(op, (AffineForOp, linalg.LinalgOp)):
        return True
    # Other side-effecting ops (e.g. memref.copy) are also kept in tasks.
    return op.name in ("memref.copy",)


def _is_iterative(op: Operation) -> bool:
    """Iterative ops define iteration spaces: loops and structured linalg ops."""
    return isinstance(op, (AffineForOp, linalg.LinalgOp)) and not isinstance(
        op, linalg.FillOp
    )


def _is_dispatchable(block: Block) -> bool:
    """A region is dispatchable if it holds at least two iterative operations."""
    iterative = [op for op in block.operations if _is_iterative(op)]
    return len(iterative) >= 2


def _values_escaping(ops: Sequence[Operation]) -> List[Value]:
    """Values defined by ``ops`` (or their nests) that are used outside them."""
    op_set = set()
    for op in ops:
        for nested in op.walk():
            op_set.add(id(nested))
    escaping: List[Value] = []
    for op in ops:
        for nested in op.walk():
            for result in nested.results:
                if any(id(user) not in op_set for user in result.users):
                    escaping.append(result)
    return escaping


def wrap_ops_in_task(ops: Sequence[Operation], label: str = "") -> TaskOp:
    """Wrap consecutive ops into a new ``hida.task`` (the paper's wrap_ops).

    Values defined by the wrapped ops that are used outside become results of
    the task (yielded by its terminator), preserving SSA def-use discipline.
    """
    if not ops:
        raise ValueError("cannot wrap an empty op list")
    block = ops[0].parent
    if block is None or any(op.parent is not block for op in ops):
        raise ValueError("ops to wrap must live in the same block")
    escaping = _values_escaping(ops)
    task = TaskOp.create(result_types=[v.type for v in escaping], label=label)
    # Insert the task right before the first wrapped op.
    first = min(ops, key=lambda op: block.index_of(op))
    task_block = task.body
    block.insert(block.index_of(first), task)
    ordered = sorted(ops, key=lambda op: block.index_of(op))
    for op in ordered:
        op.detach()
        task_block.append(op)
    # Redirect external uses of escaping values to the task results *before*
    # creating the yield, so the yield keeps referencing the inner values.
    op_set = set()
    for op in ops:
        for nested in op.walk():
            op_set.add(id(nested))
    for value, result in zip(escaping, task.results):
        result.name_hint = value.name_hint
        value.replace_uses_if(
            result, lambda user: id(user) not in op_set and user is not task
        )
    task_block.append(YieldOp.create(escaping))
    return task


def wrap_block_in_dispatch(block: Block, label: str = "") -> DispatchOp:
    """Wrap all task-worthy ops of ``block`` in a single ``hida.dispatch``."""
    wrappable = [op for op in block.operations if _is_task_worthy(op) or isinstance(op, TaskOp)]
    if not wrappable:
        raise ValueError("block has no wrappable operations")
    escaping = _values_escaping(wrappable)
    dispatch = DispatchOp.create(result_types=[v.type for v in escaping])
    if label:
        dispatch.set_attr("label", label)
    first = min(wrappable, key=lambda op: block.index_of(op))
    block.insert(block.index_of(first), dispatch)
    body = dispatch.body
    for op in sorted(wrappable, key=lambda op: block.index_of(op)):
        op.detach()
        body.append(op)
    op_set = set()
    for op in wrappable:
        for nested in op.walk():
            op_set.add(id(nested))
    for value, result in zip(escaping, dispatch.results):
        result.name_hint = value.name_hint
        value.replace_uses_if(
            result, lambda user: id(user) not in op_set and user is not dispatch
        )
    body.append(YieldOp.create(escaping))
    return dispatch


def construct_functional_dataflow(module: ModuleOp) -> int:
    """Algorithm 1: build the Functional dataflow of every function.

    Walks ops that own regions in post-order; every dispatchable region gets
    wrapped in a dispatch whose ops are each wrapped in their own task.
    Returns the number of dispatch ops created.
    """
    created = 0
    for func in module.functions:
        _hoist_leaf_definitions(func.entry_block)
        # Post-order walk over region-owning ops (innermost regions first).
        candidates: List[Tuple[Operation, Block]] = []
        for op in func.walk():
            if isinstance(op, (TaskOp, DispatchOp)):
                continue
            for region in op.regions:
                for block in region.blocks:
                    candidates.append((op, block))
        # func itself is visited through the walk (walk includes func? it does
        # not include the module); ensure the function body is considered last.
        for op, block in candidates:
            if (
                (op is func or isinstance(op, (AffineForOp, FuncOp)))
                and _is_dispatchable(block)
                and not _already_dispatched(block)
            ):
                dispatch = wrap_block_in_dispatch(block)
                created += 1
                for child in list(dispatch.body.operations):
                    if _is_task_worthy(child):
                        wrap_ops_in_task([child], label=_label_for(child))
    return created


def _hoist_leaf_definitions(block: Block) -> None:
    """Move operand-less definitions (weights, constants, allocs) to the top.

    Frontends interleave weight definitions with compute ops; hoisting them
    keeps all shared definitions in the transparent global context above the
    dispatch so every task can reference them.
    """
    leaves = [
        op
        for op in block.operations
        if isinstance(op, (AllocOp, GetGlobalOp, ConstantOp, linalg.FillOp))
        and op.num_operands == 0
    ]
    for position, op in enumerate(leaves):
        op.detach()
        block.insert(position, op)


def _already_dispatched(block: Block) -> bool:
    return any(isinstance(op, DispatchOp) for op in block.operations)


def _label_for(op: Operation) -> str:
    if isinstance(op, linalg.LinalgOp):
        return op.get_attr("layer", op.name.split(".")[-1])
    if isinstance(op, AffineForOp):
        hint = op.induction_variable.name_hint or "loop"
        return f"band_{hint}"
    return op.name.split(".")[-1]


# ---------------------------------------------------------------------------
# Task fusion (Algorithm 2)
# ---------------------------------------------------------------------------


def task_intensity(task: TaskOp) -> int:
    """Computation intensity of a task (scalar ops, or linalg op cost)."""
    total = 0
    for op in task.walk():
        if isinstance(op, linalg.LinalgOp):
            total += op.num_scalar_ops()
    if total:
        return total
    from ..estimation.qor import _node_intensity

    return _node_intensity(task)


class FusionPattern:
    """A profitable task-fusion pattern.

    ``match`` receives a task and returns the adjacent task it should be
    fused with (its producer or consumer), or None when the pattern does not
    apply.
    """

    name = "fusion"

    def match(self, task: TaskOp) -> Optional[TaskOp]:
        raise NotImplementedError


def _producer_task(task: TaskOp) -> Optional[TaskOp]:
    """The *latest* preceding task producing one of this task's used values.

    Fusing into the latest producer keeps every other producer ahead of the
    fused task, so def-use order stays valid (important for multi-producer
    consumers such as residual adds).
    """
    block = task.parent
    if block is None:
        return None
    producers: List[TaskOp] = []
    for operand_value in _external_values_used(task):
        defining = operand_value.defining_op
        if isinstance(defining, TaskOp) and defining.parent is block:
            producers.append(defining)
    if not producers:
        return None
    return max(producers, key=block.index_of)


def _external_values_used(task: TaskOp) -> List[Value]:
    inside = set()
    for op in task.walk():
        inside.add(id(op))
    used: List[Value] = []
    for op in task.walk():
        for operand in op.operands:
            defining = operand.defining_op
            if defining is not None and id(defining) not in inside:
                used.append(operand)
    return used


class ElementwiseFusionPattern(FusionPattern):
    """Fuse a purely elementwise task into its producer task.

    This is the classic conv+ReLU / conv+BN fusion: the elementwise consumer
    adds negligible intensity while removing an inter-task buffer.
    """

    name = "elementwise-fusion"

    def match(self, task: TaskOp) -> Optional[TaskOp]:
        payload = task.payload_ops()
        if not payload:
            return None
        for op in payload:
            if isinstance(op, linalg.LinalgOp):
                if not op.is_elementwise and not isinstance(
                    op, (linalg.MaxPool2DOp, linalg.AvgPool2DOp, linalg.ReshapeOp)
                ):
                    return None
            else:
                return None
        return _producer_task(task)


class InitializationFusionPattern(FusionPattern):
    """Fuse a zero-initialization loop band into the compute band it feeds.

    PolyBench kernels commonly initialize an accumulator array in one loop
    band and accumulate into it in the next; keeping them in separate
    dataflow tasks wastes a pipeline stage and an inter-task buffer.
    """

    name = "init-fusion"

    def match(self, task: TaskOp) -> Optional[TaskOp]:
        payload = task.payload_ops()
        if len(payload) != 1 or not isinstance(payload[0], AffineForOp):
            return None
        band_root = payload[0]
        has_compute = any(
            op.name in ("arith.mulf", "arith.addf", "arith.mac", "arith.muli")
            for op in band_root.walk()
        )
        if has_compute:
            return None
        # Only pure *initialization* bands qualify: every stored value must be
        # a compile-time constant.  Bands that move data between buffers
        # (tile loads / stores) are real dataflow stages and stay separate.
        stores = [op for op in band_root.walk() if op.name == "affine.store"]
        if not stores:
            return None
        for store in stores:
            stored = store.value
            if stored.defining_op is None or stored.defining_op.name != "arith.constant":
                return None
        # Fuse with the next task that uses one of the buffers it writes.
        written = [store.memref for store in stores]
        block = task.parent
        if block is None:
            return None
        after = False
        for sibling in block.operations:
            if sibling is task:
                after = True
                continue
            if after and isinstance(sibling, TaskOp):
                reads = [
                    op.memref for op in sibling.walk() if op.name == "affine.load"
                ] + [op.memref for op in sibling.walk() if op.name == "affine.store"]
                if any(any(w is r for r in reads) for w in written):
                    return sibling
        return None


def _memrefs_written(task: TaskOp) -> List[Value]:
    return [op.memref for op in task.walk() if op.name == "affine.store"]


def _memrefs_read(task: TaskOp) -> List[Value]:
    return [op.memref for op in task.walk() if op.name == "affine.load"]


def _tasks_connected(first: TaskOp, second: TaskOp) -> bool:
    """Whether two tasks exchange data (SSA results or shared memrefs)."""
    for result in first.results:
        if any(second.is_ancestor_of(user) or user is second for user in result.users):
            return True
    written = _memrefs_written(first)
    touched = _memrefs_read(second) + _memrefs_written(second)
    if any(any(w is t for t in touched) for w in written):
        return True
    written_second = _memrefs_written(second)
    read_first = _memrefs_read(first)
    return any(any(w is r for r in read_first) for w in written_second)


def default_fusion_patterns() -> List[FusionPattern]:
    """The pre-defined profitable fusion pattern set used by HIDA."""
    return [ElementwiseFusionPattern(), InitializationFusionPattern()]


#: Spec-level short names of the stock fusion patterns (what pipeline specs
#: like ``fuse-tasks{patterns=elementwise,init}`` refer to).
_FUSION_PATTERN_SHORT_NAMES = {
    "elementwise": ElementwiseFusionPattern,
    "init": InitializationFusionPattern,
}


def fusion_patterns_by_name() -> dict:
    """Fresh pattern instances keyed by every accepted name.

    Both the short spec names (``elementwise``, ``init``) and the pattern
    class names (``ElementwiseFusionPattern``, ...) resolve, so textual
    pipeline specs and serialized :class:`~repro.hida.pipeline.HidaOptions`
    dicts share one lookup.
    """
    by_name = {name: cls() for name, cls in _FUSION_PATTERN_SHORT_NAMES.items()}
    for pattern in default_fusion_patterns():
        by_name[type(pattern).__name__] = pattern
    return by_name


def fusion_pattern_name(pattern: FusionPattern) -> str:
    """Canonical short name of a pattern (class name for custom patterns)."""
    for name, cls in _FUSION_PATTERN_SHORT_NAMES.items():
        if type(pattern) is cls:
            return name
    return type(pattern).__name__


def fuse_tasks(first: TaskOp, second: TaskOp) -> TaskOp:
    """Fuse two tasks of the same dispatch into one (earlier task absorbs).

    The later task's payload is appended to the earlier one; results of both
    that are still used externally are re-yielded from the fused task.
    """
    block = first.parent
    if block is None or second.parent is not block:
        raise ValueError("tasks must live in the same dispatch region")
    if block.index_of(first) > block.index_of(second):
        first, second = second, first

    # Map: result of either task -> the value yielded inside.
    def yielded_values(task: TaskOp) -> List[Value]:
        yield_op = task.yield_op
        return list(yield_op.operands) if yield_op else []

    first_yields = yielded_values(first)
    second_yields = yielded_values(second)

    # Move the second task's payload into the first (before first's yield).
    first_yield_op = first.yield_op
    insertion_index = first.body.index_of(first_yield_op) if first_yield_op else len(first.body)
    for op in list(second.body.operations):
        if isinstance(op, YieldOp):
            continue
        op.detach()
        first.body.insert(insertion_index, op)
        insertion_index += 1

    # Second task's operands referencing first-task results become the inner
    # values (they are now in the same region).
    for result, inner in zip(first.results, first_yields):
        result.replace_uses_if(inner, lambda user: first.is_ancestor_of(user))

    # Build the fused result list: any result of either task still used
    # externally must be re-yielded.
    new_yield_values: List[Value] = []
    replacements: List[Tuple[Value, int]] = []
    for task, yields in ((first, first_yields), (second, second_yields)):
        for result, inner in zip(task.results, yields):
            external_users = [u for u in result.users if not first.is_ancestor_of(u)]
            if external_users:
                replacements.append((result, len(new_yield_values)))
                new_yield_values.append(inner)

    label = "+".join(x for x in (first.label, second.label) if x)
    fused = TaskOp.create(result_types=[v.type for v in new_yield_values], label=label)
    block.insert(block.index_of(first), fused)
    for op in list(first.body.operations):
        if isinstance(op, YieldOp):
            continue
        op.detach()
        fused.body.append(op)
    fused.body.append(YieldOp.create(new_yield_values))
    for value, index in replacements:
        value.replace_all_uses_with(fused.results[index])

    # Clean up the now-empty original tasks.
    for task in (second, first):
        if task.yield_op is not None:
            task.yield_op.set_operands([])
        for result in task.results:
            if result.has_uses:
                raise RuntimeError("fusion left dangling uses on a task result")
        task.results = []
        task.erase()
    return fused


def fuse_dataflow_tasks(
    module: ModuleOp,
    patterns: Optional[Sequence[FusionPattern]] = None,
    balance: bool = True,
) -> int:
    """Algorithm 2: pattern-driven worklist fusion plus criticality balancing.

    Returns the number of fusions performed.
    """
    patterns = list(patterns) if patterns is not None else default_fusion_patterns()
    fusions = 0
    for dispatch in list(module.walk_ops(DispatchOp)):
        # --- pattern-driven worklist (lines 2-6) --------------------------
        changed = True
        while changed:
            changed = False
            for task in list(dispatch.tasks):
                if task.parent is None:
                    continue
                for pattern in patterns:
                    partner = pattern.match(task)
                    if partner is not None and partner.parent is task.parent:
                        fuse_tasks(partner, task)
                        fusions += 1
                        changed = True
                        break
                if changed:
                    break

        # --- least-critical balancing (lines 7-9) --------------------------
        if balance:
            while True:
                tasks = dispatch.tasks
                if len(tasks) < 3:
                    break
                critical = max(task_intensity(t) for t in tasks)
                # Find the connected adjacent pair with the smallest combined
                # intensity.  Fusion of unconnected tasks saves nothing (they
                # already run concurrently) so it is not considered profitable.
                best_pair = None
                best_sum = None
                for a, b in zip(tasks, tasks[1:]):
                    if not _tasks_connected(a, b):
                        continue
                    combined = task_intensity(a) + task_intensity(b)
                    if best_sum is None or combined < best_sum:
                        best_sum = combined
                        best_pair = (a, b)
                if best_pair is None or best_sum is None:
                    break
                if best_sum > critical:
                    break  # fusion would create a new critical task
                fuse_tasks(*best_pair)
                fusions += 1

        simplify_dispatch_hierarchy(dispatch)
    return fusions


class ConstructDataflowPass(Pass):
    """Pass wrapper for Functional dataflow construction (Algorithm 1)."""

    name = "hida-construct-dataflow"

    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        construct_functional_dataflow(module)


class FuseTasksPass(Pass):
    """Pass wrapper for Functional dataflow task fusion (Algorithm 2)."""

    name = "hida-fuse-tasks"

    def __init__(
        self,
        patterns: Optional[Sequence[FusionPattern]] = None,
        balance: bool = True,
    ) -> None:
        super().__init__()
        self.patterns = patterns
        self.balance = balance

    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        fuse_dataflow_tasks(module, self.patterns, self.balance)
