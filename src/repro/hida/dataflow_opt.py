"""Structural dataflow optimization (Section 6.4).

Two optimizations crucial for dataflow efficiency:

* **Multi-producer elimination** (Algorithm 3): buffers written by multiple
  nodes force sequential execution.  For *internal* buffers the later
  producers get a duplicated buffer (plus an explicit copy when they also
  read the original); for *external* buffers all producers are fused into a
  single node to avoid data races.

* **Data-path balancing**: when a dataflow graph has paths of different
  lengths (e.g. ResNet shortcut connections), the short path's buffer only
  holds two frames and back-pressures the producer.  HIDA either duplicates
  on-chip buffers along the short path (inserting copy nodes) or, for large
  buffers, spills the buffer to external memory as a *soft FIFO* and keeps
  the execution order with single-bit token streams (elastic node
  execution).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from ..dialects.dataflow import (
    BufferOp,
    MemoryEffect,
    NodeOp,
    ScheduleOp,
    StreamOp,
    StreamReadOp,
    StreamWriteOp,
    get_consumers,
    get_node_users,
    get_producers,
)
from ..dialects.memref import CopyOp
from ..ir.builder import Builder
from ..ir.builtin import ConstantOp, ModuleOp
from ..ir.core import Value
from ..ir.passes import AnalysisManager, Pass
from ..ir.types import MemRefType, i1

__all__ = [
    "eliminate_multiple_producers",
    "node_depths",
    "balance_data_paths",
    "BalanceReport",
    "EliminateMultiProducerPass",
    "BalanceDataflowPass",
]


# ---------------------------------------------------------------------------
# Multi-producer elimination (Algorithm 3)
# ---------------------------------------------------------------------------


def _internal_buffers(schedule: ScheduleOp) -> List[BufferOp]:
    return [op for op in schedule.body.operations if isinstance(op, BufferOp)]


def _external_buffer_values(schedule: ScheduleOp) -> List[Value]:
    """Buffer-typed values visible to the schedule but allocated outside it."""
    external: List[Value] = []
    for argument in schedule.body.arguments:
        if isinstance(argument.type, MemRefType):
            external.append(argument)
    return external


def _clone_buffer(buffer_op: BufferOp, suffix: str) -> BufferOp:
    clone = BufferOp.create(
        buffer_op.memref_type,
        depth=buffer_op.depth,
        partition=buffer_op.partition,
        layout=buffer_op.layout,
        memory_kind=buffer_op.memory_kind,
        name_hint=(buffer_op.result().name_hint or "buf") + suffix,
    )
    block = buffer_op.parent
    block.insert(block.index_of(buffer_op) + 1, clone)
    return clone


def eliminate_multiple_producers(schedule: ScheduleOp) -> int:
    """Algorithm 3.  Returns the number of violations eliminated."""
    eliminated = 0

    # Case (1): internal buffers -> duplicate for every extra producer.
    for buffer_op in list(_internal_buffers(schedule)):
        buffer = buffer_op.result()
        producers = get_producers(buffer)
        if len(producers) <= 1:
            continue
        # Producers are already returned in program (dominance) order.
        for producer in producers[1:]:
            duplicate = _clone_buffer(buffer_op, "_dup")
            dup_value = duplicate.result()
            reads_original = producer.reads(buffer)
            # Rewire this producer and every user it dominates to the new buffer.
            block = schedule.body
            producer_index = block.index_of(producer)
            for user in get_node_users(buffer):
                if user.parent is not block:
                    continue
                if block.index_of(user) >= producer_index:
                    user.replace_operand(buffer, dup_value)
            if reads_original:
                # The producer needs the data accumulated so far: copy it in.
                original_arg = None
                # After rewiring, the producer no longer has the original as an
                # operand; add it back as a read-only input.
                original_arg = producer.add_operand_with_argument(
                    buffer, MemoryEffect.READ
                )
                dup_arg = producer.block_argument_for(dup_value)
                copy = CopyOp.create(original_arg, dup_arg)
                producer.body.insert(0, copy)
            eliminated += 1

    # Case (2): external buffers -> merge all producers into a single node.
    # The merge must take the full program-order *span* — the producers plus
    # every node between them — or interleaved consumers are reordered: in a
    # time-stepped stencil (A->B, B->A, A->B, B->A) merging just the
    # producers of A would execute both B-writing steps before the first
    # A-writing step, reading stale data.  (Caught by translation
    # validation: see the README's worked example.)
    for buffer in _external_buffer_values(schedule):
        producers = get_producers(buffer)
        if len(producers) <= 1:
            continue
        block = schedule.body
        first = min(block.index_of(node) for node in producers)
        last = max(block.index_of(node) for node in producers)
        span = [
            node
            for node in schedule.nodes
            if first <= block.index_of(node) <= last
        ]
        _merge_nodes(schedule, span)
        eliminated += 1
    return eliminated


def _merge_nodes(schedule: ScheduleOp, nodes: Sequence[NodeOp]) -> NodeOp:
    """Fuse several nodes into one, executing them sequentially.

    The merged node is inserted at the *last* member's position so every
    buffer/stream declared between the members still dominates its use.
    """
    block = schedule.body
    nodes = sorted(nodes, key=block.index_of)
    last = nodes[-1]
    # Build the merged operand list with merged effects.
    merged_values: List[Value] = []
    merged_effects: List[str] = []

    def add(value: Value, effect: str) -> int:
        for i, existing in enumerate(merged_values):
            if existing is value:
                if effect != merged_effects[i] and MemoryEffect.PARAM not in (
                    effect,
                    merged_effects[i],
                ):
                    merged_effects[i] = MemoryEffect.READ_WRITE
                elif merged_effects[i] == MemoryEffect.PARAM:
                    merged_effects[i] = effect
                return i
        merged_values.append(value)
        merged_effects.append(effect)
        return len(merged_values) - 1

    for node in nodes:
        for operand, effect in zip(node.operands, node.effects):
            add(operand, effect)

    inputs = [v for v, e in zip(merged_values, merged_effects) if e == MemoryEffect.READ]
    outputs = [v for v, e in zip(merged_values, merged_effects) if e == MemoryEffect.WRITE]
    inouts = [v for v, e in zip(merged_values, merged_effects) if e == MemoryEffect.READ_WRITE]
    params = [v for v, e in zip(merged_values, merged_effects) if e == MemoryEffect.PARAM]
    merged = NodeOp.create(
        inputs=inputs,
        outputs=outputs,
        inouts=inouts,
        params=params,
        label="+".join(n.label or "node" for n in nodes),
    )
    block.insert(block.index_of(last), merged)

    for node in nodes:
        # Move the node's body ops into the merged node, rewiring its block
        # arguments to the merged node's arguments.
        mapping: Dict[Value, Value] = {}
        for operand, argument in zip(node.operands, node.body.arguments):
            mapping[argument] = merged.block_argument_for(operand)
        for op in list(node.body.operations):
            op.detach()
            merged.body.append(op)
            # Rewire operands referencing old block arguments.
            for nested in op.walk():
                for i, nested_operand in enumerate(nested.operands):
                    if nested_operand in mapping:
                        nested.set_operand(i, mapping[nested_operand])
        node.erase()
    return merged


# ---------------------------------------------------------------------------
# Data path balancing
# ---------------------------------------------------------------------------


def node_depths(schedule: ScheduleOp) -> Dict[int, int]:
    """Longest-path depth of every node in the schedule's dataflow DAG."""
    nodes = schedule.nodes
    index_of = {id(node): i for i, node in enumerate(nodes)}
    edges: Dict[int, List[int]] = {i: [] for i in range(len(nodes))}
    for op in schedule.body.operations:
        if isinstance(op, (BufferOp, StreamOp)):
            value = op.result()
        else:
            continue
        producers = [n for n in get_node_users(value) if n.writes(value)]
        consumers = [n for n in get_node_users(value) if n.reads(value)]
        for producer in producers:
            for consumer in consumers:
                if producer is not consumer:
                    edges[index_of[id(producer)]].append(index_of[id(consumer)])
    # Also order through externally passed buffers (schedule arguments).
    for argument in schedule.body.arguments:
        if not isinstance(argument.type, MemRefType):
            continue
        producers = [n for n in nodes if n.writes(argument)]
        consumers = [n for n in nodes if n.reads(argument)]
        for producer in producers:
            for consumer in consumers:
                pi, ci = index_of[id(producer)], index_of[id(consumer)]
                if pi < ci:
                    edges[pi].append(ci)

    depth = [0] * len(nodes)
    # Nodes are in program order which is a topological order for acyclic
    # dataflow; iterate a few times to be safe with back edges.
    for _ in range(len(nodes)):
        changed = False
        for i in range(len(nodes)):
            for j in edges[i]:
                if depth[j] < depth[i] + 1:
                    depth[j] = depth[i] + 1
                    changed = True
        if not changed:
            break
    return {id(node): depth[i] for i, node in enumerate(nodes)}


@dataclasses.dataclass
class BalanceReport:
    """Summary of the data-path balancing transformation."""

    buffers_deepened: int = 0
    copy_nodes_inserted: int = 0
    soft_fifos: int = 0
    token_streams: int = 0

    @property
    def total_actions(self) -> int:
        return (
            self.buffers_deepened
            + self.copy_nodes_inserted
            + self.soft_fifos
            + self.token_streams
        )


def balance_data_paths(
    schedule: ScheduleOp,
    on_chip_bit_budget: int = 4 * 1024 * 1024 * 8,
    insert_copy_nodes: bool = False,
) -> BalanceReport:
    """Balance unequal data paths in the schedule.

    For every internal buffer whose consumer sits more than one level deeper
    than its producer, the buffer must be able to hold the extra in-flight
    frames.  Small buffers are deepened on-chip (method 1: buffer
    duplication; optionally materialized as an explicit chain of copy nodes);
    large buffers are spilled to external memory as soft FIFOs and the
    producer/consumer pair is synchronized through 1-bit token streams
    (method 2: elastic node execution).
    """
    report = BalanceReport()
    depths = node_depths(schedule)
    builder = Builder.at_end(schedule.body)

    for buffer_op in list(_internal_buffers(schedule)):
        buffer = buffer_op.result()
        producers = get_producers(buffer)
        consumers = get_consumers(buffer)
        if not producers or not consumers:
            continue
        producer_depth = min(depths.get(id(p), 0) for p in producers)
        consumer_depth = max(depths.get(id(c), 0) for c in consumers)
        slack = consumer_depth - producer_depth
        if slack <= 1:
            continue
        required_stages = slack + 1  # frames in flight along the longer path
        if buffer_op.depth >= required_stages:
            continue
        buffer_bits = buffer_op.memref_type.bitwidth * required_stages
        if buffer_bits <= on_chip_bit_budget:
            # Method (1): on-chip duplication — modelled by raising the
            # ping-pong stage count of the buffer.
            buffer_op.set_depth(required_stages)
            buffer_op.set_attr("balanced", True)
            report.buffers_deepened += 1
            if insert_copy_nodes:
                for _ in range(required_stages - 2):
                    duplicate = _clone_buffer(buffer_op, "_bal")
                    copy_node = NodeOp.create(
                        inputs=[buffer],
                        outputs=[duplicate.result()],
                        label="copy",
                    )
                    copy_builder = Builder.at_end(copy_node.body)
                    copy_builder.insert(
                        CopyOp.create(
                            copy_node.body.arguments[0], copy_node.body.arguments[1]
                        )
                    )
                    block = schedule.body
                    block.insert(block.index_of(producers[0]) + 1, copy_node.detach())
                    report.copy_nodes_inserted += 1
        else:
            # Method (2): soft FIFO in external memory plus token flow.
            buffer_op.set_memory_kind("dram")
            buffer_op.set_depth(required_stages)
            buffer_op.set_attr("soft_fifo", True)
            report.soft_fifos += 1
            for producer in producers:
                for consumer in consumers:
                    stream = StreamOp.create(i1, depth=required_stages, name_hint="token")
                    block = schedule.body
                    block.insert(block.index_of(producer), stream.detach())
                    token = stream.result()
                    producer_arg = producer.add_operand_with_argument(
                        token, MemoryEffect.WRITE
                    )
                    consumer_arg = consumer.add_operand_with_argument(
                        token, MemoryEffect.READ
                    )
                    producer_builder = Builder.at_end(producer.body)
                    one = producer_builder.insert(ConstantOp.create(1, i1))
                    producer_builder.insert(
                        StreamWriteOp.create(producer_arg, one.result())
                    )
                    consumer_builder = Builder.at_start(consumer.body)
                    consumer_builder.insert(StreamReadOp.create(consumer_arg))
                    report.token_streams += 1
    return report


class EliminateMultiProducerPass(Pass):
    """Pass wrapper for multi-producer elimination on every schedule."""

    name = "hida-eliminate-multi-producers"

    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        for schedule in module.walk_ops(ScheduleOp):
            eliminate_multiple_producers(schedule)


class BalanceDataflowPass(Pass):
    """Pass wrapper for data-path balancing on every schedule."""

    name = "hida-balance-dataflow"

    def __init__(self, on_chip_bit_budget: int = 4 * 1024 * 1024 * 8) -> None:
        super().__init__()
        self.on_chip_bit_budget = on_chip_bit_budget

    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        for schedule in module.walk_ops(ScheduleOp):
            balance_data_paths(schedule, self.on_chip_bit_budget)
