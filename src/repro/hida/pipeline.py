"""The end-to-end HIDA compilation pipeline.

``compile_module`` drives the full flow of Figure 3:

1. Functional dataflow construction (Algorithm 1);
2. Functional dataflow optimization — task fusion (Algorithm 2);
3. linalg bufferization / lowering to affine loops (for PyTorch-style
   inputs; C++ kernels are already at the loop level);
4. Structural dataflow construction — dispatch/task to schedule/node
   lowering with explicit buffers and memory effects;
5. Structural dataflow optimization — multi-producer elimination and data
   path balancing;
6. Structural dataflow parallelization — IA+CA unroll factor selection,
   loop pipelining and array partitioning.

The result bundles the transformed module, the schedules, the QoR estimate
from the Vitis-HLS-style estimator, and pass timings.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence

from ..dialects import linalg
from ..dialects.dataflow import ScheduleOp
from ..estimation.platform import Platform, get_platform
from ..estimation.qor import DesignEstimate, QoREstimator
from ..ir.builtin import ModuleOp
from ..ir.verifier import verify
from ..transforms.canonicalize import eliminate_dead_code
from ..transforms.linalg_to_affine import lower_linalg_to_affine
from .dataflow_opt import (
    BalanceReport,
    balance_data_paths,
    eliminate_multiple_producers,
)
from .functional import (
    FusionPattern,
    construct_functional_dataflow,
    fuse_dataflow_tasks,
)
from .parallelize import (
    ParallelizationOptions,
    ParallelizationResult,
    count_misalignments,
    parallelize_function_bands,
    parallelize_schedule,
)
from .structural import lower_to_structural_dataflow

__all__ = [
    "HidaOptions",
    "CompileResult",
    "WorkloadSpec",
    "compile_module",
    "compile_workload",
    "HidaCompiler",
]


@dataclasses.dataclass
class HidaOptions:
    """User-facing options of the HIDA pipeline."""

    platform: str = "vu9p-slr"
    max_parallel_factor: int = 32
    #: Tile size used for external-memory tiling of large buffers (elements
    #: along each tiled dimension); 0 disables tiling.
    tile_size: int = 16
    #: Enable the task-fusion step (Algorithm 2).
    fuse_tasks: bool = True
    #: Enable data-path balancing (Section 6.4.2).
    balance_paths: bool = True
    #: Enable multi-producer elimination (Section 6.4.1).
    eliminate_multi_producers: bool = True
    #: Enable coarse-grained dataflow (schedule-level overlap).  When off the
    #: design is estimated as a sequential (non-dataflow) implementation.
    enable_dataflow: bool = True
    #: Parallelization mode switches (IA / CA ablations of Figure 11).
    intensity_aware: bool = True
    connection_aware: bool = True
    #: Target initiation interval for pipelined loops (DSE axis).
    target_ii: int = 1
    #: On-chip buffer budget in bits used by tiling and path balancing.
    on_chip_bit_budget: int = 4 * 1024 * 1024 * 8
    #: Verify the IR after each major stage (slower, useful in tests).
    verify: bool = False
    fusion_patterns: Optional[Sequence[FusionPattern]] = None

    def parallelization_options(self) -> ParallelizationOptions:
        return ParallelizationOptions(
            max_parallel_factor=self.max_parallel_factor,
            intensity_aware=self.intensity_aware,
            connection_aware=self.connection_aware,
            target_ii=self.target_ii,
        )

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of every option, suitable for hashing and caching.

        ``fusion_patterns`` is represented by the pattern class names: the
        stock patterns are stateless, so the names identify the behaviour.
        Custom pattern classes round-trip only if :meth:`from_dict` can find
        them among :func:`default_fusion_patterns` (unknown names raise).
        """
        data = dataclasses.asdict(self)
        if self.fusion_patterns is None:
            data["fusion_patterns"] = None
        else:
            data["fusion_patterns"] = [
                type(pattern).__name__ for pattern in self.fusion_patterns
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HidaOptions":
        from .functional import default_fusion_patterns

        data = dict(data)
        names = data.pop("fusion_patterns", None)
        patterns = None
        if names is not None:
            by_name = {type(p).__name__: p for p in default_fusion_patterns()}
            try:
                patterns = [by_name[name] for name in names]
            except KeyError as exc:
                raise ValueError(f"unknown fusion pattern {exc.args[0]!r}") from exc
        known = {f.name for f in dataclasses.fields(cls)}
        options = cls(**{k: v for k, v in data.items() if k in known})
        options.fusion_patterns = patterns
        return options

    def fingerprint(self) -> str:
        """Stable content hash of the full option set."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CompileResult:
    """Everything produced by one HIDA compilation."""

    module: ModuleOp
    schedules: List[ScheduleOp]
    estimate: DesignEstimate
    parallelization: Optional[ParallelizationResult]
    balance_report: Optional[BalanceReport]
    options: HidaOptions
    compile_seconds: float
    stage_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    misalignments: int = 0

    @property
    def throughput(self) -> float:
        return self.estimate.throughput

    @property
    def platform(self) -> Platform:
        return get_platform(self.options.platform)

    def utilization(self) -> Dict[str, float]:
        return self.estimate.utilization(self.platform)

    def max_utilization(self) -> float:
        return self.estimate.max_utilization(self.platform)

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the benchmark harnesses."""
        resources = self.estimate.resources
        return {
            "throughput": self.throughput,
            "latency_cycles": self.estimate.latency,
            "interval_cycles": self.estimate.interval,
            "lut": resources.lut,
            "ff": resources.ff,
            "dsp": resources.dsp,
            "bram": resources.bram,
            "max_utilization": self.max_utilization(),
            "compile_seconds": self.compile_seconds,
            "num_nodes": sum(len(s.nodes) for s in self.schedules),
            "misalignments": float(self.misalignments),
        }


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A picklable description of *what to compile*.

    Design-space exploration fans compilations out to worker processes, and
    IR modules do not pickle (they are densely linked object graphs).  A
    workload spec carries only the recipe — frontend kind plus workload name
    — and each worker rebuilds the module locally with :meth:`build`, which
    is deterministic and cheap relative to the pipeline itself.
    """

    #: ``"kernel"`` (PolyBench C++ frontend) or ``"model"`` (nn frontend).
    kind: str
    #: Kernel or model name understood by the corresponding frontend.
    name: str
    #: Batch size (models only).
    batch: int = 1

    def build(self) -> ModuleOp:
        if self.kind == "kernel":
            from ..frontend.cpp import build_kernel

            return build_kernel(self.name)
        if self.kind == "model":
            from ..frontend.nn import build_model

            return build_model(self.name, batch=self.batch)
        raise ValueError(f"unknown workload kind {self.kind!r}")

    def label(self) -> str:
        if self.kind == "model" and self.batch != 1:
            return f"{self.name}@b{self.batch}"
        return self.name


def compile_workload(
    spec: WorkloadSpec, options: Optional[HidaOptions] = None
) -> CompileResult:
    """Build a workload from its spec and run the full HIDA pipeline.

    This is the option-driven entry point used by DSE workers: both
    arguments are picklable, so the call can cross a process boundary, and
    the module is constructed inside the worker.
    """
    return compile_module(spec.build(), options)


def _has_linalg_ops(module: ModuleOp) -> bool:
    return any(isinstance(op, linalg.LinalgOp) for op in module.walk())


def _apply_tiling_hints(schedules: Sequence[ScheduleOp], options: HidaOptions) -> None:
    """Record tiling decisions on nodes and spill oversized buffers off-chip.

    HIDA uses loop tiling plus local tile buffers so that only small tiles of
    intermediate results stay on-chip while the full arrays live in external
    memory.  The reproduction records the tile size on each node (consumed by
    the QoR model for burst/address-generation effects) and re-places buffers
    that exceed the on-chip budget into DRAM, shrinking their on-chip
    footprint to the tile working set.
    """
    if options.tile_size <= 0:
        return
    # A buffer larger than one tile working set (tile_size^2 elements per
    # ping-pong stage, 8 bits assumed minimum) lives in external memory with
    # an on-chip tile cache, mirroring the tile-load/compute/store sub-node
    # structure; only small buffers stay fully on-chip.
    for schedule in schedules:
        for node in schedule.nodes:
            node.set_attr("tile_size", options.tile_size)
        per_buffer_budget = options.tile_size * options.tile_size * 8 * 64
        for buffer in schedule.buffers:
            bits = buffer.memref_type.bitwidth * buffer.depth
            if bits > per_buffer_budget:
                buffer.set_memory_kind("dram")
                buffer.set_attr("tiled", True)
                buffer.set_attr("tile_elements", options.tile_size * options.tile_size)


def compile_module(module: ModuleOp, options: Optional[HidaOptions] = None) -> CompileResult:
    """Run the full HIDA pipeline on ``module`` (modified in place)."""
    options = options or HidaOptions()
    platform = get_platform(options.platform)
    estimator = QoREstimator(platform)
    stage_seconds: Dict[str, float] = {}
    start = time.perf_counter()

    def stage(name: str):
        stage_seconds[name] = time.perf_counter()

    def stage_done(name: str):
        stage_seconds[name] = time.perf_counter() - stage_seconds[name]

    # 1. Functional dataflow construction.
    stage("construct")
    construct_functional_dataflow(module)
    stage_done("construct")
    if options.verify:
        verify(module)

    # 2. Functional dataflow optimization (task fusion).
    stage("fusion")
    if options.fuse_tasks:
        fuse_dataflow_tasks(module, options.fusion_patterns)
    stage_done("fusion")
    if options.verify:
        verify(module)

    # 3. Lower tensor-level (linalg) programs to affine loops over buffers.
    stage("bufferize")
    if _has_linalg_ops(module):
        lower_linalg_to_affine(module)
        eliminate_dead_code(module)
    stage_done("bufferize")
    if options.verify:
        verify(module)

    # 4. Structural dataflow construction.
    stage("structural")
    schedules = lower_to_structural_dataflow(module)
    stage_done("structural")
    if options.verify:
        verify(module)

    # 5. Structural dataflow optimization.
    stage("dataflow-opt")
    balance_report = BalanceReport()
    if options.eliminate_multi_producers:
        for schedule in schedules:
            eliminate_multiple_producers(schedule)
    if options.balance_paths:
        for schedule in schedules:
            report = balance_data_paths(
                schedule, on_chip_bit_budget=options.on_chip_bit_budget
            )
            balance_report.buffers_deepened += report.buffers_deepened
            balance_report.copy_nodes_inserted += report.copy_nodes_inserted
            balance_report.soft_fifos += report.soft_fifos
            balance_report.token_streams += report.token_streams
    _apply_tiling_hints(schedules, options)
    stage_done("dataflow-opt")
    if options.verify:
        verify(module)

    # 6. Structural dataflow parallelization.
    stage("parallelize")
    parallelization = ParallelizationResult()
    misalignments = 0
    for schedule in schedules:
        result = parallelize_schedule(schedule, options.parallelization_options())
        parallelization.unroll_factors.update(result.unroll_factors)
        parallelization.parallel_factors.update(result.parallel_factors)
        parallelization.intensities.update(result.intensities)
        parallelization.constraint_violations += result.constraint_violations
        parallelization.proposals_evaluated += result.proposals_evaluated
        misalignments += count_misalignments(schedule)
    if not schedules:
        # Single-band kernels: apply the intra-band loop optimizations only.
        for func in module.functions:
            result = parallelize_function_bands(func, options.parallelization_options())
            parallelization.unroll_factors.update(result.unroll_factors)
            parallelization.parallel_factors.update(result.parallel_factors)
            parallelization.intensities.update(result.intensities)
    stage_done("parallelize")
    if options.verify:
        verify(module)

    # QoR estimation of the final design.
    stage("estimate")
    estimate = _estimate_design(module, schedules, estimator, options)
    stage_done("estimate")

    return CompileResult(
        module=module,
        schedules=schedules,
        estimate=estimate,
        parallelization=parallelization,
        balance_report=balance_report,
        options=options,
        compile_seconds=time.perf_counter() - start,
        stage_seconds=stage_seconds,
        misalignments=misalignments,
    )


def _estimate_design(
    module: ModuleOp,
    schedules: Sequence[ScheduleOp],
    estimator: QoREstimator,
    options: HidaOptions,
) -> DesignEstimate:
    if schedules:
        estimates = [
            estimator.estimate_schedule(schedule, dataflow=options.enable_dataflow)
            for schedule in schedules
        ]
        # The top-level schedule dominates; nested schedules already
        # contribute through their parent node's loops.
        return max(estimates, key=lambda e: e.latency)
    # No schedule was formed (single-band kernels): estimate the function.
    func = module.functions[0] if module.functions else None
    if func is None:
        raise ValueError("module has no function to estimate")
    return estimator.estimate_function(func, dataflow=False)


class HidaCompiler:
    """Object-style wrapper around :func:`compile_module`.

    Keeps a default option set and exposes convenience entry points for the
    two supported frontends.
    """

    def __init__(self, options: Optional[HidaOptions] = None) -> None:
        self.options = options or HidaOptions()

    def compile(self, module: ModuleOp, **overrides) -> CompileResult:
        options = dataclasses.replace(self.options, **overrides) if overrides else self.options
        return compile_module(module, options)

    def compile_model(self, name: str, batch: int = 1, **overrides) -> CompileResult:
        """Trace a model from the zoo and compile it."""
        from ..frontend.nn import build_model

        module = build_model(name, batch=batch)
        return self.compile(module, **overrides)

    def compile_kernel(self, name: str, **overrides) -> CompileResult:
        """Build a PolyBench kernel and compile it."""
        from ..frontend.cpp import build_kernel

        module = build_kernel(name)
        return self.compile(module, **overrides)
