"""The end-to-end HIDA compilation pipeline (legacy option-driven surface).

The actual driver lives in :mod:`repro.compiler`: every Figure-3 phase is a
registered :class:`~repro.compiler.stages.CompilationStage`, composed by a
textual pipeline spec and executed by a
:class:`~repro.compiler.driver.Compiler`.  This module keeps the historical
entry points as thin wrappers over the default spec:

* :func:`compile_module` / :func:`compile_workload` run the spec derived
  from a :class:`HidaOptions` (byte-identical :class:`CompileResult`\\ s to
  the pre-refactor monolithic driver);
* :class:`HidaOptions` remains the picklable option bag used by DSE and
  the benchmark harnesses, and maps losslessly onto pipeline specs via
  :meth:`HidaOptions.to_pipeline_spec`.

New code should prefer the spec-first front door::

    from repro.compiler import Compiler

    result = Compiler.from_spec(
        "construct-dataflow,fuse-tasks,lower-linalg,lower-structural,"
        "eliminate-multi-producers,balance,tile,parallelize,estimate",
        platform="zu3eg",
    ).run(module)
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..dialects.dataflow import ScheduleOp
from ..estimation.platform import Platform, get_platform
from ..estimation.qor import DesignEstimate
from ..ir.builtin import ModuleOp
from .dataflow_opt import BalanceReport
from .functional import FusionPattern
from .parallelize import ParallelizationOptions, ParallelizationResult

__all__ = [
    "HidaOptions",
    "CompileResult",
    "WorkloadSpec",
    "compile_module",
    "compile_workload",
    "HidaCompiler",
]


@dataclasses.dataclass
class HidaOptions:
    """User-facing options of the HIDA pipeline.

    .. deprecated:: the boolean ablation switches (``fuse_tasks``,
       ``balance_paths``, ``eliminate_multi_producers``, ``intensity_aware``,
       ``connection_aware``) survive for the option-driven entry points, but
       the first-class way to express an ablation is a pipeline spec with
       the corresponding stage dropped or reconfigured — see
       :meth:`to_pipeline_spec` and :mod:`repro.baselines.ablation`.
    """

    platform: str = "vu9p-slr"
    max_parallel_factor: int = 32
    #: Tile size used for external-memory tiling of large buffers (elements
    #: along each tiled dimension); 0 disables tiling.
    tile_size: int = 16
    #: Enable the task-fusion step (Algorithm 2).
    fuse_tasks: bool = True
    #: Enable data-path balancing (Section 6.4.2).
    balance_paths: bool = True
    #: Enable multi-producer elimination (Section 6.4.1).
    eliminate_multi_producers: bool = True
    #: Enable coarse-grained dataflow (schedule-level overlap).  When off the
    #: design is estimated as a sequential (non-dataflow) implementation.
    enable_dataflow: bool = True
    #: Parallelization mode switches (IA / CA ablations of Figure 11).
    intensity_aware: bool = True
    connection_aware: bool = True
    #: Target initiation interval for pipelined loops (DSE axis).
    target_ii: int = 1
    #: On-chip buffer budget in bits used by tiling and path balancing.
    on_chip_bit_budget: int = 4 * 1024 * 1024 * 8
    #: Verify the IR after each major stage (slower, useful in tests).
    verify: bool = False
    fusion_patterns: Optional[Sequence[FusionPattern]] = None

    def parallelization_options(self) -> ParallelizationOptions:
        return ParallelizationOptions(
            max_parallel_factor=self.max_parallel_factor,
            intensity_aware=self.intensity_aware,
            connection_aware=self.connection_aware,
            target_ii=self.target_ii,
        )

    def to_pipeline_spec(self) -> str:
        """Canonical textual pipeline spec equivalent to these options."""
        from ..compiler import spec_from_options

        return spec_from_options(self).print()

    # ------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict of every option, suitable for hashing and caching.

        ``fusion_patterns`` is represented by the pattern class names: the
        stock patterns are stateless, so the names identify the behaviour.
        Custom pattern classes round-trip only if :meth:`from_dict` can find
        them among :func:`default_fusion_patterns` (unknown names raise).
        """
        data = dataclasses.asdict(self)
        if self.fusion_patterns is None:
            data["fusion_patterns"] = None
        else:
            data["fusion_patterns"] = [
                type(pattern).__name__ for pattern in self.fusion_patterns
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "HidaOptions":
        from .functional import fusion_patterns_by_name

        data = dict(data)
        names = data.pop("fusion_patterns", None)
        patterns = None
        if names is not None:
            by_name = fusion_patterns_by_name()
            unknown = [name for name in names if name not in by_name]
            if unknown:
                raise ValueError(
                    f"unknown fusion pattern(s) {', '.join(map(repr, unknown))}; "
                    f"known patterns: {', '.join(sorted(by_name))}"
                )
            patterns = [by_name[name] for name in names]
        known = {f.name for f in dataclasses.fields(cls)}
        options = cls(**{k: v for k, v in data.items() if k in known})
        options.fusion_patterns = patterns
        return options

    def fingerprint(self) -> str:
        """Stable content hash of the full option set."""
        text = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclasses.dataclass
class CompileResult:
    """Everything produced by one HIDA compilation."""

    module: ModuleOp
    schedules: List[ScheduleOp]
    estimate: DesignEstimate
    parallelization: Optional[ParallelizationResult]
    balance_report: Optional[BalanceReport]
    options: HidaOptions
    compile_seconds: float
    stage_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    misalignments: int = 0

    @property
    def throughput(self) -> float:
        return self.estimate.throughput

    @property
    def platform(self) -> Platform:
        return get_platform(self.options.platform)

    def utilization(self) -> Dict[str, float]:
        return self.estimate.utilization(self.platform)

    def max_utilization(self) -> float:
        return self.estimate.max_utilization(self.platform)

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the benchmark harnesses."""
        resources = self.estimate.resources
        return {
            "throughput": self.throughput,
            "latency_cycles": self.estimate.latency,
            "interval_cycles": self.estimate.interval,
            "lut": resources.lut,
            "ff": resources.ff,
            "dsp": resources.dsp,
            "bram": resources.bram,
            "max_utilization": self.max_utilization(),
            "compile_seconds": self.compile_seconds,
            "num_nodes": sum(len(s.nodes) for s in self.schedules),
            "misalignments": float(self.misalignments),
        }


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """A picklable description of *what to compile*.

    Design-space exploration fans compilations out to worker processes, and
    IR modules do not pickle (they are densely linked object graphs).  A
    workload spec is the thin serialization of a :mod:`repro.workloads`
    registry handle: it carries only the recipe — frontend kind, registered
    workload name and parameter bindings — and each worker rebuilds the
    module locally with :meth:`build`, which resolves through the registry
    and is deterministic and cheap relative to the pipeline itself.
    """

    #: ``"kernel"`` (PolyBench C++ frontend) or ``"model"`` (nn frontend).
    kind: str
    #: Registered workload name (see :func:`repro.workloads.list_workloads`).
    name: str
    #: Batch size (models only).
    batch: int = 1
    #: Extra registry parameter bindings beyond ``batch`` (e.g. a kernel's
    #: problem size), as sorted (name, value) pairs so specs stay hashable.
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        # Normalize JSON-decoded lists back into hashable tuple form.
        if not isinstance(self.params, tuple):
            object.__setattr__(
                self, "params", tuple((k, v) for k, v in self.params)
            )

    def workload(self):
        """The bound :class:`repro.workloads.Workload` handle of this spec."""
        if self.kind not in ("kernel", "model"):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        from ..workloads import get_workload

        return get_workload(self)

    def build(self) -> ModuleOp:
        return self.workload().build_module()

    def label(self) -> str:
        suffix = "".join(f"+{k}{v}" for k, v in self.params)
        if self.kind == "model" and self.batch != 1:
            return f"{self.name}@b{self.batch}{suffix}"
        return f"{self.name}{suffix}"


def compile_workload(
    spec: Union[WorkloadSpec, str], options: Optional[HidaOptions] = None
) -> CompileResult:
    """Build a workload from its spec and run the full HIDA pipeline.

    This is the option-driven entry point used by DSE workers: both
    arguments are picklable, so the call can cross a process boundary, and
    the module is constructed inside the worker.  ``spec`` may also be a
    registry workload id (``"resnet18@batch=4"``) or a bound
    :class:`repro.workloads.Workload` handle.
    """
    if isinstance(spec, WorkloadSpec):
        module = spec.build()
    else:
        from ..workloads import as_module

        module = as_module(spec)
    return compile_module(module, options)


#: Stage-timing buckets the pre-refactor monolithic driver always recorded,
#: even for stages its option flags disabled.
_LEGACY_STAGE_KEYS = (
    "construct",
    "fusion",
    "bufferize",
    "structural",
    "dataflow-opt",
    "parallelize",
    "estimate",
)


def compile_module(module: ModuleOp, options: Optional[HidaOptions] = None) -> CompileResult:
    """Run the full HIDA pipeline on ``module`` (modified in place).

    Thin wrapper over the spec-driven front door: the options map onto the
    default pipeline spec (stages dropped or reconfigured per flag) and a
    :class:`~repro.compiler.driver.Compiler` executes it.  Results are
    identical to the pre-refactor monolithic driver, including the
    ``stage_seconds`` keys: stages disabled by flags are backfilled as
    zero-duration buckets, exactly as the old driver timed their skipped
    bodies.
    """
    from ..compiler import Compiler

    result = Compiler.from_options(options or HidaOptions()).run(module)
    for key in _LEGACY_STAGE_KEYS:
        result.stage_seconds.setdefault(key, 0.0)
    return result


class HidaCompiler:
    """Object-style wrapper around :func:`compile_module`.

    Keeps a default option set and exposes convenience entry points for the
    two supported frontends.  For spec-first composition (custom stage
    orders, ablations, observers) use :class:`repro.compiler.Compiler`.
    """

    def __init__(self, options: Optional[HidaOptions] = None) -> None:
        self.options = options or HidaOptions()

    def compile(self, module: ModuleOp, **overrides) -> CompileResult:
        options = dataclasses.replace(self.options, **overrides) if overrides else self.options
        return compile_module(module, options)

    def compile_model(self, name: str, batch: int = 1, **overrides) -> CompileResult:
        """Trace a model from the zoo and compile it."""
        from ..frontend.nn import build_model

        module = build_model(name, batch=batch)
        return self.compile(module, **overrides)

    def compile_kernel(self, name: str, **overrides) -> CompileResult:
        """Build a PolyBench kernel and compile it."""
        from ..frontend.cpp import build_kernel

        module = build_kernel(name)
        return self.compile(module, **overrides)
