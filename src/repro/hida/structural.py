"""Functional to Structural dataflow lowering (Section 6.3).

Three procedures, matching the paper:

1. **Buffer generation** — every on-chip ``memref.alloc`` that carries data
   between tasks becomes a ``hida.buffer`` with default partition, layout and
   placement attributes (and ping-pong depth 2 so producers and consumers can
   interleave their accesses).
2. **dispatch → schedule mapping** — each ``hida.dispatch`` becomes an
   isolated ``hida.schedule``; values defined outside (function arguments,
   weight globals) are passed in explicitly as operands/block arguments.
3. **task → node mapping** — each ``hida.task`` becomes an isolated
   ``hida.node`` whose operands carry explicit memory-effect information,
   derived by analysing the loads, stores and copies in the task body.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..dialects.affine import AffineLoadOp, AffineStoreOp
from ..dialects.dataflow import (
    BufferOp,
    DispatchOp,
    MemoryEffect,
    NodeOp,
    ScheduleOp,
    TaskOp,
    YieldOp,
)
from ..dialects.memref import AllocOp, CopyOp
from ..ir.builtin import FuncOp, ModuleOp
from ..ir.core import Operation, Value
from ..ir.passes import AnalysisManager, Pass
from ..ir.types import MemRefType

__all__ = [
    "convert_allocs_to_buffers",
    "analyze_memory_effects",
    "convert_task_to_node",
    "convert_dispatch_to_schedule",
    "lower_to_structural_dataflow",
    "LowerToStructuralPass",
]


def convert_allocs_to_buffers(func: FuncOp, default_depth: int = 2) -> int:
    """Procedure (1): replace on-chip allocs with ``hida.buffer`` ops.

    Returns the number of converted buffers.  Buffers default to ping-pong
    depth ``default_depth`` so inter-task communication can overlap.
    """
    converted = 0
    for alloc in list(func.walk_ops(AllocOp)):
        memref_type: MemRefType = alloc.memref_type
        buffer = BufferOp.create(
            memref_type,
            depth=default_depth,
            memory_kind="bram_t2p" if memref_type.is_on_chip else "dram",
            name_hint=alloc.result().name_hint,
        )
        block = alloc.parent
        block.insert(block.index_of(alloc), buffer)
        alloc.result().replace_all_uses_with(buffer.result())
        alloc.erase()
        converted += 1
    return converted


def analyze_memory_effects(
    container: Operation,
) -> Tuple[List[Value], Dict[int, str]]:
    """Find external values used inside ``container`` and their memory effects.

    Returns the externally-defined values in first-use order plus a map from
    ``id(value)`` to the effect (``read``/``write``/``readwrite``/``param``).
    """
    inside = set()
    for op in container.walk():
        inside.add(id(op))

    order: List[Value] = []
    effects: Dict[int, str] = {}

    def note(value: Value, reads: bool, writes: bool) -> None:
        defining = value.defining_op
        if defining is not None and id(defining) in inside:
            return  # locally defined
        if defining is None:
            owner_block = value.owner
            owner_op = owner_block.parent_op if owner_block is not None else None
            if owner_op is not None and id(owner_op) in inside:
                return  # argument of a nested region
        if not any(value is v for v in order):
            order.append(value)
            effects[id(value)] = MemoryEffect.PARAM
        current = effects[id(value)]
        if reads and writes:
            effects[id(value)] = MemoryEffect.READ_WRITE
        elif reads:
            effects[id(value)] = (
                MemoryEffect.READ_WRITE
                if MemoryEffect.writes(current)
                else MemoryEffect.READ
            )
        elif writes:
            effects[id(value)] = (
                MemoryEffect.READ_WRITE
                if MemoryEffect.reads(current)
                else MemoryEffect.WRITE
            )

    for op in container.walk():
        if id(op) not in inside:
            continue
        if isinstance(op, AffineLoadOp):
            note(op.memref, reads=True, writes=False)
            for index in op.index_operands:
                note(index, reads=False, writes=False)
        elif isinstance(op, AffineStoreOp):
            note(op.memref, reads=False, writes=True)
            note(op.value, reads=False, writes=False)
            for index in op.index_operands:
                note(index, reads=False, writes=False)
        elif isinstance(op, CopyOp):
            note(op.source, reads=True, writes=False)
            note(op.target, reads=False, writes=True)
        else:
            for operand in op.operands:
                if isinstance(operand.type, MemRefType):
                    # Conservative: unknown use of a memref is read-write.
                    note(operand, reads=True, writes=True)
                else:
                    note(operand, reads=False, writes=False)
    return order, effects


def convert_task_to_node(task: TaskOp) -> NodeOp:
    """Procedure (3): map one task to an isolated node with explicit effects."""
    values, effects = analyze_memory_effects(task)
    inputs = [v for v in values if effects[id(v)] == MemoryEffect.READ]
    outputs = [v for v in values if effects[id(v)] == MemoryEffect.WRITE]
    inouts = [v for v in values if effects[id(v)] == MemoryEffect.READ_WRITE]
    params = [v for v in values if effects[id(v)] == MemoryEffect.PARAM]

    node = NodeOp.create(
        inputs=inputs,
        outputs=outputs,
        inouts=inouts,
        params=params,
        label=task.label,
    )
    if task.has_attr("tile_size"):
        node.set_attr("tile_size", task.get_attr("tile_size"))
    block = task.parent
    block.insert(block.index_of(task), node)

    # Move the payload into the node body and rewire external values to the
    # node's block arguments (the node is isolated from above).
    for op in list(task.body.operations):
        if isinstance(op, YieldOp):
            continue
        op.detach()
        node.body.append(op)
    for operand, argument in zip(node.operands, node.body.arguments):
        operand.replace_uses_if(
            argument, lambda user: user is not node and node.is_ancestor_of(user)
        )

    if task.num_results:
        # Any remaining task results must be dead by now (tensors were
        # bufferized); drop them.
        for result in task.results:
            if result.has_uses:
                raise RuntimeError(
                    "task still produces SSA results at structural lowering; "
                    "run the linalg bufferization first"
                )
        task.results = []
    if task.yield_op is not None:
        task.yield_op.set_operands([])
    task.erase()
    return node


def convert_dispatch_to_schedule(dispatch: DispatchOp) -> ScheduleOp:
    """Procedure (2): map a dispatch (whose tasks became nodes) to a schedule."""
    block = dispatch.parent
    if block is None:
        raise ValueError("dispatch has no parent block")

    # Pull buffers used exclusively by this dispatch's nodes into the schedule
    # so they become *internal* buffers (eligible for duplication).
    dispatch_ops = set(id(op) for op in dispatch.walk())
    internal_buffers: List[BufferOp] = []
    parent_block = block
    func_block = dispatch.parent_op.body if dispatch.parent_op else None
    if func_block is not None:
        for op in list(func_block.operations):
            if isinstance(op, BufferOp):
                users = op.result().users
                if users and all(id(u) in dispatch_ops or u is dispatch for u in users):
                    internal_buffers.append(op)

    values, effects = analyze_memory_effects(dispatch)
    # Values produced by internal buffers will move inside; exclude them.
    internal_ids = {id(b.result()) for b in internal_buffers}
    external_values = [v for v in values if id(v) not in internal_ids]

    schedule = ScheduleOp.create(operands=external_values, label=dispatch.get_attr("label", ""))
    block.insert(block.index_of(dispatch), schedule)

    # Move internal buffers, then the dispatch body (nodes) into the schedule.
    for buffer in internal_buffers:
        buffer.detach()
        schedule.body.append(buffer)
    for op in list(dispatch.body.operations):
        if isinstance(op, YieldOp):
            continue
        op.detach()
        schedule.body.append(op)

    # Rewire external values to schedule block arguments inside the schedule.
    for operand, argument in zip(schedule.operands, schedule.body.arguments):
        argument.name_hint = operand.name_hint
        operand.replace_uses_if(
            argument,
            lambda user: user is not schedule and schedule.is_ancestor_of(user),
        )

    if dispatch.num_results:
        for result in dispatch.results:
            if result.has_uses:
                raise RuntimeError("dispatch results must be dead before lowering")
        dispatch.results = []
    dispatch.erase()
    return schedule


def lower_to_structural_dataflow(module: ModuleOp, default_depth: int = 2) -> List[ScheduleOp]:
    """Run the full Functional → Structural lowering on a module.

    Returns the schedules created (one per dispatch, innermost first).
    """
    schedules: List[ScheduleOp] = []
    for func in module.functions:
        convert_allocs_to_buffers(func, default_depth=default_depth)
        # Innermost dispatches first so nested hierarchies lower bottom-up.
        dispatches = list(func.walk_ops(DispatchOp))
        for dispatch in dispatches:
            for task in list(dispatch.body.operations):
                if isinstance(task, TaskOp):
                    convert_task_to_node(task)
        for dispatch in dispatches:
            schedules.append(convert_dispatch_to_schedule(dispatch))
    return schedules


class LowerToStructuralPass(Pass):
    """Pass wrapper for the Functional → Structural dataflow lowering."""

    name = "hida-lower-to-structural"

    def __init__(self, default_depth: int = 2) -> None:
        super().__init__()
        self.default_depth = default_depth

    def run(self, module: ModuleOp, analyses: AnalysisManager) -> None:
        lower_to_structural_dataflow(module, self.default_depth)
