"""Intensity and connection analysis (Section 6.5, step 1 and 2).

For every dataflow node we record:

* its **computation intensity** — the number of scalar operations it
  executes per invocation (Table 5's intensity column);
* its **loop band** structure — trip counts and which loops are parallel
  (carry no loop-carried dependence);
* its **connections** — for every buffer shared with another node, the
  *permutation map* aligning the two nodes' loop levels and the *scaling
  map* aligning their access strides (Table 4).

These analyses feed the parallel-factor generation and the
connection-constrained DSE of Algorithm 4.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects.affine import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    enclosing_loops,
)
from ..dialects.arith import is_compute_op, is_multiply_accumulate
from ..dialects.dataflow import NodeOp, ScheduleOp
from ..ir.core import Block, Operation, Value
from ..transforms.loop_transforms import loop_bands_of

__all__ = [
    "is_parallel_loop",
    "BandAccess",
    "BandInfo",
    "Connection",
    "band_info_of",
    "node_intensity",
    "collect_band_infos",
    "collect_connections",
    "connection_table",
]


def is_parallel_loop(loop: AffineForOp) -> bool:
    """Whether a loop can be unrolled without breaking a dependence.

    Uses the explicit ``parallel`` attribute when present (set by the linalg
    lowering); otherwise the loop is parallel exactly when the dependence
    engine (:mod:`repro.analysis.dependence`) finds no dependence carried by
    it — distance/direction vectors over the access maps replace the old
    "every store indexes this IV" heuristic, so reductions through affine
    subscripts of any shape are caught.
    """
    if loop.has_attr("parallel"):
        return bool(loop.is_parallel)
    from ..analysis.dependence import loop_carries_dependence

    return not loop_carries_dependence(loop)


@dataclasses.dataclass
class BandAccess:
    """One affine load/store inside a band, normalized to band loop positions.

    ``dim_loop_positions[d]`` is the band-loop index driving buffer dimension
    ``d`` (or None); ``dim_strides[d]`` is the corresponding access stride.
    """

    buffer: Value
    is_store: bool
    dim_loop_positions: List[Optional[int]]
    dim_strides: List[Fraction]

    @property
    def rank(self) -> int:
        return len(self.dim_loop_positions)


@dataclasses.dataclass
class BandInfo:
    """Loop-band structure of a node used by the parallelizer."""

    node: NodeOp
    band: List[AffineForOp]
    trip_counts: List[int]
    parallel_flags: List[bool]
    accesses: List[BandAccess]
    intensity: int
    muls_per_iteration: int

    @property
    def num_loops(self) -> int:
        return len(self.band)

    @property
    def label(self) -> str:
        label = getattr(self.node, "label", "") or self.node.get_attr("sym_name", "")
        if not label and self.band:
            hint = self.band[0].induction_variable.name_hint
            label = f"band_{hint}" if hint else "band"
        return label or "node"

    def unroll_factors(self) -> List[int]:
        return [loop.unroll_factor for loop in self.band]

    def apply_unroll_factors(self, factors: Sequence[int]) -> None:
        for loop, factor in zip(self.band, factors):
            loop.set_unroll_factor(
                max(1, min(int(factor), max(loop.trip_count, 1)))
            )


def _band_accesses(node: NodeOp, band: Sequence[AffineForOp]) -> List[BandAccess]:
    """Collect accesses within the band, normalized to band loop positions."""
    loop_position = {id(loop.induction_variable): i for i, loop in enumerate(band)}
    accesses: List[BandAccess] = []
    root = band[0] if band else node
    for op in root.walk():
        if not isinstance(op, (AffineLoadOp, AffineStoreOp)):
            continue
        access_map = op.access_map
        positions = access_map.result_dim_positions()
        strides = access_map.result_strides()
        index_operands = list(op.index_operands)
        dim_loops: List[Optional[int]] = []
        dim_strides: List[Fraction] = []
        for pos, stride in zip(positions, strides):
            if pos is not None and pos < len(index_operands):
                iv = index_operands[pos]
                dim_loops.append(loop_position.get(id(iv)))
            else:
                dim_loops.append(None)
            dim_strides.append(Fraction(stride) if stride else Fraction(0))
        buffer = op.memref
        accesses.append(
            BandAccess(
                buffer=buffer,
                is_store=isinstance(op, AffineStoreOp),
                dim_loop_positions=dim_loops,
                dim_strides=dim_strides,
            )
        )
    return accesses


def node_intensity(node: Operation) -> int:
    """Computation intensity of a node (Table 5 definition).

    The number of scalar compute operations executed per invocation; nodes
    that only move data fall back to the number of elements they store.
    """
    total_compute = 0
    total_store = 0
    for op in node.walk():
        is_compute = is_compute_op(op)
        is_store = isinstance(op, AffineStoreOp)
        if not (is_compute or is_store):
            continue
        iterations = 1
        for loop in enclosing_loops(op):
            if node.is_ancestor_of(loop):
                iterations *= max(loop.trip_count, 1)
        if is_compute:
            total_compute += iterations
        else:
            total_store += iterations
    return total_compute if total_compute else total_store


def _muls_per_innermost_iteration(band: Sequence[AffineForOp]) -> int:
    if not band:
        return 0
    innermost = band[-1]
    # Walk to the true innermost loop if the band is imperfect.
    current = innermost
    while True:
        inner = [op for op in current.body.operations if isinstance(op, AffineForOp)]
        if not inner:
            break
        current = inner[0]
    return sum(
        1 for op in current.body.operations if is_multiply_accumulate(op)
    )


def band_info_of(node: NodeOp, band: Sequence[AffineForOp]) -> BandInfo:
    """Build the BandInfo record for one band of a node."""
    band = list(band)
    trips = [max(loop.trip_count, 1) for loop in band]
    flags = [is_parallel_loop(loop) for loop in band]
    accesses = _band_accesses(node, band)
    intensity = node_intensity(band[0]) if band else node_intensity(node)
    return BandInfo(
        node=node,
        band=band,
        trip_counts=trips,
        parallel_flags=flags,
        accesses=accesses,
        intensity=intensity,
        muls_per_iteration=_muls_per_innermost_iteration(band),
    )


def collect_band_infos(schedule: ScheduleOp) -> List[BandInfo]:
    """All (node, band) parallelization units of a schedule, in program order."""
    infos: List[BandInfo] = []
    for node in schedule.nodes:
        bands = loop_bands_of(node)
        for band in bands:
            infos.append(band_info_of(node, band))
    return infos


@dataclasses.dataclass
class Connection:
    """A source -> target connection through a shared buffer (Table 4).

    ``links`` holds one entry per buffer dimension where both endpoints have
    a driving loop: ``(source loop position, target loop position, source
    stride, target stride)``.
    """

    source: BandInfo
    target: BandInfo
    buffer: Value
    links: List[Tuple[int, int, Fraction, Fraction]]

    # ----------------------------------------------------------------- maps
    def source_to_target_permutation(self) -> List[Optional[int]]:
        """Indexed by target loop position, gives the linked source loop."""
        result: List[Optional[int]] = [None] * self.target.num_loops
        for s_pos, t_pos, _, _ in self.links:
            result[t_pos] = s_pos
        return result

    def target_to_source_permutation(self) -> List[Optional[int]]:
        """Indexed by source loop position, gives the linked target loop."""
        result: List[Optional[int]] = [None] * self.source.num_loops
        for s_pos, t_pos, _, _ in self.links:
            result[s_pos] = t_pos
        return result

    def source_to_target_scaling(self) -> List[Optional[Fraction]]:
        """Indexed by source loop position: factor mapping source unroll to target."""
        result: List[Optional[Fraction]] = [None] * self.source.num_loops
        for s_pos, _, s_stride, t_stride in self.links:
            if t_stride:
                result[s_pos] = Fraction(s_stride) / Fraction(t_stride)
        return result

    def target_to_source_scaling(self) -> List[Optional[Fraction]]:
        """Indexed by target loop position: factor mapping target unroll to source."""
        result: List[Optional[Fraction]] = [None] * self.target.num_loops
        for _, t_pos, s_stride, t_stride in self.links:
            if s_stride:
                result[t_pos] = Fraction(t_stride) / Fraction(s_stride)
        return result

    # ------------------------------------------------------------ constraints
    def constraints_for(
        self, band: BandInfo, other_factors: Sequence[int]
    ) -> List[Optional[int]]:
        """Alignment constraints on ``band`` given the other endpoint's factors.

        Implements ``permute(unroll_factors ⊙ s_map, p_map)`` of Algorithm 4:
        each of the other endpoint's unroll factors is scaled by the stride
        ratio and permuted onto this band's loop positions.
        """
        constraints: List[Optional[int]] = [None] * band.num_loops
        for s_pos, t_pos, s_stride, t_stride in self.links:
            if band is self.target or band.node is self.target.node and band.band is self.target.band:
                own_pos, other_pos = t_pos, s_pos
                own_stride, other_stride = t_stride, s_stride
            else:
                own_pos, other_pos = s_pos, t_pos
                own_stride, other_stride = s_stride, t_stride
            if other_pos >= len(other_factors):
                continue
            other_factor = other_factors[other_pos]
            if not own_stride:
                continue
            scaled = Fraction(other_factor) * Fraction(abs(other_stride)) / Fraction(
                abs(own_stride)
            )
            value = max(1, int(scaled)) if scaled >= 1 else 1
            constraints[own_pos] = value
        return constraints

    def endpoints(self) -> Tuple[NodeOp, NodeOp]:
        return self.source.node, self.target.node

    def __repr__(self) -> str:
        return (
            f"Connection({self.source.label} -> {self.target.label}, "
            f"buffer={self.buffer.name_hint or 'buf'}, links={self.links})"
        )


def _resolve_buffer_key(value: Value) -> Value:
    """Map node block arguments to the outer value they alias."""
    current = value
    for _ in range(8):
        owner = current.owner
        if owner is None or not isinstance(owner, Block):
            return current
        parent = owner.parent_op
        if parent is None or parent.name not in ("hida.node", "hida.schedule"):
            return current
        index = current.index
        if index >= parent.num_operands:
            return current
        current = parent.operand(index)
    return current


def collect_connections(
    schedule: ScheduleOp, band_infos: Optional[Sequence[BandInfo]] = None
) -> List[Connection]:
    """Step (1): build the connection records of a schedule.

    Two bands are connected when one stores to and the other loads from the
    same underlying buffer (resolved through node block arguments).
    """
    infos = list(band_infos) if band_infos is not None else collect_band_infos(schedule)

    # Index accesses per underlying buffer.
    writers: Dict[int, List[Tuple[BandInfo, BandAccess]]] = {}
    readers: Dict[int, List[Tuple[BandInfo, BandAccess]]] = {}
    buffers: Dict[int, Value] = {}
    for info in infos:
        for access in info.accesses:
            key_value = _resolve_buffer_key(access.buffer)
            key = id(key_value)
            buffers[key] = key_value
            target = writers if access.is_store else readers
            target.setdefault(key, []).append((info, access))

    connections: List[Connection] = []
    for key, writer_list in writers.items():
        reader_list = readers.get(key, [])
        for source_info, source_access in writer_list:
            for target_info, target_access in reader_list:
                if source_info.node is target_info.node and source_info.band is target_info.band:
                    continue
                links: List[Tuple[int, int, Fraction, Fraction]] = []
                rank = min(source_access.rank, target_access.rank)
                for d in range(rank):
                    s_pos = source_access.dim_loop_positions[d]
                    t_pos = target_access.dim_loop_positions[d]
                    if s_pos is None or t_pos is None:
                        continue
                    links.append(
                        (
                            s_pos,
                            t_pos,
                            source_access.dim_strides[d] or Fraction(1),
                            target_access.dim_strides[d] or Fraction(1),
                        )
                    )
                if links:
                    connections.append(
                        Connection(
                            source=source_info,
                            target=target_info,
                            buffer=buffers[key],
                            links=links,
                        )
                    )
    # De-duplicate (same endpoints and buffer).
    unique: List[Connection] = []
    seen = set()
    for connection in connections:
        key = (
            id(connection.source),
            id(connection.target),
            id(connection.buffer),
        )
        if key not in seen:
            seen.add(key)
            unique.append(connection)
    return unique


def connection_table(connections: Sequence[Connection]) -> List[Dict[str, object]]:
    """Human-readable connection rows matching Table 4 of the paper."""
    rows = []
    for connection in connections:
        rows.append(
            {
                "source": connection.source.label,
                "target": connection.target.label,
                "buffer": connection.buffer.name_hint or "buffer",
                "s_to_t_permutation": connection.source_to_target_permutation(),
                "t_to_s_permutation": connection.target_to_source_permutation(),
                "s_to_t_scaling": [
                    float(x) if x is not None else None
                    for x in connection.source_to_target_scaling()
                ],
                "t_to_s_scaling": [
                    float(x) if x is not None else None
                    for x in connection.target_to_source_scaling()
                ],
            }
        )
    return rows
