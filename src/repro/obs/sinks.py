"""Event sinks: in-memory collection, JSONL structured logs, fan-out.

Every sink accepts the plain-dict events minted by
:class:`~repro.obs.trace.Tracer` via ``emit(event)``; ``close()`` flushes
and releases any resources.  The JSONL format is one JSON object per line
with sorted keys — grep-able, append-safe and round-trippable through
:func:`read_jsonl` (see the Perfetto exporter in :mod:`repro.obs.export`
for the merged-trace rendering).
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional

__all__ = ["InMemorySink", "JsonlSink", "TeeSink", "read_jsonl", "write_jsonl"]


class InMemorySink:
    """Collects events in order; the default sink of a telemetry session."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def drain(self) -> List[Dict[str, Any]]:
        """Pop and return everything collected so far."""
        drained = self.events
        self.events = []
        return drained

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Appends one sorted-key JSON object per event to ``path``.

    The file opens lazily on the first event and every line is flushed as
    written, so a crashed run still leaves a readable prefix.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[IO[str]] = None

    def emit(self, event: Dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        json.dump(event, self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TeeSink:
    """Fans every event out to several sinks."""

    def __init__(self, *sinks: Any) -> None:
        self.sinks = list(sinks)

    def emit(self, event: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL event log back into a list of event dicts."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def write_jsonl(path: str, events: List[Dict[str, Any]]) -> None:
    """Write events as a JSONL log (the inverse of :func:`read_jsonl`)."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            json.dump(event, handle, sort_keys=True)
            handle.write("\n")
