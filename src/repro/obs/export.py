"""Chrome trace-event / Perfetto export, validation and summaries.

:func:`to_chrome_trace` renders the plain-dict event stream of a telemetry
session into the Chrome trace-event JSON format (the ``{"traceEvents":
[...]}`` envelope Perfetto and ``chrome://tracing`` load directly):

* ``span`` events become ``ph:"X"`` complete events whose ``args`` carry
  the span/parent ids, attributes and CPU time;
* spans whose parent lives in *another process* additionally get a
  ``ph:"s"``/``ph:"f"`` flow-event pair, so the merged trace draws an
  arrow from the orchestrating span to each worker's fan-out;
* ``instant`` events become ``ph:"i"``, ``counter`` samples ``ph:"C"``,
  and process/thread naming ``ph:"M"`` metadata;
* ``slice`` events (pre-positioned simulator-timeline tracks) become
  ``ph:"X"`` on their own synthetic pid/tid.

:func:`validate_chrome_trace` is the single schema checker shared by the
test suite, the report CLI (``python -m repro.obs trace.json --validate``)
and the CI tracing smoke step.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "to_chrome_trace",
    "validate_chrome_trace",
    "telemetry_summary",
    "span_aggregate",
]


def _span_args(event: Dict[str, Any]) -> Dict[str, Any]:
    args = dict(event.get("attrs") or {})
    args["span_id"] = event.get("id")
    if event.get("parent"):
        args["parent_id"] = event["parent"]
    if event.get("cpu_us") is not None:
        args["cpu_us"] = event["cpu_us"]
    return args


def to_chrome_trace(
    events: List[Dict[str, Any]],
    metrics: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Render a session's events as a Chrome trace-event JSON object."""
    trace_events: List[Dict[str, Any]] = []
    spans_by_id: Dict[str, Dict[str, Any]] = {}
    named_pids = set()
    seen_pids = []
    flow_serial = 0

    for event in events:
        kind = event.get("type")
        if kind == "span":
            spans_by_id[str(event.get("id"))] = event

    for event in events:
        kind = event.get("type")
        pid = event.get("pid", 0)
        if kind == "span":
            if pid not in seen_pids:
                seen_pids.append(pid)
            trace_events.append(
                {
                    "ph": "X",
                    "name": str(event.get("name", "?")),
                    "cat": str(event.get("cat", "span")),
                    "ts": float(event.get("ts", 0.0)),
                    "dur": float(event.get("dur", 0.0)),
                    "pid": pid,
                    "tid": event.get("tid", 0),
                    "args": _span_args(event),
                }
            )
            parent_id = event.get("parent")
            parent = spans_by_id.get(str(parent_id)) if parent_id else None
            if parent is not None and parent.get("pid") != pid:
                # Cross-process parent: draw a flow arrow from the parent
                # span's start to this worker-side span.
                flow_serial += 1
                flow_id = f"flow-{flow_serial}"
                trace_events.append(
                    {
                        "ph": "s",
                        "id": flow_id,
                        "name": "fan-out",
                        "cat": "flow",
                        "ts": float(parent.get("ts", 0.0)),
                        "pid": parent.get("pid", 0),
                        "tid": parent.get("tid", 0),
                    }
                )
                trace_events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "id": flow_id,
                        "name": "fan-out",
                        "cat": "flow",
                        "ts": float(event.get("ts", 0.0)),
                        "pid": pid,
                        "tid": event.get("tid", 0),
                    }
                )
        elif kind == "instant":
            if pid not in seen_pids:
                seen_pids.append(pid)
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": str(event.get("name", "?")),
                    "cat": str(event.get("cat", "event")),
                    "ts": float(event.get("ts", 0.0)),
                    "pid": pid,
                    "tid": event.get("tid", 0),
                    "args": dict(event.get("attrs") or {}),
                }
            )
        elif kind == "slice":
            if pid not in seen_pids:
                seen_pids.append(pid)
            trace_events.append(
                {
                    "ph": "X",
                    "name": str(event.get("name", "?")),
                    "cat": str(event.get("cat", "timeline")),
                    "ts": float(event.get("ts", 0.0)),
                    "dur": float(event.get("dur", 0.0)),
                    "pid": pid,
                    "tid": event.get("tid", 0),
                    "args": dict(event.get("attrs") or {}),
                }
            )
        elif kind == "counter":
            trace_events.append(
                {
                    "ph": "C",
                    "name": str(event.get("name", "?")),
                    "ts": float(event.get("ts", 0.0)),
                    "pid": pid,
                    "tid": event.get("tid", 0),
                    "args": dict(event.get("values") or {}),
                }
            )
        elif kind == "meta":
            meta_kind = str(event.get("kind", "process_name"))
            meta: Dict[str, Any] = {
                "ph": "M",
                "name": meta_kind,
                "pid": pid,
                "args": {"name": str(event.get("value", ""))},
            }
            if meta_kind == "thread_name":
                meta["tid"] = event.get("tid", 0)
            trace_events.append(meta)
            if meta_kind == "process_name":
                named_pids.add(pid)

    # Name any process that produced events but never named itself, so the
    # Perfetto track list stays readable for multi-worker traces.
    for pid in seen_pids:
        if pid not in named_pids:
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "args": {"name": f"repro pid {pid}"},
                }
            )

    trace: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }
    if metrics:
        trace["metrics"] = metrics
    return trace


#: ``ph`` values the validator understands, with their required fields.
_REQUIRED_FIELDS = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid"),
    "C": ("name", "ts", "pid", "args"),
    "M": ("name", "pid", "args"),
    "s": ("id", "ts", "pid", "tid"),
    "f": ("id", "ts", "pid", "tid"),
}


def validate_chrome_trace(trace: Dict[str, Any]) -> List[str]:
    """Schema-shape problems of an exported trace (empty list = valid).

    Checks the envelope, the per-``ph`` required fields, timestamp sanity
    (finite, non-negative durations) and parent/child nesting: a span whose
    ``args.parent_id`` names another span in the same process must lie
    within its parent's interval.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no 'traceEvents' list"]
    spans: Dict[str, Dict[str, Any]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event #{index} is not an object")
            continue
        ph = event.get("ph")
        if ph not in _REQUIRED_FIELDS:
            problems.append(f"event #{index} has unknown ph {ph!r}")
            continue
        for field in _REQUIRED_FIELDS[ph]:
            if field not in event:
                problems.append(
                    f"event #{index} (ph={ph}, name={event.get('name')!r}) "
                    f"lacks required field {field!r}"
                )
        ts = event.get("ts")
        if ts is not None and (
            not isinstance(ts, (int, float)) or ts != ts or ts < 0
        ):
            problems.append(f"event #{index} has bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                problems.append(f"event #{index} has bad dur {dur!r}")
            span_id = (event.get("args") or {}).get("span_id")
            if span_id is not None:
                spans[str(span_id)] = event
    # Parent/child nesting (same-process only: cross-process clocks are
    # consistent but not synchronized to sub-slice precision).
    for span_id, event in spans.items():
        parent_id = (event.get("args") or {}).get("parent_id")
        if parent_id is None:
            continue
        parent = spans.get(str(parent_id))
        if parent is None or parent.get("pid") != event.get("pid"):
            continue
        child_start, child_end = _interval(event)
        parent_start, parent_end = _interval(parent)
        epsilon = 1e-6
        if child_start + epsilon < parent_start or child_end > parent_end + epsilon:
            problems.append(
                f"span {event.get('name')!r} [{child_start}, {child_end}] "
                f"escapes parent {parent.get('name')!r} "
                f"[{parent_start}, {parent_end}]"
            )
    return problems


def _interval(event: Dict[str, Any]) -> Tuple[float, float]:
    start = float(event.get("ts", 0.0))
    return start, start + float(event.get("dur", 0.0))


def span_aggregate(events: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-span-name aggregation of a session's raw events.

    Returns one row per span name — count, total/mean/max wall seconds and
    total CPU seconds — sorted by total wall time, which is what the report
    CLI prints and what per-stage aggregation across a sweep reads.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for event in events:
        if event.get("type") != "span":
            continue
        name = str(event.get("name", "?"))
        row = totals.setdefault(
            name,
            {"count": 0.0, "wall_us": 0.0, "max_us": 0.0, "cpu_us": 0.0},
        )
        duration = float(event.get("dur", 0.0))
        row["count"] += 1
        row["wall_us"] += duration
        row["max_us"] = max(row["max_us"], duration)
        row["cpu_us"] += float(event.get("cpu_us", 0.0))
    rows = [
        {
            "name": name,
            "count": int(row["count"]),
            "wall_seconds": row["wall_us"] / 1e6,
            "mean_seconds": row["wall_us"] / row["count"] / 1e6,
            "max_seconds": row["max_us"] / 1e6,
            "cpu_seconds": row["cpu_us"] / 1e6,
        }
        for name, row in totals.items()
    ]
    rows.sort(key=lambda row: (-row["wall_seconds"], row["name"]))
    return rows


def telemetry_summary(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Compile vs simulate vs cache-probe time split of an event stream.

    ``compile_seconds`` sums the compiler pipeline spans, ``simulate_seconds``
    the high-fidelity simulator spans and ``cache_probe_seconds`` the
    QoR/IR cache probe spans; ``by_category`` keeps the full breakdown.
    The categories nest (stage spans sit inside pipeline spans), so only
    top-level-per-category spans are meaningful to add — which is why the
    split reads whole categories rather than individual span names.
    """
    by_category: Dict[str, float] = {}
    span_count = 0
    cache_events = 0
    for event in events:
        kind = event.get("type")
        if kind == "span":
            span_count += 1
            category = str(event.get("cat", "span"))
            by_category[category] = by_category.get(category, 0.0) + float(
                event.get("dur", 0.0)
            )
        elif kind == "instant" and str(event.get("cat", "")) == "cache":
            cache_events += 1
    return {
        "spans": span_count,
        "events": len(events),
        "cache_events": cache_events,
        "compile_seconds": by_category.get("pipeline", 0.0) / 1e6,
        "simulate_seconds": by_category.get("sim", 0.0) / 1e6,
        "cache_probe_seconds": by_category.get("cache", 0.0) / 1e6,
        "by_category_seconds": {
            name: seconds / 1e6 for name, seconds in sorted(by_category.items())
        },
    }
