"""Hierarchical tracing: spans, span contexts and the :class:`Tracer`.

A *span* is a named interval with wall/CPU time, free-form attributes and a
parent link; spans nest through an explicit per-tracer stack, so a tracer
used as ``with tracer.span("outer"): with tracer.span("inner"): ...``
records ``inner`` as a child of ``outer`` without any caller bookkeeping.

Span identity is cross-process capable by construction: every span id is
``<pid>.<serial>``, so ids minted in different worker processes never
collide, and a :class:`SpanContext` serialized into a worker lets the
worker's root spans parent onto a span of the orchestrating process — the
merged event stream renders as one tree (see :mod:`repro.obs.export`).

Time comes from an injectable :class:`Clock`.  The default
:class:`SystemClock` uses ``time.time_ns()`` for wall time (epoch-anchored,
so timestamps from different processes land on one axis) and
``time.process_time()`` for CPU time; tests inject :class:`FakeClock` for
bit-deterministic traces.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Clock",
    "SystemClock",
    "FakeClock",
    "SpanContext",
    "Span",
    "Tracer",
    "NULL_SPAN",
]


class Clock:
    """Time source for a tracer; both readings are in microseconds."""

    def wall_us(self) -> float:
        raise NotImplementedError

    def cpu_us(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """Epoch-anchored wall clock + per-process CPU clock."""

    def wall_us(self) -> float:
        return time.time_ns() / 1000.0

    def cpu_us(self) -> float:
        return time.process_time() * 1e6


class FakeClock(Clock):
    """Deterministic manual clock for tests.

    Every wall reading advances the clock by ``tick`` microseconds, so
    consecutive timestamps are strictly increasing without any explicit
    ``advance`` calls; CPU readings track the same counter without
    advancing it.
    """

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        self.now = float(start)
        self.tick = float(tick)

    def wall_us(self) -> float:
        reading = self.now
        self.now += self.tick
        return reading

    def cpu_us(self) -> float:
        return self.now

    def advance(self, microseconds: float) -> None:
        self.now += float(microseconds)


class SpanContext:
    """Serializable (trace id, span id) pair for cross-process stitching."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> Dict[str, str]:
        return {"trace": self.trace_id, "span": self.span_id}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "SpanContext":
        return cls(str(data["trace"]), str(data["span"]))

    def __repr__(self) -> str:
        return f"SpanContext(trace={self.trace_id!r}, span={self.span_id!r})"


class Span:
    """One named interval; close with ``with`` or :meth:`finish`."""

    __slots__ = (
        "tracer",
        "name",
        "category",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "pid",
        "start_us",
        "end_us",
        "cpu_start_us",
        "cpu_end_us",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        parent_id: Optional[str],
        attrs: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.trace_id = tracer.trace_id
        self.span_id = tracer.next_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.pid = tracer.pid
        self.start_us = tracer.clock.wall_us()
        self.end_us: Optional[float] = None
        self.cpu_start_us = tracer.clock.cpu_us()
        self.cpu_end_us: Optional[float] = None

    def set_attr(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self) -> None:
        self.tracer.finish_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.finish()
        return False

    def to_event(self) -> Dict[str, Any]:
        end = self.end_us if self.end_us is not None else self.start_us
        cpu_end = (
            self.cpu_end_us if self.cpu_end_us is not None else self.cpu_start_us
        )
        return {
            "type": "span",
            "name": self.name,
            "cat": self.category,
            "trace": self.trace_id,
            "id": self.span_id,
            "parent": self.parent_id,
            "ts": self.start_us,
            "dur": max(end - self.start_us, 0.0),
            "cpu_us": max(cpu_end - self.cpu_start_us, 0.0),
            "pid": self.pid,
            "tid": 0,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def set_attr(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared no-op span: ``obs.span(...)`` hands this out when disabled, so the
#: enabled check is the only per-call-site overhead.
NULL_SPAN = _NullSpan()


class Tracer:
    """Mints spans and instant events into a sink.

    ``sink`` is anything with an ``emit(event: dict)`` method (see
    :mod:`repro.obs.sinks`).  The tracer keeps an explicit span stack: new
    spans parent onto the innermost open span, falling back to the adopted
    cross-process context (if any).  Finishing a span pops every span opened
    above it too (closed at the same instant) — a stage that raised halfway
    through cannot poison the parentage of later spans.
    """

    def __init__(
        self,
        sink: Any,
        clock: Optional[Clock] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.sink = sink
        self.clock = clock if clock is not None else SystemClock()
        self.pid = os.getpid()
        self.trace_id = (
            trace_id
            if trace_id is not None
            else f"t{self.pid:x}-{time.time_ns() & 0xFFFFFFFF:08x}"
        )
        self._serial = 0
        self._stack: List[Span] = []
        self._adopted_parent: Optional[str] = None

    # ------------------------------------------------------------------ ids
    def next_span_id(self) -> str:
        self._serial += 1
        return f"{self.pid}.{self._serial}"

    # ------------------------------------------------------------- contexts
    def adopt(self, context: SpanContext) -> None:
        """Parent this tracer's root spans onto a foreign span."""
        self.trace_id = context.trace_id
        self._adopted_parent = context.span_id or None

    def current_context(self) -> SpanContext:
        """Context naming the innermost open span (for worker hand-off)."""
        if self._stack:
            return SpanContext(self.trace_id, self._stack[-1].span_id)
        return SpanContext(self.trace_id, self._adopted_parent or "")

    def current_parent_id(self) -> Optional[str]:
        if self._stack:
            return self._stack[-1].span_id
        return self._adopted_parent

    # ---------------------------------------------------------------- spans
    def span(self, name: str, cat: str = "span", **attrs: Any) -> Span:
        opened = Span(self, name, cat, self.current_parent_id(), dict(attrs))
        self._stack.append(opened)
        return opened

    def finish_span(self, span: Span) -> None:
        if span.end_us is not None:
            return
        end_wall = self.clock.wall_us()
        end_cpu = self.clock.cpu_us()
        # Pop through anything left open above this span (abandoned by an
        # exception) so the stack self-heals; those spans close here too.
        while self._stack:
            top = self._stack.pop()
            top.end_us = end_wall
            top.cpu_end_us = end_cpu
            if top is not span:
                top.attrs.setdefault("unfinished", True)
            self.sink.emit(top.to_event())
            if top is span:
                return
        # Span was not on the stack (already healed away): emit as-is.
        span.end_us = end_wall
        span.cpu_end_us = end_cpu
        self.sink.emit(span.to_event())

    def finish_open(self) -> None:
        """Close every span still open (used when draining a session)."""
        while self._stack:
            self.finish_span(self._stack[-1])

    # --------------------------------------------------------------- events
    def event(self, name: str, cat: str = "event", **attrs: Any) -> None:
        """Emit an instant (zero-duration) event under the current span."""
        self.sink.emit(
            {
                "type": "instant",
                "name": name,
                "cat": cat,
                "trace": self.trace_id,
                "parent": self.current_parent_id(),
                "ts": self.clock.wall_us(),
                "pid": self.pid,
                "tid": 0,
                "attrs": dict(attrs),
            }
        )

    def emit_slice(
        self,
        name: str,
        ts: float,
        dur: float,
        pid: int,
        tid: int,
        cat: str = "timeline",
        **attrs: Any,
    ) -> None:
        """Emit a pre-positioned track slice (used by simulator timelines)."""
        self.sink.emit(
            {
                "type": "slice",
                "name": name,
                "cat": cat,
                "trace": self.trace_id,
                "ts": float(ts),
                "dur": max(float(dur), 0.0),
                "pid": pid,
                "tid": tid,
                "attrs": dict(attrs),
            }
        )

    def emit_counter(
        self, name: str, ts: float, pid: int, values: Dict[str, float]
    ) -> None:
        """Emit one sample of a Chrome counter track."""
        self.sink.emit(
            {
                "type": "counter",
                "name": name,
                "trace": self.trace_id,
                "ts": float(ts),
                "pid": pid,
                "tid": 0,
                "values": {k: float(v) for k, v in values.items()},
            }
        )

    def emit_meta(
        self, kind: str, pid: int, value: str, tid: Optional[int] = None
    ) -> None:
        """Name a process (``kind="process_name"``) or thread track."""
        event: Dict[str, Any] = {
            "type": "meta",
            "kind": kind,
            "pid": pid,
            "value": value,
        }
        if tid is not None:
            event["tid"] = tid
        self.sink.emit(event)
