"""``repro.obs`` — unified tracing and metrics for compiler, DSE and simulator.

A zero-dependency telemetry subsystem: hierarchical spans
(:mod:`repro.obs.trace`), a typed metrics registry
(:mod:`repro.obs.metrics`), pluggable sinks (:mod:`repro.obs.sinks`) and a
Chrome trace-event / Perfetto exporter (:mod:`repro.obs.export`), plus the
report CLI ``python -m repro.obs``.

Telemetry is **off by default**.  The instrumented call sites throughout
the repo go through the module-level helpers here (``obs.span(...)``,
``obs.event(...)``, ``obs.inc(...)``), each of which starts with a single
``_SESSION is None`` check — the entire disabled-mode overhead.  Enabling
is one call::

    import repro.obs as obs

    obs.configure()                      # in-memory collection
    result = explore(space, ...)         # spans/events/metrics accumulate
    obs.export_chrome("trace.json")      # merged Perfetto-loadable trace
    obs.shutdown()

Cross-process stitching: the DSE runner serializes the current span
context (:func:`propagation_context`) into each worker task; workers call
:func:`begin_worker` (idempotent per process) to adopt it, accumulate
events in-memory, and :func:`drain_worker` hands everything back through
the result record, which the parent :func:`ingest`\\ s — so a merged trace
shows every worker's compiler stages under the generation that spawned
them, while result records stay byte-identical to an untraced run
(the telemetry keys are popped before records are consumed).

Determinism: telemetry never touches cache keys, budgets or seeds; with an
injected :class:`~repro.obs.trace.FakeClock` the whole event stream is
bit-reproducible in tests.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from .export import (
    span_aggregate,
    telemetry_summary as _summarize_events,
    to_chrome_trace,
    validate_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import InMemorySink, JsonlSink, TeeSink, read_jsonl, write_jsonl
from .trace import (
    NULL_SPAN,
    Clock,
    FakeClock,
    Span,
    SpanContext,
    SystemClock,
    Tracer,
)

__all__ = [
    "Clock",
    "SystemClock",
    "FakeClock",
    "Span",
    "SpanContext",
    "Tracer",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "InMemorySink",
    "JsonlSink",
    "TeeSink",
    "read_jsonl",
    "write_jsonl",
    "to_chrome_trace",
    "validate_chrome_trace",
    "span_aggregate",
    "Session",
    "configure",
    "shutdown",
    "enabled",
    "session",
    "span",
    "event",
    "inc",
    "gauge_set",
    "observe",
    "metrics",
    "propagation_context",
    "begin_worker",
    "drain_worker",
    "ingest",
    "emit_timeline",
    "telemetry_summary",
    "export_chrome",
    "export_jsonl",
    "add_cli_arguments",
    "cli_configure",
    "cli_finish",
]

#: Synthetic-pid base for simulator timeline tracks: far above any real
#: Linux pid (pid_max caps at 2^22), so timeline "processes" can never
#: collide with a worker process in the merged trace.
_TIMELINE_PID_BASE = 1 << 24


class Session:
    """One enabled telemetry scope: a tracer, a registry and its sinks."""

    def __init__(
        self,
        clock: Optional[Clock] = None,
        trace_id: Optional[str] = None,
        jsonl_path: Optional[str] = None,
        role: str = "main",
    ) -> None:
        self.memory = InMemorySink()
        self._jsonl: Optional[JsonlSink] = (
            JsonlSink(jsonl_path) if jsonl_path else None
        )
        sink = (
            TeeSink(self.memory, self._jsonl) if self._jsonl else self.memory
        )
        self.tracer = Tracer(sink, clock=clock, trace_id=trace_id)
        self.registry = MetricsRegistry()
        self.role = role
        self._timeline_serial = 0
        self.tracer.emit_meta(
            "process_name", self.tracer.pid, f"repro {role} (pid {self.tracer.pid})"
        )

    # --------------------------------------------------------------- events
    def events(self) -> List[Dict[str, Any]]:
        """The events collected so far (open spans are *not* closed)."""
        return list(self.memory.events)

    def drain(self) -> List[Dict[str, Any]]:
        """Close open spans and pop every collected event."""
        self.tracer.finish_open()
        return self.memory.drain()

    def next_timeline_pid(self) -> int:
        self._timeline_serial += 1
        return _TIMELINE_PID_BASE + (self.tracer.pid % 4096) * 64 + (
            self._timeline_serial % 64
        )

    def close(self) -> None:
        self.tracer.finish_open()
        if self._jsonl is not None:
            self._jsonl.close()


_SESSION: Optional[Session] = None
#: Pid that created ``_SESSION`` — a forked child must not inherit the
#: parent's live session (its events would double-report), so helpers
#: treat a foreign-pid session as disabled.
_SESSION_PID: Optional[int] = None


def configure(
    clock: Optional[Clock] = None,
    trace_id: Optional[str] = None,
    jsonl: Optional[str] = None,
    role: str = "main",
) -> Session:
    """Enable telemetry (replacing any live session) and return the session."""
    global _SESSION, _SESSION_PID
    if _SESSION is not None and _SESSION_PID == os.getpid():
        _SESSION.close()
    _SESSION = Session(clock=clock, trace_id=trace_id, jsonl_path=jsonl, role=role)
    _SESSION_PID = os.getpid()
    return _SESSION


def shutdown() -> Optional[Session]:
    """Disable telemetry; returns the closed session (events still readable)."""
    global _SESSION, _SESSION_PID
    closing = _SESSION if _SESSION_PID == os.getpid() else None
    if closing is not None:
        closing.close()
    _SESSION = None
    _SESSION_PID = None
    return closing


def session() -> Optional[Session]:
    if _SESSION is not None and _SESSION_PID != os.getpid():
        return None
    return _SESSION


def enabled() -> bool:
    return session() is not None


# ---------------------------------------------------------------------------
# Hot-path helpers (near-zero overhead while disabled)
# ---------------------------------------------------------------------------


def span(name: str, cat: str = "span", **attrs: Any):
    """Open a span on the live session (or a shared no-op while disabled)."""
    live = _SESSION
    if live is None or _SESSION_PID != os.getpid():
        return NULL_SPAN
    return live.tracer.span(name, cat=cat, **attrs)


def event(name: str, cat: str = "event", **attrs: Any) -> None:
    """Emit an instant event on the live session (no-op while disabled)."""
    live = _SESSION
    if live is None or _SESSION_PID != os.getpid():
        return
    live.tracer.event(name, cat=cat, **attrs)


def inc(name: str, amount: float = 1.0) -> None:
    """Bump a session counter (no-op while disabled)."""
    live = _SESSION
    if live is None or _SESSION_PID != os.getpid():
        return
    live.registry.inc(name, amount)


def gauge_set(name: str, value: float, keep_max: bool = False) -> None:
    live = _SESSION
    if live is None or _SESSION_PID != os.getpid():
        return
    gauge = live.registry.gauge(name)
    (gauge.set_max if keep_max else gauge.set)(value)


def observe(name: str, value: float) -> None:
    live = _SESSION
    if live is None or _SESSION_PID != os.getpid():
        return
    live.registry.histogram(name).observe(value)


def metrics() -> Optional[MetricsRegistry]:
    live = session()
    return live.registry if live is not None else None


# ---------------------------------------------------------------------------
# Cross-process stitching
# ---------------------------------------------------------------------------


def propagation_context() -> Optional[Dict[str, str]]:
    """Serialized context of the current span, for worker tasks."""
    live = session()
    if live is None:
        return None
    return live.tracer.current_context().to_dict()


def begin_worker(context: Optional[Dict[str, str]]) -> Optional[Session]:
    """Adopt a parent context inside a worker process (idempotent).

    Creates an in-memory session on first use in this process (or reuses
    the live one), then reparents the tracer onto ``context`` so the
    worker's root spans stitch under the orchestrating span.  A ``None``
    context is a no-op returning the current session, so call sites do not
    need to branch on whether tracing is on.
    """
    if context is None:
        return session()
    live = session()
    if live is None:
        live = configure(role="worker")
    live.tracer.adopt(SpanContext.from_dict(context))
    return live


def drain_worker() -> Optional[Dict[str, Any]]:
    """Pop this process's events and metrics for the result-record channel."""
    live = session()
    if live is None:
        return None
    return {"events": live.drain(), "metrics": live.registry.drain()}


def ingest(payload: Optional[Dict[str, Any]]) -> None:
    """Fold a worker's :func:`drain_worker` payload into the live session."""
    live = session()
    if live is None or not payload:
        return
    for item in payload.get("events") or []:
        live.memory.emit(item)
    live.registry.merge(payload.get("metrics") or {})


# ---------------------------------------------------------------------------
# Simulator timelines and summaries
# ---------------------------------------------------------------------------


def emit_timeline(
    timeline: Any,
    label: str = "dataflow-sim",
    node_names: Optional[List[str]] = None,
    cycle_us: float = 1.0,
) -> None:
    """Render a dataflow-simulator timeline as Perfetto tracks.

    ``timeline`` is a :class:`~repro.estimation.dataflow_sim.DataflowTimeline`.
    Each node becomes a named thread track carrying one busy slice per frame
    plus stall slices annotated with their cause (data starvation vs
    back-pressure); each channel becomes a counter track sampling its
    in-flight frame depth.  One simulated cycle maps to ``cycle_us``
    microseconds, offset to the moment of emission so the track lands next
    to the span that produced it on the shared time axis.
    """
    live = session()
    if live is None:
        return
    tracer = live.tracer
    pid = live.next_timeline_pid()
    base = tracer.clock.wall_us()
    tracer.emit_meta("process_name", pid, label)
    names = node_names or []
    for node, busy in enumerate(timeline.node_busy):
        tid = node + 1
        name = names[node] if node < len(names) else f"node{node}"
        tracer.emit_meta("thread_name", pid, name, tid=tid)
        for frame, (start, finish) in enumerate(busy):
            tracer.emit_slice(
                f"frame {frame}",
                ts=base + start * cycle_us,
                dur=(finish - start) * cycle_us,
                pid=pid,
                tid=tid,
                cat="timeline",
                frame=frame,
            )
        for stall_start, stall_end, cause in timeline.node_stalls[node]:
            tracer.emit_slice(
                f"stall:{cause}",
                ts=base + stall_start * cycle_us,
                dur=(stall_end - stall_start) * cycle_us,
                pid=pid,
                tid=tid,
                cat="stall",
                cause=cause,
            )
    for channel, series in enumerate(timeline.channel_depth):
        track = f"{label} ch{channel} depth"
        for ts, depth in series:
            tracer.emit_counter(
                track, ts=base + ts * cycle_us, pid=pid, values={"depth": depth}
            )
        gauge_set(
            f"sim.channel_depth_hwm.ch{channel}",
            timeline.channel_hwm[channel],
            keep_max=True,
        )
    event(
        "timeline",
        cat="sim",
        label=label,
        nodes=len(timeline.node_busy),
        channels=len(timeline.channel_depth),
        frames=timeline.frames,
    )


def telemetry_summary() -> Optional[Dict[str, Any]]:
    """Compile/simulate/cache time split of the live session's events."""
    live = session()
    if live is None:
        return None
    live.tracer.finish_open()
    summary = _summarize_events(live.events())
    summary["counters"] = {
        name: payload["value"]
        for name, payload in live.registry.to_dict().items()
        if payload.get("kind") == "counter"
    }
    return summary


def export_chrome(path: str) -> Optional[str]:
    """Write the live session's merged Chrome-trace JSON; returns the path."""
    import json

    live = session()
    if live is None:
        return None
    live.tracer.finish_open()
    trace = to_chrome_trace(live.events(), metrics=live.registry.to_dict())
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    return path


def export_jsonl(path: str) -> Optional[str]:
    """Write the live session's raw event log as JSONL; returns the path.

    A trailing ``{"type": "metrics", ...}`` record carries the registry
    dump, so the report CLI's ``--counters`` works on JSONL logs too.
    """
    live = session()
    if live is None:
        return None
    live.tracer.finish_open()
    events = live.events()
    if len(live.registry):
        events = [*events, {"type": "metrics", "metrics": live.registry.to_dict()}]
    write_jsonl(path, events)
    return path


# ---------------------------------------------------------------------------
# Shared CLI surface (--trace / --trace-out / --metrics-json)
# ---------------------------------------------------------------------------


def add_cli_arguments(parser: Any) -> None:
    """Attach the shared observability flags to an ``argparse`` parser."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace",
        action="store_true",
        help="collect spans/events/metrics for this run and print a "
        "telemetry summary (see python -m repro.obs for reports)",
    )
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="export the collected trace to PATH (implies --trace; "
        "*.jsonl writes the raw structured event log, anything else "
        "writes Perfetto-loadable Chrome trace JSON)",
    )
    group.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="dump the metrics registry (counters/gauges/histograms) as "
        "JSON to PATH (implies --trace)",
    )


def cli_configure(args: Any) -> bool:
    """Enable telemetry when any observability flag was passed."""
    if not (args.trace or args.trace_out or args.metrics_json):
        return False
    configure()
    return True


def cli_finish(args: Any) -> Optional[Dict[str, Any]]:
    """Export per the observability flags, shut down, return the summary."""
    import json

    live = session()
    if live is None:
        return None
    summary = telemetry_summary()
    if args.trace_out:
        if str(args.trace_out).endswith(".jsonl"):
            export_jsonl(args.trace_out)
        else:
            export_chrome(args.trace_out)
        print(f"wrote trace to {args.trace_out}")
    if args.metrics_json:
        with open(args.metrics_json, "w", encoding="utf-8") as handle:
            json.dump(live.registry.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote metrics to {args.metrics_json}")
    shutdown()
    return summary
