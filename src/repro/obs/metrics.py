"""Typed metrics: counters, gauges, histograms and their registry.

The registry is the single store behind every hand-rolled stat surface in
the repo (``Compiler.ir_cache_stats``, the QoR-cache hit/miss counters,
``ExplorationResult.prefix_hits``): callers keep their existing public
fields, which are now *views* over a registry, so the counting logic lives
in one place and worker-process dumps merge losslessly into the parent's
registry (:meth:`MetricsRegistry.merge`).

Everything serializes to plain JSON (:meth:`MetricsRegistry.to_dict`), so
metric dumps travel through result records and ``--metrics-json`` files
without custom codecs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Histogram bucket upper bounds (unit-agnostic, decades from 1e-6 to 1e6);
#: one overflow bucket catches everything above.
HISTOGRAM_BOUNDS = tuple(10.0**exp for exp in range(-6, 7))


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge(self, dump: Dict[str, Any]) -> None:
        self.value += float(dump.get("value", 0.0))


class Gauge:
    """Last-written value (e.g. a high-water mark or current depth)."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        self.value = max(self.value, float(value))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge(self, dump: Dict[str, Any]) -> None:
        # Merging gauges from workers keeps the maximum: the common uses
        # (high-water marks, peak depths) want the worst case, and a
        # last-writer-wins would be order-dependent across processes.
        self.set_max(float(dump.get("value", 0.0)))


class Histogram:
    """Fixed-bucket distribution with count/sum/min/max."""

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }

    def merge(self, dump: Dict[str, Any]) -> None:
        self.count += int(dump.get("count", 0))
        self.sum += float(dump.get("sum", 0.0))
        for bound, key in ((dump.get("min"), "min"), (dump.get("max"), "max")):
            if bound is None:
                continue
            bound = float(bound)
            current = getattr(self, key)
            chooser = min if key == "min" else max
            setattr(
                self, key, bound if current is None else chooser(current, bound)
            )
        incoming = dump.get("buckets") or []
        for index, count in enumerate(incoming[: len(self.buckets)]):
            self.buckets[index] += int(count)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name-keyed store of typed metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, kind: str) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = _KINDS[kind](name)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    # ------------------------------------------------------------ shortcuts
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def value(self, name: str, default: float = 0.0) -> float:
        metric = self._metrics.get(name)
        if metric is None or metric.kind == "histogram":
            return default
        return float(metric.value)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Dict[str, Any]]:
        return {name: self._metrics[name].to_dict() for name in sorted(self._metrics)}

    def merge(self, dump: Dict[str, Dict[str, Any]]) -> None:
        """Fold a :meth:`to_dict` dump (e.g. from a worker) into this registry.

        Counters and histograms add; gauges keep their maximum.  A kind
        conflict raises rather than silently corrupting a metric.
        """
        for name, payload in dump.items():
            kind = str(payload.get("kind", "counter"))
            if kind not in _KINDS:
                raise TypeError(f"metric {name!r} has unknown kind {kind!r}")
            self._get(name, kind).merge(payload)

    def drain(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot and reset — workers hand these dumps to the parent."""
        dump = self.to_dict()
        self._metrics.clear()
        return dump
