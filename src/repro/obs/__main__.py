"""Telemetry report CLI.

Reads a trace produced by ``--trace-out`` on either front-door CLI — a raw
JSONL event log or an exported Chrome-trace JSON — and reports on it::

    python -m repro.obs trace.jsonl                  # top spans by wall time
    python -m repro.obs trace.jsonl --top 5
    python -m repro.obs trace.jsonl --counters       # metric/counter dump
    python -m repro.obs trace.jsonl --export-trace out.json
    python -m repro.obs trace.json  --validate       # schema-shape check
    python -m repro.obs sweep1.jsonl sweep2.jsonl    # aggregate across runs
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

from .export import (
    span_aggregate,
    telemetry_summary,
    to_chrome_trace,
    validate_chrome_trace,
)
from .sinks import read_jsonl


def _load(
    path: str,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any], Optional[Dict[str, Any]]]:
    """``(events, metrics, chrome_trace)`` from a JSONL log or Chrome JSON.

    Chrome-trace files reconstruct pseudo span/instant events from their
    ``ph:"X"``/``ph:"i"`` records (enough for the span table and summary —
    parent links are gone, so re-export stays JSONL-only) and validate
    directly; JSONL logs return the raw event stream — minus any trailing
    metrics record, which is lifted into the metrics dict — and render to
    Chrome form on demand.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first_line = handle.readline()
    try:
        head = json.loads(first_line)
    except ValueError:
        head = None
    if not isinstance(head, dict) or "traceEvents" in head:
        # Pretty-printed (multi-line) or single-line Chrome trace JSON.
        with open(path, "r", encoding="utf-8") as handle:
            chrome = json.load(handle)
        if not isinstance(chrome, dict) or "traceEvents" not in chrome:
            raise ValueError("neither a Chrome trace nor a JSONL event log")
        reconstructed: List[Dict[str, Any]] = []
        for item in chrome.get("traceEvents", []):
            ph = item.get("ph")
            cat = str(item.get("cat", ""))
            if ph == "X" and cat not in ("timeline", "stall"):
                attrs = dict(item.get("args") or {})
                reconstructed.append(
                    {
                        "type": "span",
                        "name": str(item.get("name", "?")),
                        "cat": cat or "span",
                        "ts": item.get("ts"),
                        "dur": float(item.get("dur", 0.0)),
                        "cpu_us": float(attrs.get("cpu_us", 0.0)),
                    }
                )
            elif ph == "i":
                reconstructed.append(
                    {
                        "type": "instant",
                        "name": str(item.get("name", "?")),
                        "cat": cat or "event",
                        "ts": item.get("ts"),
                    }
                )
        return reconstructed, dict(chrome.get("metrics") or {}), chrome
    events = read_jsonl(path)
    metrics: Dict[str, Any] = {}
    kept: List[Dict[str, Any]] = []
    for item in events:
        if item.get("type") == "metrics":
            metrics.update(item.get("metrics") or {})
        else:
            kept.append(item)
    return kept, metrics, None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Report on repro telemetry traces (JSONL or Chrome JSON).",
    )
    parser.add_argument(
        "traces", nargs="+", metavar="TRACE", help="trace file(s) to read"
    )
    parser.add_argument(
        "--top",
        type=int,
        default=15,
        metavar="N",
        help="rows in the span table (0 = all; default: 15)",
    )
    parser.add_argument(
        "--counters",
        action="store_true",
        help="dump every counter/gauge/histogram carried by the trace",
    )
    parser.add_argument(
        "--export-trace",
        default=None,
        metavar="PATH",
        help="write the merged events as Chrome trace-event JSON to PATH",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="schema-check the (exported) Chrome trace; non-zero exit on "
        "any problem",
    )
    args = parser.parse_args(argv)

    events: List[Dict[str, Any]] = []
    metrics: Dict[str, Any] = {}
    chrome: Optional[Dict[str, Any]] = None
    for path in args.traces:
        try:
            file_events, file_metrics, file_chrome = _load(path)
        except (OSError, ValueError) as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        events.extend(file_events)
        metrics.update(file_metrics)
        if file_chrome is not None:
            chrome = file_chrome

    if args.validate:
        trace = chrome if chrome is not None else to_chrome_trace(events, metrics)
        problems = validate_chrome_trace(trace)
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            return 1
        count = len(trace.get("traceEvents", []))
        print(f"valid Chrome trace ({count} events)")

    if args.export_trace:
        if not events or chrome is not None:
            print(
                "error: --export-trace needs JSONL event logs as input",
                file=sys.stderr,
            )
            return 2
        with open(args.export_trace, "w", encoding="utf-8") as handle:
            json.dump(to_chrome_trace(events, metrics or None), handle, sort_keys=True)
        print(f"wrote {args.export_trace}")

    if events:
        summary = telemetry_summary(events)
        print(
            f"{summary['spans']} span(s), {summary['events']} event(s), "
            f"{summary['cache_events']} cache probe(s)"
        )
        split = ", ".join(
            f"{name} {seconds * 1e3:.1f}ms"
            for name, seconds in summary["by_category_seconds"].items()
        )
        if split:
            print(f"time by category: {split}")
        rows = span_aggregate(events)
        if args.top:
            rows = rows[: args.top]
        if rows:
            width = max(len(row["name"]) for row in rows)
            print(
                f"\n{'span':<{width}}  {'count':>6}  {'total (ms)':>11}  "
                f"{'mean (ms)':>10}  {'max (ms)':>10}  {'cpu (ms)':>9}"
            )
            for row in rows:
                print(
                    f"{row['name']:<{width}}  {row['count']:>6d}  "
                    f"{row['wall_seconds'] * 1e3:>11.2f}  "
                    f"{row['mean_seconds'] * 1e3:>10.2f}  "
                    f"{row['max_seconds'] * 1e3:>10.2f}  "
                    f"{row['cpu_seconds'] * 1e3:>9.2f}"
                )

    if args.counters and metrics:
        print("\nmetrics:")
        for name in sorted(metrics):
            payload = metrics[name]
            kind = payload.get("kind", "?")
            if kind == "histogram":
                print(
                    f"  {name} [{kind}] count={payload.get('count')} "
                    f"sum={payload.get('sum'):.3f} min={payload.get('min')} "
                    f"max={payload.get('max')}"
                )
            else:
                print(f"  {name} [{kind}] {payload.get('value')}")
    elif args.counters:
        print("\nmetrics: (none carried by the trace)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
