"""HIDA: a hierarchical dataflow compiler for high-level synthesis.

A from-scratch Python reproduction of the ASPLOS 2024 paper *HIDA: A
Hierarchical Dataflow Compiler for High-Level Synthesis* (Ye, Jun, Chen).

The package layers:

* :mod:`repro.ir` — a compact SSA IR kernel (the MLIR substrate);
* :mod:`repro.dialects` — affine/arith/memref/linalg/scf/tensor dialects plus
  the HIDA Functional/Structural dataflow dialect;
* :mod:`repro.frontend` — PyTorch-like model tracing and a C++-style loop
  kernel builder (the Torch-MLIR / Polygeist substitutes);
* :mod:`repro.transforms` — bufferization, loop transforms, array partition;
* :mod:`repro.hida` — the HIDA-OPT optimizer and end-to-end pipeline;
* :mod:`repro.estimation` — the Vitis-HLS-style QoR model, platform specs and
  the coarse-grained dataflow simulator;
* :mod:`repro.baselines` — ScaleHLS / Vitis / DNNBuilder / SOFF baselines and
  the IA/CA ablation modes;
* :mod:`repro.backend` — the HLS C++ emitter;
* :mod:`repro.evaluation` — the experiment harnesses behind every table and
  figure of the paper.

Quickstart (the workload/target registries are the front door for *what*
to compile and *for which hardware*)::

    from repro import Compiler

    result = Compiler.from_spec(
        "construct-dataflow,fuse-tasks,lower-linalg,lower-structural,"
        "eliminate-multi-producers,balance,tile,parallelize{factor=64},estimate",
        platform="vu9p-slr",
    ).run(workload="resnet18@batch=4")
    print(result.summary())

Spec-first front door (see :mod:`repro.compiler`)::

    from repro import Compiler

    result = Compiler.from_spec(
        "construct-dataflow,fuse-tasks,lower-linalg,lower-structural,"
        "eliminate-multi-producers,balance,tile,parallelize{factor=64},estimate",
        platform="vu9p-slr",
    ).run(module)
"""

from .backend import emit_hls_cpp
from .compiler import DEFAULT_PIPELINE, Compiler, PipelineSpec, parse_pipeline
from .estimation import Platform, QoREstimator, get_platform
from .hida import CompileResult, HidaCompiler, HidaOptions, compile_module
from .targets import Target, get_target, list_targets
from .workloads import Workload, get_workload, list_workloads

__version__ = "1.2.0"

__all__ = [
    "CompileResult",
    "Compiler",
    "DEFAULT_PIPELINE",
    "HidaCompiler",
    "HidaOptions",
    "PipelineSpec",
    "compile_module",
    "parse_pipeline",
    "emit_hls_cpp",
    "Platform",
    "QoREstimator",
    "get_platform",
    "Target",
    "get_target",
    "list_targets",
    "Workload",
    "get_workload",
    "list_workloads",
    "__version__",
]
