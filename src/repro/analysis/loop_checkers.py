"""Loop-level lint rules backed by the dependence engine.

PR 7's rules check the dataflow graph between nodes; these three look
*inside* the nodes' loop nests:

* ``loop-carried-race`` — a pipelined loop claims an initiation interval
  below its recurrence bound, so the promised throughput is unachievable
  (a real HLS tool would serialize the loop to rec-MII);
* ``illegal-unroll`` — an unroll directive breaks a carried dependence at
  a distance smaller than the factor, reordering a read/write pair inside
  one issue group;
* ``bank-conflict`` — a partitioned buffer's same-cycle access set
  collides in one bank beyond its ports, stalling the unrolled body.

All three share the transform-legality predicates, so anything the
transforms refuse to do is exactly what the linter flags when it finds it
already done in the IR.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from ..dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from ..ir.core import Operation, Value
from .legality import legal_pipeline_ii, legal_unroll, partition_bank_conflicts
from .rules import AnalysisDiagnostic, AnalysisRule, register_rule

__all__ = ["LoopCarriedRaceRule", "IllegalUnrollRule", "BankConflictRule"]


def _loops_in_schedule(context) -> Iterator[Tuple[Operation, AffineForOp]]:
    for node in context.schedule.nodes:
        for loop in node.walk_ops(AffineForOp):
            yield node, loop


@register_rule
class LoopCarriedRaceRule(AnalysisRule):
    """Pipelined loops whose target II is below their recurrence MII."""

    rule_id = "loop-carried-race"
    severity = "error"
    description = (
        "a pipelined loop carries a dependence whose recurrence needs more "
        "cycles than the claimed initiation interval provides"
    )
    hint = (
        "raise target_ii to the rec-MII (the parallelize pass clamps "
        "automatically) or break the recurrence chain"
    )

    def check(self, context) -> Iterator[AnalysisDiagnostic]:
        for _node, loop in _loops_in_schedule(context):
            if not loop.is_pipelined:
                continue
            target_ii = int(loop.target_ii)
            result = legal_pipeline_ii(loop, target_ii)
            if result.ok:
                continue
            detail = (
                result.dependences[0].describe()
                if result.dependences
                else "a carried dependence"
            )
            yield context.diagnostic(
                self,
                f"pipelined loop claims II={target_ii} but {detail} "
                f"bounds it to >= {result.min_ii}",
                op=loop,
                target_ii=target_ii,
                rec_mii=result.min_ii,
            )


@register_rule
class IllegalUnrollRule(AnalysisRule):
    """Unroll directives that break a loop-carried dependence."""

    rule_id = "illegal-unroll"
    severity = "error"
    description = (
        "an unroll factor exceeds the distance of a carried dependence, so "
        "iterations inside one issue group are reordered"
    )
    hint = (
        "cap the factor at the minimum carried distance or keep the loop "
        "sequential (the parallelize pass only unrolls dependence-free loops)"
    )

    def check(self, context) -> Iterator[AnalysisDiagnostic]:
        for _node, loop in _loops_in_schedule(context):
            factor = int(loop.unroll_factor)
            if factor <= 1:
                continue
            result = legal_unroll(loop, factor)
            if result.ok:
                continue
            dep = result.dependences[0]
            yield context.diagnostic(
                self,
                f"unroll factor {factor} breaks {dep.describe()} "
                f"on a carried dependence",
                op=loop,
                factor=factor,
                distance=dep.min_distance_at(0),
            )


@register_rule
class BankConflictRule(AnalysisRule):
    """Partitioned buffers whose same-cycle accesses exceed a bank's ports."""

    rule_id = "bank-conflict"
    severity = "warning"
    description = (
        "the unrolled access set of a partitioned buffer maps more "
        "same-cycle accesses to one bank than it has ports"
    )
    hint = (
        "raise the cyclic partition factor (or lower the unroll factor) so "
        "same-cycle addresses spread across banks"
    )

    def check(self, context) -> Iterator[AnalysisDiagnostic]:
        from ..transforms.array_partition import (
            _resolve_through_nodes,
            partition_factors_of_value,
        )

        grouped: Dict[int, Tuple[Value, List[Operation]]] = {}
        for op in context.schedule.walk():
            if not isinstance(op, (AffineLoadOp, AffineStoreOp)):
                continue
            resolved = _resolve_through_nodes(op.memref)
            entry = grouped.setdefault(id(resolved), (resolved, []))
            entry[1].append(op)
        for buffer, accesses in grouped.values():
            factors = partition_factors_of_value(buffer)
            if all(f <= 1 for f in factors):
                continue
            for conflict in partition_bank_conflicts(buffer, accesses, factors):
                anchor = buffer.defining_op or accesses[0]
                yield context.diagnostic(
                    self,
                    f"partitioned buffer {conflict.describe()}",
                    op=anchor,
                    dim=conflict.dim,
                    factor=conflict.factor,
                    hits=conflict.hits,
                    ports=conflict.ports,
                )
