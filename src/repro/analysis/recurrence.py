"""Recurrence-constrained minimum initiation interval (rec-MII).

A pipelined loop cannot issue iterations faster than its loop-carried
recurrences allow: a RAW dependence whose value chain takes ``latency``
cycles and recurs every ``distance`` iterations bounds the initiation
interval from below by ``ceil(latency / distance)``.  This module derives
that bound from the dependence engine and a small per-op latency table
(the same coarse scale the QoR model uses), so the analytic estimator and
the ``loop-carried-race`` lint rule share one definition of "achievable
II".

The bound is *sound by construction* against the repo's own simulator:
:func:`repro.estimation.qor.estimate_band` clamps its analytic II with
:func:`pipeline_rec_mii`, and ``simulate_dataflow`` never reports a node
interval below the estimator's per-band II.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..dialects.affine import AffineForOp
from ..ir.core import Operation, Value
from .dependence import Dependence, loop_carried_dependences

__all__ = [
    "op_latency",
    "dependence_chain_latency",
    "binding_recurrences",
    "pipeline_rec_mii",
    "band_rec_mii",
]

#: Per-op pipeline latencies (cycles) for recurrence chains.  Deliberately
#: modest: rec-MII must stay a *lower* bound on what any schedule achieves.
_OP_LATENCY: Dict[str, float] = {
    "arith.addf": 2.0,
    "arith.subf": 2.0,
    "arith.mulf": 2.0,
    "arith.mac": 3.0,
    "arith.divf": 8.0,
    "arith.maxf": 2.0,
    "arith.minf": 2.0,
    "math.exp": 10.0,
    "math.sqrt": 10.0,
    "arith.muli": 2.0,
}

#: Store-to-load forwarding takes at least one cycle.
_FORWARD_LATENCY = 1.0


def op_latency(op: Operation) -> float:
    """Recurrence-chain latency contribution of one op (cycles)."""
    return _OP_LATENCY.get(op.name, 1.0)


def dependence_chain_latency(dep: Dependence) -> Optional[float]:
    """Cycles around the value chain of a carried RAW dependence.

    Follows def-use edges from the sink load's result to the source
    store's stored value and returns the longest path latency (plus the
    store-to-load forwarding cycle).  None when the dependence is not a
    RAW recurrence or the load does not feed the store.
    """
    if dep.kind != "RAW":
        return None
    store, load = dep.source, dep.sink
    if not load.results:
        return None
    stored_value = store.operands[0] if store.operands else None
    if stored_value is None:
        return None

    memo: Dict[int, Optional[float]] = {}

    def longest(value: Value) -> Optional[float]:
        key = id(value)
        if key in memo:
            return memo[key]
        memo[key] = None  # cycle guard (SSA is acyclic; applies stay safe)
        best: Optional[float] = None
        for user in value.users:
            if user is store and value is stored_value:
                best = 0.0 if best is None else max(best, 0.0)
                continue
            for result in user.results:
                sub = longest(result)
                if sub is not None:
                    candidate = op_latency(user) + sub
                    best = candidate if best is None else max(best, candidate)
        memo[key] = best
        return best

    path = longest(load.results[0])
    if path is None:
        return None
    return path + _FORWARD_LATENCY


def pipeline_rec_mii(loop: AffineForOp) -> int:
    """Recurrence-constrained minimum II of pipelining ``loop``.

    ``max(ceil(chain latency / distance))`` over the RAW dependences the
    loop carries; 1 when the loop carries no value recurrence.
    """
    cached = getattr(loop, "_rec_mii_cache", None)
    signature = _loop_signature(loop)
    if cached is not None and cached[0] == signature:
        return cached[1]
    rec_mii = 1
    for dep in loop_carried_dependences(loop):
        chain = dependence_chain_latency(dep)
        if chain is None:
            continue
        distance = dep.min_distance_at(0)
        rec_mii = max(rec_mii, math.ceil(chain / max(distance, 1)))
    loop._rec_mii_cache = (signature, rec_mii)  # type: ignore[attr-defined]
    return rec_mii


def binding_recurrences(loop: AffineForOp, target_ii: int) -> List[Dependence]:
    """Carried RAW dependences whose rec-MII exceeds ``target_ii``."""
    binding = []
    for dep in loop_carried_dependences(loop):
        chain = dependence_chain_latency(dep)
        if chain is None:
            continue
        if math.ceil(chain / max(dep.min_distance_at(0), 1)) > target_ii:
            binding.append(dep)
    return binding


def band_rec_mii(band: List[AffineForOp]) -> int:
    """Max rec-MII over the pipelined loops of a band (1 if none)."""
    rec = 1
    for loop in band:
        if loop.is_pipelined:
            rec = max(rec, pipeline_rec_mii(loop))
    return rec


def _loop_signature(loop: AffineForOp) -> tuple:
    """Cheap structural fingerprint to key the per-loop rec-MII cache."""
    ops = 0
    for _ in loop.walk():
        ops += 1
    return (loop.lower_bound, loop.upper_bound, loop.step, ops)
