"""Static soundness analysis of structural dataflow designs.

Rule-based checks over the same channel graph the coarse-grained simulator
executes: capacity-constrained deadlock detection, SDF-style token-balance
consistency, memory-race detection (the paper's single-producer invariant)
and buffer-sizing lints.  Wired in at three layers:

* the registered ``lint`` compiler stage (``python -m repro.compiler
  --lint`` / ``--lint-fail-on``), diagnostics flowing through the
  pipeline's observer hooks;
* the standalone ``python -m repro.analysis`` CLI sweeping the workload
  zoo into a rule-hit table (with a committed clean-zoo baseline for CI);
* the DSE pre-filter (:func:`repro.analysis.prefilter.check_point`)
  rejecting statically infeasible points before fan-out.

:mod:`repro.analysis.tv` adds executable ground truth on top: per-stage
translation validation against the reference interpreter (the ``validate``
compiler stage, ``python -m repro.analysis.tv`` sweeps and the legality
fuzzer), so "legal" verdicts are executed, not argued.

Soundness is differential: a ``deadlock`` finding is derived by running
:func:`~repro.estimation.dataflow_sim.simulate_dataflow` over the flagged
cycle, so every flagged design provably stalls in the simulator and clean
designs are never flagged (pinned by the property tests).
"""

from . import checkers, loop_checkers  # noqa: F401  (registers the built-in rules)
from .dependence import (
    Dependence,
    DistanceElement,
    band_dependences,
    loop_carried_dependences,
    loop_carries_dependence,
    nest_dependences,
)
from .engine import (
    AnalysisReport,
    ScheduleContext,
    analyze_module,
    locate_ops,
)
from .legality import (
    BankConflict,
    LegalityResult,
    TransformLegalityError,
    legal_permutation,
    legal_pipeline_ii,
    legal_unroll,
    partition_bank_conflicts,
)
from .prefilter import check_point, filter_points
from .tv import (
    FuzzReport,
    StageValidation,
    TranslationValidationError,
    ValidationReport,
    fuzz_transforms,
    semantic_fingerprint,
    validate_pipeline,
)
from .recurrence import band_rec_mii, dependence_chain_latency, pipeline_rec_mii
from .rules import (
    SEVERITIES,
    SUPPRESS_ATTR,
    AnalysisDiagnostic,
    AnalysisError,
    AnalysisRule,
    SourceLocation,
    available_rules,
    default_rules,
    is_suppressed,
    register_rule,
    rule_registry,
    severity_rank,
)

__all__ = [
    "SEVERITIES",
    "SUPPRESS_ATTR",
    "AnalysisDiagnostic",
    "AnalysisError",
    "AnalysisReport",
    "AnalysisRule",
    "BankConflict",
    "Dependence",
    "DistanceElement",
    "FuzzReport",
    "LegalityResult",
    "ScheduleContext",
    "SourceLocation",
    "StageValidation",
    "TransformLegalityError",
    "TranslationValidationError",
    "ValidationReport",
    "analyze_module",
    "available_rules",
    "band_dependences",
    "band_rec_mii",
    "check_point",
    "default_rules",
    "dependence_chain_latency",
    "filter_points",
    "fuzz_transforms",
    "is_suppressed",
    "legal_permutation",
    "legal_pipeline_ii",
    "legal_unroll",
    "locate_ops",
    "loop_carried_dependences",
    "loop_carries_dependence",
    "nest_dependences",
    "partition_bank_conflicts",
    "pipeline_rec_mii",
    "register_rule",
    "rule_registry",
    "semantic_fingerprint",
    "severity_rank",
    "validate_pipeline",
]
