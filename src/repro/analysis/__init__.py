"""Static soundness analysis of structural dataflow designs.

Rule-based checks over the same channel graph the coarse-grained simulator
executes: capacity-constrained deadlock detection, SDF-style token-balance
consistency, memory-race detection (the paper's single-producer invariant)
and buffer-sizing lints.  Wired in at three layers:

* the registered ``lint`` compiler stage (``python -m repro.compiler
  --lint`` / ``--lint-fail-on``), diagnostics flowing through the
  pipeline's observer hooks;
* the standalone ``python -m repro.analysis`` CLI sweeping the workload
  zoo into a rule-hit table (with a committed clean-zoo baseline for CI);
* the DSE pre-filter (:func:`repro.analysis.prefilter.check_point`)
  rejecting statically infeasible points before fan-out.

Soundness is differential: a ``deadlock`` finding is derived by running
:func:`~repro.estimation.dataflow_sim.simulate_dataflow` over the flagged
cycle, so every flagged design provably stalls in the simulator and clean
designs are never flagged (pinned by the property tests).
"""

from . import checkers  # noqa: F401  (registers the built-in rules)
from .engine import (
    AnalysisReport,
    ScheduleContext,
    analyze_module,
    locate_ops,
)
from .prefilter import check_point, filter_points
from .rules import (
    SEVERITIES,
    SUPPRESS_ATTR,
    AnalysisDiagnostic,
    AnalysisError,
    AnalysisRule,
    SourceLocation,
    available_rules,
    default_rules,
    is_suppressed,
    register_rule,
    rule_registry,
    severity_rank,
)

__all__ = [
    "SEVERITIES",
    "SUPPRESS_ATTR",
    "AnalysisDiagnostic",
    "AnalysisError",
    "AnalysisReport",
    "AnalysisRule",
    "ScheduleContext",
    "SourceLocation",
    "analyze_module",
    "available_rules",
    "check_point",
    "default_rules",
    "filter_points",
    "is_suppressed",
    "locate_ops",
    "register_rule",
    "rule_registry",
    "severity_rank",
]
