"""Transform-legality verification on top of the dependence engine.

Loop and directive transforms consult these predicates *before* touching
the IR: an illegal request raises :class:`TransformLegalityError` (a
``ValueError``, matching the repo-wide idiom) carrying the offending
dependences instead of silently producing bogus IR for the estimator to
score.

All predicates are conservative in the safe direction: ``unknown`` or
unconstrained dependence distances make a transform illegal, never legal.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects.affine import AffineForOp
from ..ir.core import Operation, Value
from .dependence import (
    Dependence,
    _expr_to_linear,
    _linearize_value,
    loop_carried_dependences,
    nest_dependences,
)
from .recurrence import binding_recurrences, pipeline_rec_mii

__all__ = [
    "BankConflict",
    "LegalityResult",
    "TransformLegalityError",
    "legal_permutation",
    "legal_unroll",
    "legal_pipeline_ii",
    "partition_bank_conflicts",
]

#: Same-cycle accesses a BRAM bank can serve (true dual-port).
_BANK_PORTS = 2


class TransformLegalityError(ValueError):
    """A transform request that would violate a dependence (or conflict)."""

    def __init__(
        self,
        transform: str,
        reason: str,
        dependences: Sequence[Dependence] = (),
    ) -> None:
        super().__init__(f"illegal {transform}: {reason}")
        self.transform = transform
        self.reason = reason
        self.dependences = tuple(dependences)


@dataclasses.dataclass
class LegalityResult:
    """Outcome of a legality query; ``raise_if_illegal`` makes it a gate."""

    ok: bool
    transform: str
    reason: str = ""
    dependences: Tuple[Dependence, ...] = ()
    min_ii: int = 1

    def __bool__(self) -> bool:
        return self.ok

    def raise_if_illegal(self) -> "LegalityResult":
        if not self.ok:
            raise TransformLegalityError(
                self.transform, self.reason, self.dependences
            )
        return self


# ---------------------------------------------------------------------------
# Loop permutation
# ---------------------------------------------------------------------------


def legal_permutation(
    band: Sequence[AffineForOp], permutation: Sequence[int]
) -> LegalityResult:
    """Can ``band`` be reordered so level ``j`` becomes old level ``permutation[j]``?

    Classic criterion: every dependence's permuted distance vector must stay
    lexicographically non-negative.  Free (``any``/``unknown``) entries are
    treated as possibly negative, so they only pass when a permuted-outer
    level already forces positivity.
    """
    name = "permutation"
    order = list(permutation)
    if sorted(order) != list(range(len(band))):
        return LegalityResult(
            False, name, f"{order} is not a permutation of 0..{len(band) - 1}"
        )
    offending: List[Dependence] = []
    inverse = {old: new for new, old in enumerate(order)}
    for dep in band_deps_for_permutation(band):
        if len(dep.loops) < len(band):
            # An access sits between band levels; reordering across it is
            # not representable in this vector space — reject conservatively.
            offending.append(dep)
            continue
        # Levels with an exact-zero distance never decide the lexicographic
        # order of a realized iteration pair, so the dependence survives any
        # permutation that keeps the *other* levels in their relative order
        # (e.g. moving a reduction block outward across parallel levels).
        positions = [
            inverse[j] if j < len(band) else j
            for j, element in enumerate(dep.distance)
            if not (element.kind == "exact" and element.value == 0)
        ]
        if all(a < b for a, b in zip(positions, positions[1:])):
            continue
        permuted = [dep.distance[order[j]] for j in range(len(band))]
        permuted += list(dep.distance[len(band) :])
        trips = [dep.loops[order[j]].trip_count for j in range(len(band))]
        trips += [loop.trip_count for loop in dep.loops[len(band) :]]
        if _possibly_lex_negative(permuted, trips):
            offending.append(dep)
    if offending:
        return LegalityResult(
            False,
            name,
            f"permutation {order} can reverse {len(offending)} "
            f"dependence(s), e.g. {offending[0].describe()}",
            tuple(offending),
        )
    return LegalityResult(True, name)


def band_deps_for_permutation(band: Sequence[AffineForOp]) -> List[Dependence]:
    if not band:
        return []
    return nest_dependences(band[0], include_loop_independent=False)


def _possibly_lex_negative(
    distance: Sequence, trips: Sequence[int]
) -> bool:
    for element, trip in zip(distance, trips):
        if element.kind == "exact":
            if element.value > 0:
                return False
            if element.value < 0:
                return True
            continue
        if element.kind == "atleast":
            if element.value >= 1:
                return False
            # >= 0: cannot make the vector negative at this level, but does
            # not force positivity either — keep scanning.
            continue
        return trip > 1  # any/unknown: possibly negative unless trivial
    return False  # all-zero prefix exhausted: loop-independent, fine


# ---------------------------------------------------------------------------
# Unrolling
# ---------------------------------------------------------------------------


def legal_unroll(loop: AffineForOp, factor: int) -> LegalityResult:
    """Can ``factor`` iterations of ``loop`` issue concurrently?

    Illegal when the loop carries a dependence at a distance smaller than
    the unroll factor: two iterations inside one unrolled group would then
    be ordered by memory, so issuing them in the same cycle reorders a
    read/write pair.  A carried dependence at exact distance >= factor is
    fine (it crosses group boundaries).
    """
    name = f"unroll by {factor}"
    if factor <= 1:
        return LegalityResult(True, name)
    offending = [
        dep
        for dep in loop_carried_dependences(loop)
        if dep.min_distance_at(0) < factor
    ]
    if offending:
        return LegalityResult(
            False,
            name,
            f"loop carries {offending[0].describe()} "
            f"(distance < {factor}); unrolled iterations would race",
            tuple(offending),
        )
    return LegalityResult(True, name)


# ---------------------------------------------------------------------------
# Pipelining
# ---------------------------------------------------------------------------


def legal_pipeline_ii(loop: AffineForOp, target_ii: int = 1) -> LegalityResult:
    """Is ``target_ii`` achievable against the loop's recurrences?

    ``min_ii`` in the result is the rec-MII bound; callers either clamp
    (the hida parallelize pass) or raise (explicit directives with
    ``strict=True``).
    """
    name = f"pipeline at II={target_ii}"
    min_ii = pipeline_rec_mii(loop)
    if target_ii >= min_ii:
        return LegalityResult(True, name, min_ii=min_ii)
    offending = tuple(binding_recurrences(loop, target_ii))
    return LegalityResult(
        False,
        name,
        f"recurrence bounds II to >= {min_ii} "
        f"({offending[0].describe() if offending else 'carried dependence'})",
        offending,
        min_ii=min_ii,
    )


# ---------------------------------------------------------------------------
# Array-partition bank conflicts
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class BankConflict:
    """Same-cycle accesses exceeding one bank's ports on a partitioned dim."""

    buffer: Value
    dim: int
    factor: int
    bank: int
    hits: int
    ports: int = _BANK_PORTS

    def describe(self) -> str:
        return (
            f"dim {self.dim} (cyclic factor {self.factor}): {self.hits} "
            f"same-cycle accesses map to bank {self.bank} "
            f"but it has {self.ports} port(s)"
        )


def partition_bank_conflicts(
    buffer: Value,
    accesses: Sequence[Operation],
    factors: Optional[Sequence[int]] = None,
    ports: int = _BANK_PORTS,
) -> List[BankConflict]:
    """Banks hit more than ``ports`` times in one cycle by unrolled accesses.

    For every partitioned dimension, each access contributes one address
    offset per unrolled copy of the loops driving its subscript; cyclic
    partitioning maps offsets to ``offset mod factor``.  Accesses whose
    subscripts share the same variable part are counted against each other
    (their constant offsets are comparable); accesses with different
    variable parts are counted separately, which can miss conflicts but
    never invents ones between unrelated address streams.
    """
    if factors is None:
        from ..transforms.array_partition import partition_factors_of_value

        factors = partition_factors_of_value(buffer)
    conflicts: List[BankConflict] = []
    for dim, factor in enumerate(factors):
        if factor <= 1:
            continue
        # Group accesses by the variable part of this dim's subscript.
        groups: Dict[Tuple, List[Tuple[int, List[int]]]] = {}
        for access in accesses:
            results = access.access_map.results
            if dim >= len(results):
                continue
            operand_forms = [
                _linearize_value(index) for index in access.index_operands
            ]
            form = _expr_to_linear(results[dim], operand_forms)
            if form is None:
                continue
            offsets = _unrolled_offsets(form)
            if offsets is None:
                continue
            signature = tuple(
                sorted((id(v), c) for v, c in form.coeffs.items())
            )
            base = form.const
            if base.denominator != 1:
                continue
            groups.setdefault(signature, []).append((int(base), offsets))
        for members in groups.values():
            hits: Dict[int, int] = {}
            for base, offsets in members:
                for offset in offsets:
                    bank = (base + offset) % factor
                    hits[bank] = hits.get(bank, 0) + 1
            worst = max(hits.items(), key=lambda kv: kv[1], default=(0, 0))
            if worst[1] > ports:
                conflicts.append(
                    BankConflict(buffer, dim, int(factor), worst[0], worst[1], ports)
                )
                break  # one finding per dimension is enough
    return conflicts


def _unrolled_offsets(form) -> Optional[List[int]]:
    """Same-cycle address offsets of one subscript under loop unrolling.

    Every unrolled loop whose IV appears in the linear form multiplies the
    copies; offsets are the cartesian sums of ``k * coeff * step``.  None
    when a coefficient is fractional (non-integer addressing).
    """
    per_loop: List[List[int]] = []
    for value, coeff in form.coeffs.items():
        owner = value.owner
        loop = owner.parent_op if hasattr(owner, "parent_op") else None
        if not isinstance(loop, AffineForOp):
            continue
        factor = loop.unroll_factor
        if factor <= 1:
            continue
        stride = coeff * loop.step
        if stride.denominator != 1:
            return None
        per_loop.append([k * int(stride) for k in range(min(factor, 64))])
    if not per_loop:
        return [0]
    offsets = [sum(combo) for combo in itertools.product(*per_loop)]
    if len(offsets) > 4096:
        offsets = offsets[:4096]
    return offsets
