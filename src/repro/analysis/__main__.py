"""Standalone static-analysis CLI: sweep workloads, print a rule-hit table.

Examples::

    python -m repro.analysis --list-rules
    python -m repro.analysis --workload resnet18 --workload 2mm
    python -m repro.analysis --all-workloads
    python -m repro.analysis --all-workloads --json report.json
    python -m repro.analysis --all-workloads --write-baseline tools/analysis_baseline.json
    python -m repro.analysis --all-workloads --baseline tools/analysis_baseline.json
    python -m repro.analysis --workload lenet --fail-on warning
    python -m repro.analysis --workload atax \\
        --spec "construct-dataflow,lower-structural,estimate"

Every workload compiles through ``--spec`` (default: the full Figure-3
pipeline) and the final structural design is analyzed; the table reports
per-rule hit counts.  ``--baseline`` compares those counts against a
committed file and fails on any *new* hit — the CI smoke check that keeps
the zoo clean without freezing intentional findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from ..compiler.driver import DEFAULT_PIPELINE, Compiler
from ..compiler.spec import PipelineSpecError
from ..evaluation.reporting import format_table
from ..targets import UnknownTargetError, get_target
from ..workloads import UnknownWorkloadError, get_workload, iter_workloads
from .engine import AnalysisReport, analyze_module
from .rules import available_rules, rule_registry, severity_rank


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static dataflow soundness analysis over compiled workloads.",
    )
    parser.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        default=None,
        metavar="NAME[@PARAM=VALUE,...]",
        help="analyze this registered workload; repeatable",
    )
    parser.add_argument(
        "--all-workloads",
        action="store_true",
        help="analyze every registered workload (the full zoo)",
    )
    parser.add_argument(
        "--target",
        "--platform",
        dest="platform",
        default="vu9p-slr",
        metavar="NAME",
        help="target platform (default: vu9p-slr)",
    )
    parser.add_argument(
        "--spec",
        default=DEFAULT_PIPELINE,
        help="pipeline spec compiled before analysis "
        "(default: the full Figure-3 pipeline)",
    )
    parser.add_argument(
        "--rules",
        action="append",
        default=None,
        metavar="RULE",
        help="restrict to this rule id; repeatable (see --list-rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, severity, description) and exit",
    )
    parser.add_argument(
        "--fail-on",
        choices=("never", "note", "warning", "error"),
        default="never",
        metavar="SEVERITY",
        help="exit with status 1 when any finding reaches this severity",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="compare per-workload rule counts against this baseline JSON "
        "and exit with status 1 on any new hit",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the observed per-workload rule counts as a baseline JSON",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the full per-workload reports as JSON to PATH",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print every individual finding, not just the count table",
    )
    parser.add_argument(
        "--annotate",
        action="store_true",
        help="emit GitHub Actions workflow annotations "
        "(::error file=...) for every finding",
    )
    return parser


#: Lint severity -> GitHub workflow-command level.
_ANNOTATION_LEVELS = {"error": "error", "warning": "warning", "note": "notice"}


def _print_annotations(label: str, report: AnalysisReport) -> None:
    """One ``::level file=...`` workflow command per finding.

    The file is the virtual printed-IR path of the workload (the same text
    ``--print-ir`` renders and diagnostics' line numbers index into).
    """
    for finding in report.diagnostics:
        level = _ANNOTATION_LEVELS.get(finding.severity, "warning")
        line = finding.location.line if finding.location else 1
        message = f"{label}: {finding.message}"
        print(
            f"::{level} file=printed-ir/{label}.mlir,line={line},"
            f"title={finding.rule}::{message}"
        )


def _print_rule_catalog() -> None:
    for rule_id, cls in rule_registry().items():
        print(f"{rule_id:14s} [{cls.severity}] {cls.description}")
        if cls.hint:
            print(f"  hint: {cls.hint}")


def analyze_workload(handle, spec: str, platform: str) -> AnalysisReport:
    """Compile one workload through ``spec`` and analyze the final design."""
    compiler = Compiler.from_spec(spec, platform=platform)
    result = compiler.run(workload=handle)
    return analyze_module(result.module, platform=platform)


def _counts_payload(
    reports: Dict[str, AnalysisReport], spec: str, platform: str
) -> Dict:
    return {
        "platform": platform,
        "spec": spec,
        "counts": {label: report.counts() for label, report in reports.items()},
    }


def _new_hits(current: Dict, baseline: Dict) -> List[str]:
    """Human-readable lines for every count exceeding the baseline."""
    lines: List[str] = []
    baseline_counts = baseline.get("counts", {})
    for label in sorted(current["counts"]):
        allowed = baseline_counts.get(label, {})
        for rule, count in sorted(current["counts"][label].items()):
            if count > int(allowed.get(rule, 0)):
                lines.append(
                    f"{label}: {rule} hit {count} time(s), "
                    f"baseline allows {int(allowed.get(rule, 0))}"
                )
    return lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_catalog()
        return 0
    if bool(args.workloads) == bool(args.all_workloads):
        parser.error("pass --workload NAME (repeatable) or --all-workloads")
    if args.rules:
        unknown = sorted(set(args.rules) - set(available_rules()))
        if unknown:
            parser.error(
                f"--rules: unknown rule id(s) {', '.join(unknown)}; "
                f"known rules: {', '.join(available_rules())}"
            )
    try:
        platform = get_target(args.platform).name
    except UnknownTargetError as error:
        parser.error(f"--target: {error}")

    if args.all_workloads:
        handles = list(iter_workloads())
    else:
        handles = []
        for name in args.workloads:
            try:
                handles.append(get_workload(name))
            except (UnknownWorkloadError, ValueError) as error:
                parser.error(f"--workload: {error}")

    rule_ids = args.rules or available_rules()
    reports: Dict[str, AnalysisReport] = {}
    failures: List[str] = []
    for handle in handles:
        label = handle.label()
        try:
            report = analyze_workload(handle, args.spec, platform)
        except PipelineSpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except Exception as error:  # pragma: no cover - zoo-dependent
            failures.append(f"{label}: {type(error).__name__}: {error}")
            continue
        if args.rules:
            report.diagnostics = [
                d for d in report.diagnostics if d.rule in set(args.rules)
            ]
        reports[label] = report

    headers = ["workload", "schedules", *rule_ids, "suppressed"]
    rows = []
    for label in sorted(reports):
        report = reports[label]
        counts = report.counts()
        rows.append(
            [
                label,
                report.schedules,
                *[counts.get(rule, 0) for rule in rule_ids],
                report.suppressed,
            ]
        )
    totals = [
        "total",
        sum(r.schedules for r in reports.values()),
        *[
            sum(r.counts().get(rule, 0) for r in reports.values())
            for rule in rule_ids
        ],
        sum(r.suppressed for r in reports.values()),
    ]
    rows.append(totals)
    print(
        format_table(
            headers,
            rows,
            f"Static analysis ({len(reports)} workload(s), "
            f"platform {platform}, spec {args.spec!r})",
        )
    )
    if args.verbose:
        for label in sorted(reports):
            for finding in reports[label].diagnostics:
                print(f"{label}: {finding}")
    if args.annotate:
        for label in sorted(reports):
            _print_annotations(label, reports[label])
    for failure in failures:
        print(f"compile failure (not analyzed): {failure}", file=sys.stderr)

    current = _counts_payload(reports, args.spec, platform)
    if args.json:
        payload = {
            "platform": platform,
            "spec": args.spec,
            "workloads": {
                label: report.to_dict() for label, report in reports.items()
            },
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline {args.write_baseline}")

    status = 0
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        regressions = _new_hits(current, baseline)
        for line in regressions:
            print(f"new hit vs baseline: {line}", file=sys.stderr)
        if regressions:
            status = 1
        else:
            print(f"no new hits vs baseline {args.baseline}")
    if args.fail_on != "never":
        floor = severity_rank(args.fail_on)
        offenders = [
            f"{label}: {finding}"
            for label in sorted(reports)
            for finding in reports[label].diagnostics
            if severity_rank(finding.severity) >= floor
        ]
        for line in offenders:
            print(f"fail-on {args.fail_on}: {line}", file=sys.stderr)
        if offenders:
            status = 1
    if failures:
        status = max(status, 1)
    return status


if __name__ == "__main__":
    sys.exit(main())
