"""Distance/direction-vector dependence analysis over affine loop nests.

This is the polyhedral-lite foundation the transform-legality layer
(:mod:`repro.analysis.legality`), the recurrence-MII bound
(:mod:`repro.analysis.recurrence`) and the loop lint rules build on.  It
classifies RAW/WAR/WAW dependences between :class:`AffineLoadOp` /
:class:`AffineStoreOp` pairs on the same buffer and solves, per common
enclosing loop, for the iteration *distance* (sink iteration minus source
iteration) using a GCD test plus a Banerjee-style bounds test over the
statically known trip counts — no external solver.

Precision model
---------------
Subscripts are linearized over induction variables (through
``affine.apply`` chains, so tiled ``d0 + d1`` indices work); anything
non-linear (``floordiv``/``mod``, symbols, values computed inside the
nest) degrades *conservatively*: the analysis may report a dependence
that does not exist, but never misses one.  Each distance entry is one of

* ``exact`` — the distance at that level is a known integer;
* ``atleast`` — lower-bounded (from the lexicographic ordering of source
  before sink), e.g. the carried level of a reduction;
* ``any`` — unconstrained by the subscripts;
* ``unknown`` — the subscripts could not be analyzed at this level.

``exact``/``atleast`` entries are sound bounds; ``any``/``unknown`` must
be treated as "every distance possible".
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..dialects.affine import (
    AffineApplyOp,
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    enclosing_loops,
)
from ..dialects.affine_map import (
    AffineBinaryExpr,
    AffineConstantExpr,
    AffineDimExpr,
    AffineExpr,
)
from ..ir.core import Block, Operation, Value

__all__ = [
    "DistanceElement",
    "Dependence",
    "nest_dependences",
    "band_dependences",
    "loop_carried_dependences",
    "loop_carries_dependence",
]

_EXACT = "exact"
_ATLEAST = "atleast"
_ANY = "any"
_UNKNOWN = "unknown"

#: Cap on affine.apply chains followed while linearizing a subscript.
_MAX_APPLY_DEPTH = 8


@dataclasses.dataclass(frozen=True)
class DistanceElement:
    """Dependence distance at one loop level (sink minus source iteration)."""

    kind: str  # "exact" | "atleast" | "any" | "unknown"
    value: int = 0  # the exact distance, or the lower bound for "atleast"

    @property
    def can_be_zero(self) -> bool:
        if self.kind == _EXACT:
            return self.value == 0
        if self.kind == _ATLEAST:
            return self.value <= 0
        return True

    def can_be_positive(self, trip_count: int) -> bool:
        if self.kind == _EXACT:
            return self.value > 0
        if self.kind == _ATLEAST:
            return trip_count - 1 >= max(self.value, 1)
        return trip_count > 1

    @property
    def can_be_negative(self) -> bool:
        if self.kind == _EXACT:
            return self.value < 0
        if self.kind == _ATLEAST:
            return self.value < 0
        return True

    @property
    def min_positive(self) -> int:
        """Smallest positive distance this entry allows (assuming one exists)."""
        if self.kind == _EXACT:
            return max(self.value, 1)
        if self.kind == _ATLEAST:
            return max(self.value, 1)
        return 1

    @property
    def direction(self) -> str:
        """Classic direction-vector character ("<", "=", ">", "<=", "*")."""
        if self.kind == _EXACT:
            return "<" if self.value > 0 else ("=" if self.value == 0 else ">")
        if self.kind == _ATLEAST:
            return "<" if self.value >= 1 else "<="
        return "*"


def _exact(value: int) -> DistanceElement:
    return DistanceElement(_EXACT, value)


@dataclasses.dataclass
class Dependence:
    """One memory dependence between two accesses of the same buffer.

    ``source`` executes (in some iteration pair) before ``sink``;
    ``distance[i]`` constrains sink minus source iteration of ``loops[i]``.
    """

    source: Operation
    sink: Operation
    buffer: Value
    kind: str  # "RAW" | "WAR" | "WAW"
    loops: Tuple[AffineForOp, ...]
    distance: Tuple[DistanceElement, ...]

    @property
    def direction(self) -> Tuple[str, ...]:
        return tuple(element.direction for element in self.distance)

    @property
    def is_loop_independent(self) -> bool:
        """Source and sink can touch the same address in the same iteration."""
        return all(element.can_be_zero for element in self.distance)

    def carried_at(self, level: int) -> bool:
        """Can this dependence be carried by ``loops[level]``?

        Carried at ``level`` means: equal iterations of every outer loop and
        a strictly positive distance at ``level`` are feasible.
        """
        if not 0 <= level < len(self.distance):
            return False
        if not all(self.distance[i].can_be_zero for i in range(level)):
            return False
        return self.distance[level].can_be_positive(self.loops[level].trip_count)

    def carried_by(self, loop: AffineForOp) -> bool:
        for level, candidate in enumerate(self.loops):
            if candidate is loop:
                return self.carried_at(level)
        return False

    def min_distance_at(self, level: int) -> int:
        """Smallest positive carried distance at ``level`` (1 when free)."""
        return self.distance[level].min_positive

    def describe(self) -> str:
        vector = ", ".join(
            str(e.value) if e.kind == _EXACT else
            (f">={e.value}" if e.kind == _ATLEAST else e.kind)
            for e in self.distance
        )
        return f"{self.kind} distance ({vector})"


# ---------------------------------------------------------------------------
# Subscript linearization
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class _LinearIndex:
    """``const + sum(coeffs[v] * v)`` over SSA index values."""

    coeffs: Dict[Value, Fraction]
    const: Fraction

    def add(self, other: "_LinearIndex") -> "_LinearIndex":
        coeffs = dict(self.coeffs)
        for value, coeff in other.coeffs.items():
            coeffs[value] = coeffs.get(value, Fraction(0)) + coeff
        return _LinearIndex(
            {v: c for v, c in coeffs.items() if c != 0}, self.const + other.const
        )

    def scale(self, factor: Fraction) -> "_LinearIndex":
        return _LinearIndex(
            {v: c * factor for v, c in self.coeffs.items() if c * factor != 0},
            self.const * factor,
        )

    @property
    def constant_value(self) -> Optional[Fraction]:
        return self.const if not self.coeffs else None


def _linearize_value(value: Value, depth: int = 0) -> _LinearIndex:
    """Express an index value as a linear form over "root" SSA values.

    ``affine.apply`` results are expanded through their maps (bounded
    depth); every other value — induction variables, block arguments,
    results of arbitrary computation — stays a variable of the form.
    """
    owner = value.owner
    if (
        depth < _MAX_APPLY_DEPTH
        and isinstance(owner, Operation)
        and isinstance(owner, AffineApplyOp)
    ):
        operands = list(owner.operands)
        operand_forms = [_linearize_value(v, depth + 1) for v in operands]
        expanded = _expr_to_linear(owner.map.results[0], operand_forms)
        if expanded is not None:
            return expanded
    return _LinearIndex({value: Fraction(1)}, Fraction(0))


def _expr_to_linear(
    expr: AffineExpr, dim_forms: Sequence[_LinearIndex]
) -> Optional[_LinearIndex]:
    """Fold an affine expression over linear operand forms; None if non-linear."""
    if isinstance(expr, AffineConstantExpr):
        return _LinearIndex({}, Fraction(expr.value))
    if isinstance(expr, AffineDimExpr):
        if expr.position >= len(dim_forms):
            return None
        return dim_forms[expr.position]
    if isinstance(expr, AffineBinaryExpr):
        lhs = _expr_to_linear(expr.lhs, dim_forms)
        rhs = _expr_to_linear(expr.rhs, dim_forms)
        if lhs is None or rhs is None:
            return None
        if expr.kind == "add":
            return lhs.add(rhs)
        if expr.kind == "mul":
            if rhs.constant_value is not None:
                return lhs.scale(rhs.constant_value)
            if lhs.constant_value is not None:
                return rhs.scale(lhs.constant_value)
            return None
        # floordiv / ceildiv / mod: fold only the fully constant case.
        lc, rc = lhs.constant_value, rhs.constant_value
        if lc is not None and rc is not None and rc != 0:
            if lc.denominator == 1 and rc.denominator == 1:
                a, b = int(lc), int(rc)
                if expr.kind == "floordiv":
                    return _LinearIndex({}, Fraction(a // b))
                if expr.kind == "ceildiv":
                    return _LinearIndex({}, Fraction(-((-a) // b)))
                if expr.kind == "mod":
                    return _LinearIndex({}, Fraction(a % b))
        return None
    return None  # symbols and anything else: not analyzable


@dataclasses.dataclass
class _Access:
    op: Operation
    memref: Value
    is_store: bool
    subscripts: List[Optional[_LinearIndex]]
    loops: Tuple[AffineForOp, ...]  # enclosing loops within the nest root
    order: int  # program (walk) order within the root


def _collect_accesses(root: Operation) -> List[_Access]:
    accesses: List[_Access] = []
    order = 0
    for op in root.walk():
        if isinstance(op, AffineLoadOp):
            memref, indices, is_store = op.memref, op.index_operands, False
        elif isinstance(op, AffineStoreOp):
            memref, indices, is_store = op.memref, op.index_operands, True
        else:
            continue
        loops = tuple(
            loop
            for loop in enclosing_loops(op)
            if loop is root or root.is_ancestor_of(loop)
        )
        # Each subscript is the access map's result expression composed
        # over the linearized index operands (so both map-level arithmetic
        # like ``d0 * 2 + 1`` and operand-level ``affine.apply`` chains
        # land in one linear form).
        operand_forms = [_linearize_value(index) for index in indices]
        subscripts: List[Optional[_LinearIndex]] = [
            _expr_to_linear(expr, operand_forms)
            for expr in op.access_map.results
        ]
        accesses.append(_Access(op, memref, is_store, subscripts, loops, order))
        order += 1
    return accesses


# ---------------------------------------------------------------------------
# Pairwise solving
# ---------------------------------------------------------------------------


def _defined_inside(value: Value, root: Operation) -> bool:
    owner = value.owner
    if isinstance(owner, Operation):
        return root.is_ancestor_of(owner)
    if isinstance(owner, Block):
        parent = owner.parent.parent if owner.parent is not None else None
        return parent is not None and root.is_ancestor_of(parent)
    return False


def _gcd(a: int, b: int) -> int:
    a, b = abs(a), abs(b)
    while b:
        a, b = b, a % b
    return a


def _common_denominator(values: Iterable[Fraction]) -> int:
    lcm = 1
    for value in values:
        d = value.denominator
        g = _gcd(lcm, d)
        lcm = lcm // g * d
    return lcm


def _iter_range(loop: AffineForOp) -> int:
    """Number of iterations minus one (max |distance| the loop allows)."""
    return max(loop.trip_count - 1, 0)


def _solve_pair(
    src: _Access,
    dst: _Access,
    common: Sequence[AffineForOp],
    root: Operation,
    strict: bool,
) -> Optional[List[DistanceElement]]:
    """Distance vector of src -> dst over ``common``; None if independent.

    ``strict`` demands a lexicographically positive distance (src in a
    strictly earlier iteration); otherwise equal iterations also count
    (src precedes dst in program order).
    """
    n = len(common)
    level_of = {id(loop.induction_variable): i for i, loop in enumerate(common)}
    exact: List[Optional[int]] = [None] * n
    unknown = [False] * n
    pair_unknown = False

    rank = min(len(src.subscripts), len(dst.subscripts))
    for dim in range(rank):
        fa, fb = src.subscripts[dim], dst.subscripts[dim]
        if fa is None or fb is None:
            pair_unknown = True
            continue
        coeff_a: Dict[int, Fraction] = {}
        coeff_b: Dict[int, Fraction] = {}
        skip_dim = False
        invariant_mismatch = False
        for value in set(fa.coeffs) | set(fb.coeffs):
            ca = fa.coeffs.get(value, Fraction(0))
            cb = fb.coeffs.get(value, Fraction(0))
            level = level_of.get(id(value))
            if level is not None:
                if ca:
                    coeff_a[level] = ca
                if cb:
                    coeff_b[level] = cb
                continue
            if _defined_inside(value, root):
                # An index that varies per instance independently of the
                # common loops (inner loop IV, computed value): the dim
                # imposes no constraint we can use — assume it can match.
                skip_dim = True
                break
            if ca != cb:
                # Loop-invariant value with different weight on each side:
                # the offset between the two subscripts is unknown.
                invariant_mismatch = True
        if skip_dim:
            continue
        involved = sorted(set(coeff_a) | set(coeff_b))
        if invariant_mismatch:
            for level in involved:
                unknown[level] = True
            if not involved:
                pair_unknown = True
            continue
        const = fb.const - fa.const
        if not involved:
            if const != 0:
                return None  # distinct constant addresses: independent
            continue
        uniform = all(
            coeff_a.get(level, Fraction(0)) == coeff_b.get(level, Fraction(0))
            for level in involved
        )
        if uniform:
            verdict = _solve_uniform_dim(
                involved, coeff_a, const, common, exact, unknown
            )
            if verdict is False:
                return None  # no aliasing iteration pair: independent
            continue
        # General case: GCD + bounds tests over iteration-number variables.
        # sum(a_l*s_l * t_src_l) - sum(b_l*s_l * t_dst_l) = C2
        terms: List[Tuple[int, int]] = []  # (int coefficient, trip range)
        c2 = const
        for level in involved:
            step = Fraction(common[level].step)
            lb = Fraction(common[level].lower_bound)
            a = coeff_a.get(level, Fraction(0))
            b = coeff_b.get(level, Fraction(0))
            c2 -= (a - b) * lb
            if a:
                terms.append((a * step, _iter_range(common[level])))
            if b:
                terms.append((-b * step, _iter_range(common[level])))
        denom = _common_denominator([t[0] for t in terms] + [c2])
        int_terms = [(int(t * denom), r) for t, r in terms]
        c2_int = int(c2 * denom)
        g = 0
        for coefficient, _ in int_terms:
            g = _gcd(g, coefficient)
        if g and c2_int % g != 0:
            return None  # GCD test: no integer solution
        low = sum(min(c * r, 0) for c, r in int_terms)
        high = sum(max(c * r, 0) for c, r in int_terms)
        if not low <= c2_int <= high:
            return None  # bounds test: no solution inside the loop bounds
        for level in involved:
            if exact[level] is None:
                unknown[level] = True

    # Assemble raw per-level elements.
    elements: List[DistanceElement] = []
    for level in range(n):
        if exact[level] is not None:
            elements.append(_exact(exact[level]))
        elif unknown[level] or pair_unknown:
            elements.append(DistanceElement(_UNKNOWN))
        else:
            elements.append(DistanceElement(_ANY))

    # A loop the lowering explicitly declared ``parallel`` (e.g. the output
    # dimensions of a linalg op, whose delinearized subscripts can exceed
    # the linear model) carries no cross-iteration aliasing: resolve
    # conservative levels to zero.  Proven exact distances are kept — an
    # attribute never overrides a proof.
    for level, loop in enumerate(common):
        if (
            elements[level].kind != _EXACT
            and loop.has_attr("parallel")
            and loop.is_parallel
        ):
            elements[level] = _exact(0)

    return _apply_ordering(elements, common, strict)


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)


def _solve_uniform_dim(
    involved: Sequence[int],
    coeffs: Dict[int, Fraction],
    const: Fraction,
    common: Sequence[AffineForOp],
    exact: List[Optional[int]],
    unknown: List[bool],
) -> bool:
    """Solve one subscript dim whose coefficients match on both sides.

    With equal coefficients the aliasing equation collapses to a single
    distance variable per level: ``sum(g_l * d_l) = -const`` with
    ``|d_l| <= range_l``.  Per-level bounds are tightened to a fixpoint by
    interval propagation; a level pinned to one value becomes ``exact``,
    a level left with slack becomes ``unknown``.  Returns False when the
    system has no integer solution (the accesses are independent).
    """
    entries: List[Tuple[int, Fraction, int]] = []
    for level in involved:
        g = coeffs.get(level, Fraction(0)) * Fraction(common[level].step)
        if g != 0:
            entries.append((level, g, _iter_range(common[level])))
    if not entries:
        return const == 0
    denom = _common_denominator([g for _, g, _ in entries] + [const])
    terms = [(level, int(g * denom), r) for level, g, r in entries]
    target = int(-const * denom)
    g_all = 0
    for _, g, _ in terms:
        g_all = _gcd(g_all, g)
    if g_all and target % g_all != 0:
        return False  # GCD test: no integer solution
    bounds: Dict[int, Tuple[int, int]] = {}
    for level, _, r in terms:
        if exact[level] is not None:
            bounds[level] = (exact[level], exact[level])
        else:
            bounds[level] = (-r, r)
    changed = True
    rounds = 0
    while changed and rounds <= len(terms) + 2:
        changed = False
        rounds += 1
        for level, g, _ in terms:
            rest_low = rest_high = 0
            for other, g2, _ in terms:
                if other == level:
                    continue
                lo2, hi2 = bounds[other]
                rest_low += min(g2 * lo2, g2 * hi2)
                rest_high += max(g2 * lo2, g2 * hi2)
            low_num = target - rest_high
            high_num = target - rest_low
            if g > 0:
                lo_d, hi_d = _ceil_div(low_num, g), high_num // g
            else:
                lo_d, hi_d = _ceil_div(high_num, g), low_num // g
            cur_lo, cur_hi = bounds[level]
            new_lo, new_hi = max(cur_lo, lo_d), min(cur_hi, hi_d)
            if new_lo > new_hi:
                return False  # bounds test: no solution in range
            if (new_lo, new_hi) != (cur_lo, cur_hi):
                bounds[level] = (new_lo, new_hi)
                changed = True
    for level, _, _ in terms:
        lo, hi = bounds[level]
        if lo == hi:
            if exact[level] is not None and exact[level] != lo:
                return False  # two dims demand different distances
            exact[level] = lo
        elif exact[level] is None:
            unknown[level] = True
    return True


def _apply_ordering(
    elements: List[DistanceElement],
    common: Sequence[AffineForOp],
    strict: bool,
) -> Optional[List[DistanceElement]]:
    """Intersect with the lexicographic source-before-sink constraint.

    Returns refined elements, or None when no ordered iteration pair exists
    (the candidate dependence is infeasible).
    """
    trips = [loop.trip_count for loop in common]
    # Single-iteration loops force a zero distance.
    for i, element in enumerate(elements):
        if trips[i] <= 1:
            if element.kind == _EXACT and element.value != 0:
                return None
            if element.kind == _ATLEAST and element.value > 0:
                return None
            elements[i] = _exact(0)
        elif element.kind == _EXACT and abs(element.value) > trips[i] - 1:
            return None

    def suffix_can_be_lexpos(start: int) -> bool:
        for k in range(start, len(elements)):
            if elements[k].can_be_positive(trips[k]):
                return True
            if not elements[k].can_be_zero:
                return False
        return False

    def suffix_can_be_zero(start: int) -> bool:
        return all(e.can_be_zero for e in elements[start:])

    # Feasibility of a lex-positive (strict) or lex-nonnegative distance.
    feasible = not strict and suffix_can_be_zero(0)
    if not feasible:
        for j in range(len(elements)):
            if not all(elements[i].can_be_zero for i in range(j)):
                break
            if elements[j].can_be_positive(trips[j]):
                feasible = True
                break
    if not feasible and not elements:
        feasible = not strict  # scalar accesses: same-iteration ordering only
    if not feasible:
        return None

    # Refinement: after a prefix of exact zeros, the first free level cannot
    # be negative (that would make the whole vector lex-negative); it must
    # even be >= 1 when no deeper level can rescue lexicographic positivity.
    for j, element in enumerate(elements):
        if element.kind == _EXACT:
            if element.value != 0:
                break
            continue
        lower = 0
        if not (
            suffix_can_be_lexpos(j + 1)
            or (not strict and suffix_can_be_zero(j + 1))
        ):
            lower = 1
        if element.kind == _ATLEAST:
            lower = max(lower, element.value)
        elements[j] = DistanceElement(_ATLEAST, lower)
        break
    return elements


def _dependence_kind(source_is_store: bool, sink_is_store: bool) -> str:
    if source_is_store and sink_is_store:
        return "WAW"
    if source_is_store:
        return "RAW"
    return "WAR"


def _make_dependence(
    source: _Access,
    sink: _Access,
    common: Tuple[AffineForOp, ...],
    distance: List[DistanceElement],
) -> Dependence:
    return Dependence(
        source=source.op,
        sink=sink.op,
        buffer=source.memref,
        kind=_dependence_kind(source.is_store, sink.is_store),
        loops=common,
        distance=tuple(distance),
    )


def _common_prefix(
    a: Tuple[AffineForOp, ...], b: Tuple[AffineForOp, ...]
) -> Tuple[AffineForOp, ...]:
    out: List[AffineForOp] = []
    for la, lb in zip(a, b):
        if la is not lb:
            break
        out.append(la)
    return tuple(out)


def nest_dependences(
    root: Operation, include_loop_independent: bool = True
) -> List[Dependence]:
    """All memory dependences between affine accesses nested under ``root``.

    Every pair of accesses to the same buffer with at least one store is
    solved in both directions over their common enclosing loops (within
    ``root``): program order for the forward direction, strictly earlier
    iterations for the backward one.
    """
    accesses = _collect_accesses(root)
    by_buffer: Dict[int, List[_Access]] = {}
    for access in accesses:
        by_buffer.setdefault(id(access.memref), []).append(access)

    dependences: List[Dependence] = []

    def admit(dep: Dependence) -> None:
        if include_loop_independent or not dep.is_loop_independent or any(
            element.can_be_positive(loop.trip_count)
            for element, loop in zip(dep.distance, dep.loops)
        ):
            dependences.append(dep)

    for group in by_buffer.values():
        for i, a in enumerate(group):
            if a.is_store:
                # An access can depend on itself across iterations.
                common = a.loops
                distance = _solve_pair(a, a, common, root, strict=True)
                if distance is not None:
                    admit(_make_dependence(a, a, common, distance))
            for b in group[i + 1 :]:
                if not (a.is_store or b.is_store):
                    continue
                common = _common_prefix(a.loops, b.loops)
                forward = _solve_pair(a, b, common, root, strict=False)
                if forward is not None:
                    admit(_make_dependence(a, b, common, forward))
                backward = _solve_pair(b, a, common, root, strict=True)
                if backward is not None:
                    admit(_make_dependence(b, a, common, backward))
    return dependences


def band_dependences(band: Sequence[AffineForOp]) -> List[Dependence]:
    """Dependences of the nest rooted at the outermost loop of ``band``."""
    if not band:
        return []
    return nest_dependences(band[0])


def loop_carried_dependences(loop: AffineForOp) -> List[Dependence]:
    """Dependences carried by ``loop`` itself (distance > 0 at its level)."""
    carried = []
    for dep in nest_dependences(loop, include_loop_independent=False):
        if dep.loops and dep.loops[0] is loop and dep.carried_at(0):
            carried.append(dep)
    return carried


def loop_carries_dependence(loop: AffineForOp) -> bool:
    """True when iterations of ``loop`` cannot safely run in parallel."""
    return bool(loop_carried_dependences(loop))
