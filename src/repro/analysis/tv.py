"""Translation validation: per-stage semantic equivalence checking.

Every pipeline stage boundary becomes a checkable claim: the module after
the stage must compute the same outputs as the module before it, over the
seeded reference inputs of :mod:`repro.ir.interp`.  Following the
CounterPoint idiom (concrete measurements refute analytic assumptions),
"legal" is no longer argued — it is executed.

Two equivalence paths, cheapest first:

* **Static fast path** — :func:`semantic_fingerprint` strips every
  directive/bookkeeping attribute (:data:`NON_SEMANTIC_ATTRS`) and hashes
  the printed module.  Stages that only annotate (``tile``,
  ``parallelize``, unroll/pipeline directives) leave access maps, loop
  bounds and op structure untouched, so their boundary validates without
  executing anything.
* **Executed path** — both module versions run through the reference
  interpreter and their outputs diff *bitwise* by default.  Inputs are
  deterministic small integers, so f64 arithmetic is exact and even
  reassociating transforms stay byte-identical on kernels without
  division; kernels with genuinely non-integer math (``divf``/``sqrt``/
  ``exp``) pass a documented relative ``tolerance`` instead.

A module too large for the interpreter's op budget reports an honest
``skipped-budget`` — never a silently vacuous "validated".

Wired in at four layers:

* the registered ``validate`` compiler stage (interleaved by
  ``python -m repro.compiler --validate``; exit code 5 on a mismatch);
* ircache snapshot self-verification (:meth:`IRSnapshotCache.store`
  executes the parsed snapshot against the live state before writing);
* ``explore(validate_frontier=True)`` — promoted Pareto points are
  semantics-checked before being reported;
* the legality fuzzer (``python -m repro.analysis.tv --fuzz``): every
  random checked transform either raises ``TransformLegalityError`` or
  validates — no third outcome.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import random
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.interp import (
    DEFAULT_MAX_OPS,
    ExecutionResult,
    InterpreterBudgetError,
    InterpreterError,
    diff_results,
    interpret_module,
)

__all__ = [
    "NON_SEMANTIC_ATTRS",
    "FuzzReport",
    "StageValidation",
    "TranslationValidationError",
    "TVBaseline",
    "ValidationReport",
    "fuzz_transforms",
    "interleave_validate",
    "run_validate_stage",
    "semantic_fingerprint",
    "validate_pipeline",
    "validate_point",
]

#: Attributes that never change a module's observable behavior: directives
#: consumed by the QoR estimator / HLS backend (unroll, pipeline, tiling,
#: partitioning hints) and pure bookkeeping.  Stripped before
#: fingerprinting, so directive-only stages take the static fast path.
#: ``map``/``layout``/``lower_bound``/... stay — those shape addressing.
NON_SEMANTIC_ATTRS = frozenset(
    {
        "balanced",
        "depth",
        "label",
        "layer",
        "lint_suppress",
        "memory_kind",
        "parallel",
        "partition",
        "pipeline",
        "point_loop",
        "soft_fifo",
        "target_ii",
        "tile_elements",
        "tile_size",
        "tiled",
        "unroll_factor",
    }
)

#: Validation outcomes, roughly cheapest to worst.
_OUTCOMES = ("baseline", "static", "bitwise", "tolerance", "skipped-budget", "mismatch")


class TranslationValidationError(RuntimeError):
    """A pipeline stage changed the module's observable behavior."""

    def __init__(
        self,
        stage: str,
        mismatches: Sequence[str],
        checks: Sequence["StageValidation"] = (),
    ) -> None:
        head = mismatches[0] if mismatches else "outputs differ"
        super().__init__(
            f"stage {stage!r} changed program behavior: {head}"
            + (f" (+{len(mismatches) - 1} more)" if len(mismatches) > 1 else "")
        )
        self.stage = stage
        self.mismatches = tuple(mismatches)
        self.checks = tuple(checks)


@dataclasses.dataclass(frozen=True)
class StageValidation:
    """Outcome of one stage-boundary equivalence check."""

    #: Label of the pipeline stage whose exit boundary this validates
    #: ("frontend" for the baseline before any stage ran).
    stage: str
    #: One of :data:`_OUTCOMES`.
    outcome: str
    mismatches: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "stage": self.stage,
            "outcome": self.outcome,
            "mismatches": list(self.mismatches),
        }


@dataclasses.dataclass
class TVBaseline:
    """Rolling reference carried through a pipeline's validate stages.

    ``behavior`` is the most recent successfully executed result (None
    while every boundary so far exceeded the interpreter budget), so
    comparisons are always against the *previous* stage boundary — the
    mismatch report names the stage that actually broke the program.
    """

    fingerprint: str
    behavior: Optional[ExecutionResult]
    seed: int
    max_ops: int
    checks: List[StageValidation] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ValidationReport:
    """Every stage-boundary check of one validated pipeline run."""

    workload: str
    spec: str
    platform: str
    checks: List[StageValidation] = dataclasses.field(default_factory=list)
    #: Message of the error that aborted the run (None = ran to completion).
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and all(
            check.outcome != "mismatch" for check in self.checks
        )

    @property
    def mismatches(self) -> List[StageValidation]:
        return [check for check in self.checks if check.outcome == "mismatch"]

    def outcomes(self) -> Dict[str, int]:
        """``outcome -> count`` in severity order (stable across runs)."""
        counts = {name: 0 for name in _OUTCOMES}
        for check in self.checks:
            counts[check.outcome] = counts.get(check.outcome, 0) + 1
        return {name: count for name, count in counts.items() if count}

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "spec": self.spec,
            "platform": self.platform,
            "ok": self.ok,
            "outcomes": self.outcomes(),
            "checks": [check.to_dict() for check in self.checks],
            "error": self.error,
        }


# ---------------------------------------------------------------------------
# Static fast path
# ---------------------------------------------------------------------------


def semantic_fingerprint(module) -> str:
    """Content hash of ``module`` modulo non-semantic attributes.

    Equal fingerprints prove equivalence structurally: access maps, loop
    bounds, op sequence and types are all part of the printed form, so two
    modules that differ only in directives (:data:`NON_SEMANTIC_ATTRS`)
    hash identically and need no execution.
    """
    from ..ir.printer import print_op

    clone = module.clone()
    for op in clone.walk():
        for name in NON_SEMANTIC_ATTRS:
            op.attributes.pop(name, None)
    text = print_op(clone)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


# ---------------------------------------------------------------------------
# The validate stage body
# ---------------------------------------------------------------------------


def _execute(module, seed: int, max_ops: int) -> Optional[ExecutionResult]:
    """Interpret ``module``; None when it exceeds the op budget."""
    try:
        return interpret_module(module, seed=seed, max_ops=max_ops)
    except InterpreterBudgetError:
        return None


def run_validate_stage(stage, state) -> None:
    """Body of the registered ``validate`` compiler stage.

    The first validate boundary of a run records the baseline
    (fingerprint + executed behavior) into ``state.tv_baseline``; every
    later one proves equivalence against it — statically when the
    semantic fingerprint is unchanged, by execution otherwise — then
    rolls the baseline forward.  A mismatch emits an error diagnostic and
    raises :class:`TranslationValidationError`.
    """
    seed = int(stage.seed)
    max_ops = int(stage.max_ops) or DEFAULT_MAX_OPS
    tolerance = float(stage.tolerance)
    after = stage.after or "frontend"
    baseline: Optional[TVBaseline] = state.tv_baseline
    if baseline is not None and (baseline.seed, baseline.max_ops) != (seed, max_ops):
        baseline = None  # incompatible reference inputs: start over
    fingerprint = semantic_fingerprint(state.module)

    if baseline is None:
        behavior = _execute(state.module, seed, max_ops)
        outcome = "baseline" if behavior is not None else "skipped-budget"
        state.tv_baseline = TVBaseline(fingerprint, behavior, seed, max_ops)
        check = StageValidation(after, outcome)
        state.tv_baseline.checks.append(check)
        state.emit(
            stage.name,
            f"{after}: recorded reference behavior ({outcome})",
            after=after,
            outcome=outcome,
        )
        return

    mismatches: Tuple[str, ...] = ()
    if fingerprint == baseline.fingerprint:
        outcome = "static"
    else:
        behavior = _execute(state.module, seed, max_ops)
        if behavior is None or baseline.behavior is None:
            # One side exceeded the interpreter budget: be honest, never
            # vacuously "validated".  Roll whatever executed forward.
            outcome = "skipped-budget"
            baseline.behavior = behavior or baseline.behavior
        else:
            try:
                exact = diff_results(baseline.behavior, behavior)
            except InterpreterError as error:  # result shapes diverged
                exact = [str(error)]
            if not exact:
                outcome = "bitwise"
            elif tolerance > 0 and not diff_results(
                baseline.behavior, behavior, tolerance=tolerance
            ):
                outcome = "tolerance"
            else:
                outcome = "mismatch"
                mismatches = tuple(exact[:8])
            baseline.behavior = behavior
        baseline.fingerprint = fingerprint

    check = StageValidation(after, outcome, mismatches)
    baseline.checks.append(check)
    state.tv_baseline = baseline
    severity = "error" if outcome == "mismatch" else "note"
    detail = f"; first: {mismatches[0]}" if mismatches else ""
    state.emit(
        stage.name,
        f"{after}: {outcome}{detail}",
        severity=severity,
        after=after,
        outcome=outcome,
        mismatches=list(mismatches),
    )
    if outcome == "mismatch":
        raise TranslationValidationError(after, mismatches, baseline.checks)


# ---------------------------------------------------------------------------
# Pipeline interleaving and the one-call validator
# ---------------------------------------------------------------------------


def interleave_validate(
    spec_text: str,
    seed: int = 0,
    max_ops: int = 0,
    tolerance: float = 0.0,
) -> str:
    """Insert a ``validate`` stage before the pipeline and after every stage.

    Parses through the real spec grammar (stage options contain commas),
    tags each inserted stage with the label of the boundary it checks, and
    returns the printed interleaved spec.  Existing ``validate`` stages
    are left alone and not doubled.
    """
    from ..compiler.spec import StageSpec, parse_pipeline

    def _validate_spec(after: str) -> StageSpec:
        options: Dict[str, List[str]] = {"after": [after]}
        if seed:
            options["seed"] = [str(seed)]
        if max_ops:
            options["max-ops"] = [str(max_ops)]
        if tolerance:
            options["tolerance"] = [repr(float(tolerance))]
        return StageSpec(name="validate", options=options)

    parsed = parse_pipeline(spec_text).stages
    stages: List[StageSpec] = []
    if not parsed or parsed[0].name != "validate":
        stages.append(_validate_spec("frontend"))
    for index, stage_spec in enumerate(parsed):
        stages.append(stage_spec)
        followed_by_validate = (
            index + 1 < len(parsed) and parsed[index + 1].name == "validate"
        )
        if stage_spec.name != "validate" and not followed_by_validate:
            stages.append(_validate_spec(stage_spec.name))
    return ",".join(stage.print() for stage in stages)


def validate_pipeline(
    workload,
    spec_text: Optional[str] = None,
    platform: str = "vu9p-slr",
    seed: int = 0,
    max_ops: int = 0,
    tolerance: float = 0.0,
) -> ValidationReport:
    """Compile ``workload`` through ``spec_text`` validating every boundary.

    Accepts everything ``Compiler.run`` accepts as a workload (registry
    handle, id string, ``WorkloadSpec``, raw module).  Returns a
    :class:`ValidationReport`; a behavioral mismatch aborts the pipeline
    and lands in ``report.error`` plus a ``mismatch`` check — it never
    raises, so sweeps can keep going.
    """
    from ..compiler.driver import DEFAULT_PIPELINE, Compiler, DiagnosticsObserver

    spec_text = spec_text or DEFAULT_PIPELINE
    interleaved = interleave_validate(
        spec_text, seed=seed, max_ops=max_ops, tolerance=tolerance
    )
    diagnostics = DiagnosticsObserver()
    compiler = Compiler.from_spec(
        interleaved, platform=platform, observers=[diagnostics]
    )
    label = workload.label() if hasattr(workload, "label") else str(workload)
    error: Optional[str] = None
    try:
        compiler.run(workload=workload)
    except TranslationValidationError as exc:
        error = str(exc)
    checks = [
        StageValidation(
            stage=str(d.data.get("after", "?")),
            outcome=str(d.data.get("outcome", "?")),
            mismatches=tuple(d.data.get("mismatches", ())),
        )
        for d in diagnostics.diagnostics
        if d.stage == "validate"
    ]
    return ValidationReport(
        workload=label,
        spec=spec_text,
        platform=platform,
        checks=checks,
        error=error,
    )


def validate_point(
    point,
    seed: int = 0,
    max_ops: int = 0,
    tolerance: float = 0.0,
) -> ValidationReport:
    """Translation-validate one DSE design point's full pipeline."""
    compiler = point.compiler()
    return validate_pipeline(
        point.workload_spec(),
        compiler.spec_text(),
        platform=point.platform,
        seed=seed,
        max_ops=max_ops,
        tolerance=tolerance,
    )


# ---------------------------------------------------------------------------
# Legality fuzzer
# ---------------------------------------------------------------------------

#: Small kernel instances the fuzzer mutates (cheap enough to interpret
#: hundreds of times; stencils get short time horizons).
_FUZZ_POOL: Tuple[Tuple[str, Dict[str, int]], ...] = (
    ("2mm", {"n": 8}),
    ("3mm", {"n": 8}),
    ("atax", {"n": 8}),
    ("bicg", {"n": 8}),
    ("mvt", {"n": 8}),
    ("gesummv", {"n": 8}),
    ("symm", {"n": 8}),
    ("syr2k", {"n": 8}),
    ("jacobi-2d", {"n": 8, "tsteps": 2}),
    ("seidel-2d", {"n": 8, "tsteps": 2}),
)

#: Relative tolerance for fuzzed kernels with non-integer math (division).
_FUZZ_TOLERANCE = 1e-9


@dataclasses.dataclass
class FuzzReport:
    """Outcome of a seeded legality-fuzz run."""

    applications: int = 0
    #: Transform requests the legality layer refused (the good rejections).
    rejected: int = 0
    #: Applied transforms whose before/after outputs matched.
    validated: int = 0
    #: Silent semantic changes: applied, *and* outputs differ.  Always a
    #: bug — either in the transform or in the legality predicate.
    failures: List[str] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, object]:
        return {
            "applications": self.applications,
            "rejected": self.rejected,
            "validated": self.validated,
            "failures": list(self.failures),
        }


def _all_loops(module) -> List:
    from ..dialects.affine import AffineForOp

    return [op for op in module.walk() if isinstance(op, AffineForOp)]


def fuzz_transforms(
    count: int = 200, seed: int = 0, tolerance: float = _FUZZ_TOLERANCE
) -> FuzzReport:
    """Apply ``count`` random *checked* transforms; each must either raise
    ``TransformLegalityError`` or preserve the module's behavior.

    Ties the PR-8 legality layer to executable ground truth: a predicate
    that wrongly approves a transform shows up as a recorded failure, and
    one that wrongly rejects shows up only as a higher rejection count —
    conservative in the safe direction.
    """
    from ..transforms.loop_transforms import (
        loop_bands_of,
        permute_band,
        pipeline_loop,
        unroll_loop,
    )
    from ..workloads import as_module, get_workload
    from .legality import TransformLegalityError

    rng = random.Random(seed)
    report = FuzzReport()
    for _ in range(max(0, int(count))):
        name, params = _FUZZ_POOL[rng.randrange(len(_FUZZ_POOL))]
        workload = get_workload(name).at(**params)
        module = as_module(workload)
        before = interpret_module(module, seed=seed)
        loops = _all_loops(module)
        if not loops:
            continue
        report.applications += 1
        kind = rng.choice(("permute", "unroll", "pipeline"))
        described = kind
        try:
            if kind == "permute":
                bands = [
                    band
                    for func in module.functions
                    for band in loop_bands_of(func)
                    if len(band) >= 2
                ]
                if not bands:
                    report.applications -= 1
                    continue
                band = bands[rng.randrange(len(bands))]
                order = list(range(len(band)))
                while order == list(range(len(band))):
                    rng.shuffle(order)
                described = f"permute{order}"
                permute_band(band, order, check=True)
            elif kind == "unroll":
                loop = loops[rng.randrange(len(loops))]
                factor = rng.choice((2, 3, 4, 8))
                literal = rng.random() < 0.5
                described = f"unroll x{factor}{' literal' if literal else ''}"
                unroll_loop(loop, factor, literal=literal, check=True)
            else:
                loop = loops[rng.randrange(len(loops))]
                target_ii = rng.choice((1, 2, 4))
                described = f"pipeline ii={target_ii}"
                pipeline_loop(loop, target_ii, check=True)
        except TransformLegalityError:
            report.rejected += 1
            continue
        after = interpret_module(module, seed=seed)
        deltas = diff_results(before, after, tolerance=tolerance)
        if deltas:
            report.failures.append(
                f"{workload.label()}: {described} validated as legal but "
                f"changed outputs: {deltas[0]}"
            )
        else:
            report.validated += 1
    return report


# ---------------------------------------------------------------------------
# CLI: zoo sweep and fuzz modes
# ---------------------------------------------------------------------------

#: Kernels with non-integer math need the documented relative tolerance;
#: everything else must stay bitwise.
_SWEEP_TOLERANCES = {"correlation": 1e-9}


def _sweep_workloads(names: Sequence[str], everything: bool) -> List:
    """Resolve the sweep's workload handles (kernels shrink to n=8)."""
    from ..workloads import get_workload, iter_workloads

    if everything:
        handles = list(iter_workloads(kind="kernel"))
    else:
        handles = [get_workload(name) for name in names]
    shrunk = []
    for handle in handles:
        if "n" in handle.params:
            handle = handle.at(n=8)
        if "tsteps" in handle.params:
            handle = handle.at(tsteps=2)
        shrunk.append(handle)
    return shrunk


def _sweep_specs(spec: Optional[str], ablations: bool) -> List[Tuple[str, str]]:
    from ..baselines.ablation import ABLATION_MODES, ablation_pipeline_spec
    from ..compiler.driver import DEFAULT_PIPELINE

    if spec:
        return [("spec", spec)]
    named = [("default", DEFAULT_PIPELINE)]
    if ablations:
        named += [
            (mode, ablation_pipeline_spec(mode, max_parallel_factor=8))
            for mode in sorted(ABLATION_MODES)
        ]
    return named


def _annotation(level: str, title: str, message: str) -> str:
    return f"::{level} title={title}::{message}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.tv",
        description="Translation-validate pipelines, or fuzz checked "
        "transforms against the reference interpreter.",
    )
    parser.add_argument(
        "--workload",
        action="append",
        default=[],
        metavar="NAME[@PARAM=VALUE,...]",
        help="workload id to validate (repeatable; kernels shrink to n=8)",
    )
    parser.add_argument(
        "--all-workloads",
        action="store_true",
        help="validate every registered kernel workload",
    )
    parser.add_argument(
        "--spec", default=None, help="pipeline spec (default: the Figure-3 default)"
    )
    parser.add_argument(
        "--ablations",
        action="store_true",
        help="also sweep the four Figure-11 ablation pipelines",
    )
    parser.add_argument("--target", default="vu9p-slr", metavar="NAME")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--max-ops", type=int, default=0, help="interpreter op budget (0 = default)"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="relative float tolerance for reassociating transforms "
        "(default 0 = bitwise; division/sqrt kernels get 1e-9 automatically)",
    )
    parser.add_argument(
        "--fuzz",
        action="store_true",
        help="legality-fuzz mode: apply --count random checked transforms",
    )
    parser.add_argument(
        "--count", type=int, default=200, help="fuzz applications (default 200)"
    )
    parser.add_argument(
        "--annotate",
        action="store_true",
        help="emit GitHub workflow annotations for failures",
    )
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.fuzz:
        report = fuzz_transforms(count=args.count, seed=args.seed)
        print(
            f"fuzz: {report.applications} application(s), "
            f"{report.rejected} rejected, {report.validated} validated, "
            f"{len(report.failures)} silent change(s)"
        )
        for failure in report.failures:
            print(f"  FAIL {failure}")
            if args.annotate:
                print(_annotation("error", "legality-fuzz", failure))
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        return 0 if report.ok else 1

    if not args.workload and not args.all_workloads:
        parser.error("pass --workload/--all-workloads (or --fuzz)")
    handles = _sweep_workloads(args.workload, args.all_workloads)
    specs = _sweep_specs(args.spec, args.ablations)
    reports: List[ValidationReport] = []
    failures = 0
    for handle in handles:
        tolerance = args.tolerance or _SWEEP_TOLERANCES.get(
            handle.definition.name, 0.0
        )
        for spec_name, spec_text in specs:
            report = validate_pipeline(
                handle,
                spec_text,
                platform=args.target,
                seed=args.seed,
                max_ops=args.max_ops,
                tolerance=tolerance,
            )
            reports.append(report)
            outcome = report.outcomes()
            tag = "ok" if report.ok else "FAIL"
            line = f"{tag:4s} {report.workload:24s} {spec_name:8s} {outcome}"
            if args.verbose or not report.ok:
                print(line)
            if not report.ok:
                failures += 1
                detail = report.error or "; ".join(
                    f"{c.stage}: {c.mismatches[0] if c.mismatches else c.outcome}"
                    for c in report.mismatches
                )
                if args.annotate:
                    print(
                        _annotation(
                            "error",
                            "translation-validation",
                            f"{report.workload} x {spec_name}: {detail}",
                        )
                    )
    print(
        f"validated {len(reports)} pipeline run(s) across "
        f"{len(handles)} workload(s) x {len(specs)} spec(s): "
        f"{failures} failure(s)"
    )
    if args.json:
        payload = {
            "runs": [report.to_dict() for report in reports],
            "failures": failures,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
