"""The built-in semantic checkers.

Four rules over the structural dataflow graph, all phrased against the
*same* channel model the coarse-grained simulator executes
(:mod:`repro.estimation.dataflow_sim`), which is what makes the deadlock
rule differentially testable: a ``deadlock`` finding is emitted only when
the simulator itself — run over the flagged cycle with unit latencies —
cannot sustain the back-pressure-free rate, so every flagged design
provably stalls in :func:`~repro.estimation.dataflow_sim.simulate_dataflow`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..dialects.dataflow import (
    BufferOp,
    get_consumers,
    get_producers,
)
from ..estimation.dataflow_sim import ChannelSpec, simulate_dataflow
from .rules import AnalysisDiagnostic, AnalysisRule, register_rule

__all__ = [
    "DeadlockRule",
    "TokenBalanceRule",
    "MemoryRaceRule",
    "BufferSizingRule",
]

#: Producer/consumer rate ratio beyond which a channel counts as imbalanced.
_RATE_MISMATCH = 2.0
#: Frames simulated when probing a cycle's sustainable interval.
_CYCLE_PROBE_FRAMES = 32
#: Oversizing slack tolerated before the buffer-sizing rule reports waste.
_OVERSIZE_MARGIN = 2


@register_rule
class DeadlockRule(AnalysisRule):
    """Channel-graph cycles whose buffering cannot absorb one frame."""

    rule_id = "deadlock"
    severity = "error"
    description = (
        "a feedback cycle of channels whose aggregate capacity cannot hold "
        "one frame per member node, so the pipeline stalls on back-pressure"
    )
    hint = (
        "deepen the cycle's buffers (balance stage / larger budget) or break "
        "the feedback channel"
    )

    def check(self, context) -> Iterable[AnalysisDiagnostic]:
        channels = context.channels
        for cycle in context.cycles():
            members = set(cycle)
            remap = {node: i for i, node in enumerate(cycle)}
            sub_channels = [
                ChannelSpec(remap[c.producer], remap[c.consumer], c.capacity)
                for c in channels
                if c.producer in members and c.consumer in members
            ]
            # The simulator *is* the capacity model: probe the cycle with
            # unit latencies.  An interval above the 1-cycle floor means the
            # cycle's buffering cannot keep every member busy — adding the
            # rest of the graph only adds constraints, so the full design
            # stalls at least this much (the differential soundness test
            # pins exactly this implication).
            interval, _ = simulate_dataflow(
                [1.0] * len(cycle), sub_channels, frames=_CYCLE_PROBE_FRAMES
            )
            if interval <= 1.0 + 1e-9:
                continue
            edges: Dict[Tuple[int, int], int] = {}
            for channel in sub_channels:
                key = (channel.producer, channel.consumer)
                edges[key] = min(edges.get(key, channel.capacity), channel.capacity)
            capacity = sum(edges.values())
            labels = [context.node_label(i) for i in cycle]
            yield context.diagnostic(
                self,
                f"channel cycle through {', '.join(labels)} stalls: aggregate "
                f"capacity {capacity} over {len(cycle)} node(s) sustains at "
                f"best one frame per {interval:.2f} cycles of work",
                op=context.nodes[cycle[0]],
                members=labels,
                capacity=capacity,
                interval_ratio=interval,
            )


@register_rule
class TokenBalanceRule(AnalysisRule):
    """SDF-style production/consumption rate mismatch across a channel."""

    rule_id = "token-balance"
    severity = "warning"
    description = (
        "producer and consumer initiation intervals differ by more than the "
        "channel capacity can smooth, so one side idles every frame"
    )
    hint = (
        "rebalance parallel factors (intensity-aware parallelize) or deepen "
        "the channel to amortize the burst"
    )

    def check(self, context) -> Iterable[AnalysisDiagnostic]:
        if not context.channels:
            return
        intervals = context.node_intervals()
        for (producer, consumer), capacity in sorted(context.distinct_edges().items()):
            fast, slow = sorted((intervals[producer], intervals[consumer]))
            ratio = slow / max(fast, 1.0)
            if ratio <= _RATE_MISMATCH or capacity >= ratio:
                continue
            yield context.diagnostic(
                self,
                f"channel {context.node_label(producer)} -> "
                f"{context.node_label(consumer)} is rate-imbalanced: one side "
                f"fires every ~{fast:.0f} cycles, the other every "
                f"~{slow:.0f} ({ratio:.1f}x), and capacity {capacity} cannot "
                f"smooth the difference",
                op=context.nodes[producer],
                producer=context.node_label(producer),
                consumer=context.node_label(consumer),
                ratio=ratio,
                capacity=capacity,
            )


@register_rule
class MemoryRaceRule(AnalysisRule):
    """Unordered accesses to one memref (single-producer invariant)."""

    rule_id = "memory-race"
    severity = "error"
    description = (
        "two nodes write (error) or write/read (warning) the same memref "
        "without an ordering channel path between them"
    )
    hint = (
        "run eliminate-multi-producers, or route the dependence through a "
        "buffer/stream so the accesses are ordered"
    )

    def _values(self, context):
        for op in context.schedule.body.operations:
            if isinstance(op, BufferOp):
                yield op.result()
        yield from context.schedule.body.arguments

    def check(self, context) -> Iterable[AnalysisDiagnostic]:
        for value in self._values(context):
            writers = [
                context.index_of[id(n)]
                for n in context.nodes
                if n.writes(value)
            ]
            readers = [
                context.index_of[id(n)]
                for n in context.nodes
                if n.reads(value) and not n.writes(value)
            ]
            name = value.name_hint or "memref"
            for i, first in enumerate(writers):
                for second in writers[i + 1 :]:
                    if context.ordered(first, second):
                        continue
                    yield context.diagnostic(
                        self,
                        f"nodes {context.node_label(first)} and "
                        f"{context.node_label(second)} both write {name} "
                        f"with no ordering channel between them",
                        op=context.nodes[first],
                        kind="write-write",
                        value=name,
                    )
            for writer in writers:
                for reader in readers:
                    if context.ordered(writer, reader):
                        continue
                    yield context.diagnostic(
                        self,
                        f"node {context.node_label(reader)} reads {name} "
                        f"unordered against writer "
                        f"{context.node_label(writer)}",
                        op=context.nodes[reader],
                        severity="warning",
                        kind="write-read",
                        value=name,
                    )


@register_rule
class BufferSizingRule(AnalysisRule):
    """Channel capacities inconsistent with the analytic balance model."""

    rule_id = "buffer-sizing"
    severity = "warning"
    description = (
        "an on-chip buffer's ping-pong depth disagrees with the slack model "
        "(consumer depth - producer depth + 1 required stages), or an "
        "external tile buffer streams in sub-burst tiles"
    )
    hint = "run the balance stage (or raise its bit budget / the tile size)"

    def check(self, context) -> Iterable[AnalysisDiagnostic]:
        from ..estimation.qor import _SHORT_BURST
        from ..hida.dataflow_opt import node_depths

        depths = node_depths(context.schedule)
        for buffer_op in context.schedule.buffers:
            value = buffer_op.result()
            producers = get_producers(value)
            consumers = get_consumers(value)
            if not producers or not consumers:
                continue
            producer_depth = min(depths.get(id(p), 0) for p in producers)
            consumer_depth = max(depths.get(id(c), 0) for c in consumers)
            slack = consumer_depth - producer_depth
            required = slack + 1
            name = value.name_hint or "buffer"
            if buffer_op.is_external:
                # DRAM soft FIFOs are capacity-elastic; what matters there is
                # burst efficiency of the tile traffic (short-burst model).
                tiles = [
                    n.get_attr("tile_size", 0)
                    for n in [*producers, *consumers]
                ]
                tile_size = min((t for t in tiles if t), default=0)
                if tile_size and tile_size < _SHORT_BURST:
                    yield context.diagnostic(
                        self,
                        f"external buffer {name} streams {tile_size}-element "
                        f"tiles, below the {_SHORT_BURST}-element burst the "
                        f"DRAM model needs for full bandwidth",
                        op=buffer_op,
                        severity="note",
                        kind="short-burst",
                        buffer=name,
                        tile_size=tile_size,
                    )
                continue
            if slack > 1 and buffer_op.depth < required:
                yield context.diagnostic(
                    self,
                    f"buffer {name} holds {buffer_op.depth} stage(s) but its "
                    f"data path slack of {slack} needs {required} (frames in "
                    f"flight along the longer path back-pressure the "
                    f"producer)",
                    op=buffer_op,
                    kind="undersized",
                    buffer=name,
                    depth=buffer_op.depth,
                    required=required,
                )
            elif buffer_op.depth > max(2, required + _OVERSIZE_MARGIN):
                yield context.diagnostic(
                    self,
                    f"buffer {name} holds {buffer_op.depth} stage(s) where "
                    f"the slack model needs only {max(required, 2)} — the "
                    f"extra ping-pong copies spend BRAM without throughput",
                    op=buffer_op,
                    severity="note",
                    kind="oversized",
                    buffer=name,
                    depth=buffer_op.depth,
                    required=max(required, 2),
                )
