"""Rule framework of the static dataflow analyzer.

Every semantic check is an :class:`AnalysisRule` registered by a stable rule
id.  Rules inspect one structural schedule at a time (through the
:class:`~repro.analysis.engine.ScheduleContext` the engine hands them) and
yield :class:`AnalysisDiagnostic` records: rule id, severity, a message, a
fix hint, and the *location* of the anchoring op in the printed IR — the
same textual rendering :mod:`repro.ir.printer` produces for snapshots, so a
diagnostic's line/offset can be followed into ``--print-ir`` output.

Suppression: any op (or an ancestor) may carry a ``lint_suppress``
attribute listing rule ids (or ``"*"``); diagnostics anchored at or below
it are dropped and counted in :attr:`AnalysisReport.suppressed
<repro.analysis.engine.AnalysisReport.suppressed>`.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import ClassVar, Dict, Iterable, List, Optional, Type

__all__ = [
    "SEVERITIES",
    "SUPPRESS_ATTR",
    "AnalysisError",
    "SourceLocation",
    "AnalysisDiagnostic",
    "AnalysisRule",
    "register_rule",
    "rule_registry",
    "available_rules",
    "default_rules",
    "severity_rank",
    "is_suppressed",
]

#: Recognized severities, mildest first (indices are the comparison order).
SEVERITIES = ("note", "warning", "error")

#: Op attribute listing rule ids to silence at/below that op ("*" = all).
SUPPRESS_ATTR = "lint_suppress"


class AnalysisError(Exception):
    """Raised when a lint run crosses its configured failure threshold."""


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in :data:`SEVERITIES` (raises on unknown)."""
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise ValueError(
            f"unknown severity {severity!r}; choose from {SEVERITIES}"
        ) from None


@dataclasses.dataclass(frozen=True)
class SourceLocation:
    """Where an op sits in the printed form of the analyzed module."""

    #: 1-based line in the printed IR.
    line: int
    #: 0-based character offset of the op's header token in the printed text.
    offset: int
    #: The printed header line of the op (stripped).
    snippet: str = ""

    def __str__(self) -> str:
        return f"line {self.line} (offset {self.offset})"


@dataclasses.dataclass(frozen=True)
class AnalysisDiagnostic:
    """One finding of one rule, anchored at one op of one schedule."""

    rule: str
    severity: str
    message: str
    hint: str = ""
    location: Optional[SourceLocation] = None
    #: Label of the schedule the finding belongs to ("" at module scope).
    schedule: str = ""
    data: Dict[str, object] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        if self.schedule:
            payload["schedule"] = self.schedule
        if self.location is not None:
            payload["line"] = self.location.line
            payload["offset"] = self.location.offset
            payload["snippet"] = self.location.snippet
        data = {k: v for k, v in self.data.items() if not k.startswith("_")}
        if data:
            payload["data"] = data
        return payload

    def __str__(self) -> str:
        where = f" @ {self.location}" if self.location is not None else ""
        hint = f" (hint: {self.hint})" if self.hint else ""
        return f"[{self.severity}] {self.rule}{where}: {self.message}{hint}"


class AnalysisRule(abc.ABC):
    """One registered semantic check over a structural schedule."""

    #: Stable rule id (what baselines, suppressions and ``--lint-fail-on``
    #: reports key on).
    rule_id: ClassVar[str] = ""
    #: Default severity of this rule's diagnostics.
    severity: ClassVar[str] = "warning"
    #: One-line description for the rule catalog.
    description: ClassVar[str] = ""
    #: Default fix hint attached to diagnostics.
    hint: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, context) -> Iterable[AnalysisDiagnostic]:
        """Yield diagnostics for one :class:`ScheduleContext`."""

    def __repr__(self) -> str:
        return f"<rule {self.rule_id} ({self.severity})>"


_REGISTRY: Dict[str, Type[AnalysisRule]] = {}


def register_rule(cls: Type[AnalysisRule]) -> Type[AnalysisRule]:
    """Class decorator adding a rule to the global registry by id."""
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} declares no rule_id")
    if cls.severity not in SEVERITIES:
        raise ValueError(
            f"rule {cls.rule_id!r} declares unknown severity {cls.severity!r}"
        )
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"rule id {cls.rule_id!r} is already registered")
    _REGISTRY[cls.rule_id] = cls
    return cls


def rule_registry() -> Dict[str, Type[AnalysisRule]]:
    from . import checkers, loop_checkers  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def available_rules() -> List[str]:
    """Registered rule ids in registration order."""
    return list(rule_registry())


def default_rules(only: Optional[Iterable[str]] = None) -> List[AnalysisRule]:
    """Instances of every registered rule (or the named subset, in
    registration order)."""
    registry = rule_registry()
    if only is None:
        return [cls() for cls in registry.values()]
    wanted = set(only)
    unknown = sorted(wanted - set(registry))
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(map(repr, unknown))}; "
            f"registered rules: {', '.join(registry)}"
        )
    return [cls() for rule_id, cls in registry.items() if rule_id in wanted]


def is_suppressed(rule_id: str, op) -> bool:
    """Whether ``op`` or an ancestor silences ``rule_id`` via
    :data:`SUPPRESS_ATTR`."""
    node = op
    while node is not None:
        listed = node.get_attr(SUPPRESS_ATTR, None)
        if listed:
            names = [listed] if isinstance(listed, str) else list(listed)
            if "*" in names or rule_id in names:
                return True
        node = node.parent_op
    return False
