"""Static DSE pre-filter: reject infeasible design points before fan-out.

A design point is *statically infeasible* when no evaluation could ever
produce a usable QoR record for it:

* ``invalid-spec`` — its pipeline spec does not parse / build;
* ``no-estimate`` — the pipeline carries no ``estimate`` stage, so the
  compiler driver is guaranteed to raise after burning a full compile;
* ``static-error`` — compiling just the cheap structural prefix of the
  pipeline (every stage before ``parallelize``/``estimate``) yields a
  design the analyzer flags with an *error*-severity finding (deadlock or
  memory race) — the capacity model says the design stalls, so simulation
  budget on it is wasted.

Rejections are pure functions of the point (no RNG, no caches consulted),
so running :func:`~repro.dse.runner.explore` with the pre-filter on leaves
the records of every feasible point byte-identical to a run without it;
rejected points surface in :attr:`ExplorationResult.rejected
<repro.evaluation.reporting.ExplorationResult.rejected>` and never consume
distinct-point budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["ERROR_RULES", "check_point", "filter_points"]

#: Rules whose error findings make a point not worth evaluating.  The
#: warning-level rules (token balance, buffer sizing) stay advisory: they
#: cost QoR, not correctness, and the DSE loop should still measure them.
ERROR_RULES = ("deadlock", "memory-race", "loop-carried-race", "illegal-unroll")

#: Stages after which point-specific knobs start mattering; the structural
#: prefix checked by the filter stops at the first of these.
_PREFIX_STOP = ("parallelize", "estimate", "lint")


def _rejection(point, reason: str, detail: str, **extra) -> Dict:
    record = {
        "point": point.to_dict(),
        "point_key": point.key(),
        "label": point.label(),
        "workload": point.workload,
        "reason": reason,
        "detail": detail,
    }
    record.update(extra)
    return record


def _structural_prefix(compiler) -> str:
    """Canonical spec of the stages before the first knob-bearing stage."""
    prefix = []
    for stage in compiler.stages:
        if stage.name in _PREFIX_STOP:
            break
        prefix.append(stage.to_spec().print())
    return ",".join(prefix)


def _prefix_errors(point, prefix_text: str) -> Optional[List]:
    """Error-severity findings of the compiled structural prefix.

    Returns None when the check could not run (prefix compile failed for a
    non-static reason): the full evaluation owns reporting such failures as
    error records, the filter must not swallow them.
    """
    from ..compiler.spec import parse_pipeline
    from ..compiler.stages import CompilationState, build_stages
    from ..estimation.platform import get_platform
    from .engine import analyze_module

    try:
        module = point.workload_spec().build()
        state = CompilationState(
            module=module, platform=get_platform(point.platform)
        )
        for stage in build_stages(parse_pipeline(prefix_text)):
            stage.run(state)
        report = analyze_module(
            state.module, platform=point.platform, only=ERROR_RULES
        )
    except Exception:
        return None
    return report.errors


def check_point(point, _memo: Optional[Dict] = None) -> Optional[Dict]:
    """The rejection record of a statically infeasible point, else None.

    ``_memo`` (as threaded by :func:`filter_points`) caches prefix-compile
    verdicts per ``(workload spec, platform, prefix)``: a sweep typically
    fans one workload out over many knob settings that share the same
    structural prefix, which therefore compiles and lints once.
    """
    from ..compiler.spec import PipelineSpecError

    try:
        compiler = point.compiler()
    except PipelineSpecError as error:
        return _rejection(point, "invalid-spec", str(error))
    names = [stage.name for stage in compiler.stages]
    if "estimate" not in names:
        return _rejection(
            point,
            "no-estimate",
            f"pipeline {compiler.spec_text()!r} has no 'estimate' stage, "
            "so evaluation cannot produce a QoR record",
        )
    prefix_text = _structural_prefix(compiler)
    if not prefix_text:
        return None
    memo_key = (point.workload_spec(), point.platform, prefix_text)
    if _memo is not None and memo_key in _memo:
        errors = _memo[memo_key]
    else:
        errors = _prefix_errors(point, prefix_text)
        if _memo is not None:
            _memo[memo_key] = errors
    if not errors:
        return None
    counts: Dict[str, int] = {}
    for finding in errors:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return _rejection(
        point,
        "static-error",
        f"{len(errors)} error-severity finding(s) on the structural prefix "
        f"{prefix_text!r}: {errors[0].message}",
        rule_counts=counts,
    )


def filter_points(points: Sequence) -> Tuple[List, List[Dict]]:
    """Split ``points`` into (feasible, rejection records), order-preserving."""
    memo: Dict = {}
    feasible: List = []
    rejected: List[Dict] = []
    for point in points:
        verdict = check_point(point, memo)
        if verdict is None:
            feasible.append(point)
        else:
            rejected.append(verdict)
    return feasible, rejected
