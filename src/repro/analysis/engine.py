"""The analysis engine: run registered rules over a module's schedules.

:func:`analyze_module` prints the module once through the IR printer while
recording where every op's header lands (line and character offset — the
"token offsets" diagnostics anchor to), builds one
:class:`ScheduleContext` per structural schedule, runs every registered
rule, filters suppressed findings, and returns an :class:`AnalysisReport`.

The context exposes exactly the graph the dataflow *simulator* uses
(:func:`~repro.estimation.dataflow_sim.build_channels` and
:func:`~repro.estimation.dataflow_sim.channel_cycles`), so the static rules
and the measurement oracle can never disagree about structure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from .. import obs
from ..dialects.dataflow import ScheduleOp
from ..estimation.dataflow_sim import build_channels, channel_cycles
from ..estimation.platform import Platform, get_platform
from ..ir.core import Operation
from ..ir.printer import IRPrinter
from .rules import (
    AnalysisDiagnostic,
    AnalysisRule,
    SourceLocation,
    default_rules,
    is_suppressed,
    severity_rank,
)

__all__ = [
    "ScheduleContext",
    "AnalysisReport",
    "analyze_module",
    "locate_ops",
]


class _LocatingPrinter(IRPrinter):
    """IR printer that records the header line index of every op it prints."""

    def __init__(self) -> None:
        super().__init__()
        self.header_lines: Dict[int, int] = {}

    def _print_op(self, op: Operation, indent: int, lines: List[str]) -> None:
        self.header_lines.setdefault(id(op), len(lines))
        super()._print_op(op, indent, lines)


def locate_ops(top: Operation) -> Tuple[str, Dict[int, SourceLocation]]:
    """Printed text of ``top`` plus ``id(op) -> SourceLocation`` for every op.

    Locations use the same deterministic rendering the snapshot cache and
    ``--print-ir`` emit, so a diagnostic's line/offset can be followed into
    that output directly.
    """
    printer = _LocatingPrinter()
    text = printer.print_op(top)
    lines = text.split("\n")
    line_offsets = [0] * len(lines)
    running = 0
    for index, line in enumerate(lines):
        line_offsets[index] = running
        running += len(line) + 1
    locations = {
        op_key: SourceLocation(
            line=line_index + 1,
            offset=line_offsets[line_index] + len(lines[line_index]) - len(lines[line_index].lstrip()),
            snippet=lines[line_index].strip(),
        )
        for op_key, line_index in printer.header_lines.items()
    }
    return text, locations


class ScheduleContext:
    """Everything a rule may inspect about one structural schedule."""

    def __init__(
        self,
        schedule: ScheduleOp,
        platform: Platform,
        locations: Optional[Dict[int, SourceLocation]] = None,
    ) -> None:
        self.schedule = schedule
        self.platform = platform
        self._locations = locations or {}
        self.nodes, self.channels = build_channels(schedule)
        self.index_of: Dict[int, int] = {
            id(node): i for i, node in enumerate(self.nodes)
        }
        self._intervals: Optional[List[float]] = None
        self._reachable: Optional[List[FrozenSet[int]]] = None

    # ------------------------------------------------------------- structure
    def cycles(self) -> List[List[int]]:
        """Cyclic SCCs of the channel graph (the simulator's definition)."""
        return channel_cycles(len(self.nodes), self.channels)

    def distinct_edges(self) -> Dict[Tuple[int, int], int]:
        """``(producer, consumer) -> tightest capacity`` over all channels."""
        edges: Dict[Tuple[int, int], int] = {}
        for channel in self.channels:
            key = (channel.producer, channel.consumer)
            edges[key] = min(edges.get(key, channel.capacity), channel.capacity)
        return edges

    def reachable(self, source: int) -> FrozenSet[int]:
        """Node indices reachable from ``source`` over channel edges."""
        if self._reachable is None:
            adjacency: Dict[int, List[int]] = {
                i: [] for i in range(len(self.nodes))
            }
            for (producer, consumer) in self.distinct_edges():
                adjacency[producer].append(consumer)
            closure: List[FrozenSet[int]] = []
            for start in range(len(self.nodes)):
                seen = {start}
                stack = [start]
                while stack:
                    node = stack.pop()
                    for succ in adjacency[node]:
                        if succ not in seen:
                            seen.add(succ)
                            stack.append(succ)
                seen.discard(start)
                closure.append(frozenset(seen))
            self._reachable = closure
        return self._reachable[source]

    def ordered(self, a: int, b: int) -> bool:
        """Whether nodes ``a`` and ``b`` are ordered by some channel path."""
        return b in self.reachable(a) or a in self.reachable(b)

    # ------------------------------------------------------------- estimates
    def node_intervals(self) -> List[float]:
        """Analytic initiation interval of every node (lazily estimated)."""
        if self._intervals is None:
            from ..estimation.qor import estimate_node

            self._intervals = [
                max(estimate_node(node, self.platform).interval, 1.0)
                for node in self.nodes
            ]
        return self._intervals

    # ----------------------------------------------------------- diagnostics
    def node_label(self, index: int) -> str:
        node = self.nodes[index]
        return node.label or f"node{index}"

    def diagnostic(
        self,
        rule: AnalysisRule,
        message: str,
        op: Optional[Operation] = None,
        severity: Optional[str] = None,
        hint: Optional[str] = None,
        **data,
    ) -> AnalysisDiagnostic:
        """Build a diagnostic anchored at ``op`` (default: the schedule)."""
        anchor = op if op is not None else self.schedule
        return AnalysisDiagnostic(
            rule=rule.rule_id,
            severity=severity or rule.severity,
            message=message,
            hint=rule.hint if hint is None else hint,
            location=self._locations.get(id(anchor)),
            schedule=self.schedule.label,
            data=dict(data, _anchor=anchor),
        )


@dataclasses.dataclass
class AnalysisReport:
    """Every finding of one analysis run over one module."""

    diagnostics: List[AnalysisDiagnostic] = dataclasses.field(default_factory=list)
    #: Findings dropped by ``lint_suppress`` attributes.
    suppressed: int = 0
    #: Repeated findings collapsed into an earlier one (same rule on the
    #: same op with the same structured data, e.g. one race reported once
    #: per unordered access pair).  First location wins.
    deduplicated: int = 0
    #: Number of structural schedules analyzed (0 = nothing to check).
    schedules: int = 0

    def counts(self) -> Dict[str, int]:
        """``rule id -> hit count`` in registration-stable order."""
        totals: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            totals[diagnostic.rule] = totals.get(diagnostic.rule, 0) + 1
        return totals

    def by_severity(self, severity: str) -> List[AnalysisDiagnostic]:
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self) -> List[AnalysisDiagnostic]:
        return self.by_severity("error")

    def fails_at(self, threshold: str) -> bool:
        """Whether any finding reaches ``threshold`` ("never" disables)."""
        if threshold == "never":
            return False
        floor = severity_rank(threshold)
        return any(
            severity_rank(d.severity) >= floor for d in self.diagnostics
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": self.suppressed,
            "deduplicated": self.deduplicated,
            "schedules": self.schedules,
            "counts": self.counts(),
        }

    def extend(self, other: "AnalysisReport") -> "AnalysisReport":
        self.diagnostics.extend(other.diagnostics)
        self.suppressed += other.suppressed
        self.deduplicated += other.deduplicated
        self.schedules += other.schedules
        return self


def _resolve_platform(platform: Union[str, Platform]) -> Platform:
    if isinstance(platform, Platform):
        return platform
    return get_platform(platform)


def analyze_module(
    module: Operation,
    platform: Union[str, Platform] = "vu9p-slr",
    rules: Optional[Sequence[AnalysisRule]] = None,
    only: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the registered rules over every structural schedule of ``module``.

    ``rules`` passes explicit rule instances; ``only`` restricts the default
    set to the named rule ids.  Ops carrying a ``lint_suppress`` attribute
    (or nested under one) have matching findings dropped and counted in
    :attr:`AnalysisReport.suppressed`.
    """
    if rules is not None and only is not None:
        raise ValueError("pass rules=... or only=..., not both")
    active = list(rules) if rules is not None else default_rules(only)
    resolved = _resolve_platform(platform)
    _, locations = locate_ops(module)
    report = AnalysisReport()
    seen_findings: Set[Tuple[object, ...]] = set()
    for op in module.walk():
        if not isinstance(op, ScheduleOp):
            continue
        report.schedules += 1
        context = ScheduleContext(op, resolved, locations)
        for rule in active:
            with obs.span(
                f"rule:{rule.rule_id}", cat="analysis", rule=rule.rule_id
            ):
                findings = list(rule.check(context))
            for diagnostic in findings:
                anchor = diagnostic.data.pop("_anchor", None)
                if anchor is not None and is_suppressed(diagnostic.rule, anchor):
                    report.suppressed += 1
                    continue
                # A rule firing on the same op with the same structured
                # data (e.g. once per unordered access *pair*) collapses
                # into the first finding; distinct subjects (different
                # buffer, dim, kind, ...) keep their own diagnostics.
                # Emission order is preserved, so first location wins.
                data_key = tuple(
                    sorted((k, repr(v)) for k, v in diagnostic.data.items())
                )
                key = (
                    (diagnostic.rule, id(anchor), data_key)
                    if anchor is not None
                    else (diagnostic.rule, diagnostic.schedule, diagnostic.message)
                )
                if key in seen_findings:
                    report.deduplicated += 1
                    continue
                seen_findings.add(key)
                report.diagnostics.append(diagnostic)
    return report
