"""Persistent content-hash QoR cache.

Design-space exploration revisits design points constantly — across reruns,
across overlapping spaces, and across benchmark suites that share kernels.
The cache keys each evaluated point by a SHA-256 over *content*, never
object identity:

* the input module's printed-IR fingerprint (what is compiled),
* the full serialized option set (how it is compiled),
* a schema version (so model changes invalidate stale entries).

Entries are small JSON files stored in a two-level fan-out directory
(``<root>/<key[:2]>/<key>.json``).  Writes go through a temp file plus
atomic rename, so concurrent worker processes never observe torn entries
and never need locks — at worst two workers compute the same point and one
rename wins with an identical payload.

The default location is ``~/.cache/repro/dse`` (override with the
``REPRO_DSE_CACHE`` environment variable or the ``--cache-dir`` CLI flag).
Eviction is size-capped LRU-by-mtime: when the entry count exceeds
``max_entries`` the oldest-read entries are deleted down to the cap.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional

from .. import obs
from ..obs.metrics import MetricsRegistry

__all__ = ["QoRCache", "default_cache_dir"]

#: Cache schema version: bump when record layout or QoR semantics change.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_DSE_CACHE`` or ``~/.cache/repro/dse``."""
    override = os.environ.get("REPRO_DSE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "dse"


class QoRCache:
    """File-backed JSON store mapping content keys to QoR records."""

    def __init__(
        self, root: Optional[os.PathLike] = None, max_entries: int = 8192
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.max_entries = max_entries
        #: Probe counters live on a metrics registry; :attr:`hits` and
        #: :attr:`misses` remain as plain-int views for the existing surface.
        self.metrics = MetricsRegistry()

    @property
    def hits(self) -> int:
        return int(self.metrics.value("qor_cache.hits"))

    @hits.setter
    def hits(self, value: int) -> None:
        self.metrics.counter("qor_cache.hits").value = float(value)

    @property
    def misses(self) -> int:
        return int(self.metrics.value("qor_cache.misses"))

    @misses.setter
    def misses(self, value: int) -> None:
        self.metrics.counter("qor_cache.misses").value = float(value)

    def _record_probe(self, key: str, hit: bool) -> None:
        # Keys are namespaced ("point|...", "ir|...", "irfp|..."), so the
        # leading token tells the telemetry which cache family was probed.
        self.metrics.inc("qor_cache.hits" if hit else "qor_cache.misses")
        kind = key.split("|", 1)[0]
        obs.inc(f"cache.{kind}.{'hits' if hit else 'misses'}")
        obs.event("cache.get", cat="cache", kind=kind, hit=hit, key=key[:96])

    # ---------------------------------------------------------------- paths
    def _path(self, key: str) -> Path:
        # Hash the whole key: filenames stay bounded and the two-level
        # fan-out spreads uniformly (raw keys share long constant prefixes).
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.root / digest[:2] / f"{digest}.json"

    # ----------------------------------------------------------------- api
    def get(self, key: str) -> Optional[Dict]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            self._record_probe(key, hit=False)
            return None
        if record.get("_cache_version") != CACHE_VERSION:
            self._record_probe(key, hit=False)
            return None
        with contextlib.suppress(OSError):
            # Touch for LRU eviction ordering.
            os.utime(path)
        self._record_probe(key, hit=True)
        return record.get("payload")

    def put(self, key: str, payload: Dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        kind = key.split("|", 1)[0]
        obs.inc(f"cache.{kind}.stores")
        obs.event("cache.put", cat="cache", kind=kind, key=key[:96])
        record = {"_cache_version": CACHE_VERSION, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        # A full entry scan per put is O(n).  For real cache sizes, only pay
        # it when this entry's fan-out bucket exceeds its share of the cap
        # (keys hash uniformly, so a crowded bucket implies the whole cache
        # is near the limit); tiny caps check every put so the bound is firm.
        per_bucket_cap = self.max_entries // 256
        if per_bucket_cap < 2:
            self._evict_if_needed()
            return
        try:
            bucket_size = sum(1 for _ in path.parent.glob("*.json"))
        except OSError:
            bucket_size = 0
        if bucket_size > per_bucket_cap:
            self._evict_if_needed()

    # ------------------------------------------------------------- eviction
    def _entries(self):
        if not self.root.exists():
            return []
        return list(self.root.glob("*/*.json"))

    def _evict_if_needed(self) -> None:
        entries = self._entries()
        if len(entries) <= self.max_entries:
            return
        # Concurrent workers evict too: entries can vanish between the glob
        # and the stat, so treat every filesystem touch as best-effort.
        stamped = []
        for path in entries:
            try:
                stamped.append((path.stat().st_mtime, path))
            except OSError:
                continue
        # Coarse filesystem timestamps tie constantly under parallel workers;
        # tiebreak on the path so every worker deletes the same entries.
        stamped.sort(key=lambda item: (item[0], str(item[1])))
        for _, stale in stamped[: len(stamped) - self.max_entries]:
            with contextlib.suppress(OSError):
                stale.unlink()

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        return len(self._entries())

    def __repr__(self) -> str:
        return (
            f"QoRCache({str(self.root)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
