"""Multi-fidelity QoR evaluation: the fidelity-level registry and the
promotion policy that races levels inside the DSE loop.

The exploration engine steers on QoR records, but QoR can be produced at
different costs and trust levels.  This module makes that axis explicit:

* ``estimate`` — the analytic model exactly as every pre-fidelity sweep ran
  it (:meth:`~repro.hida.pipeline.CompileResult.summary`); cheap, and its
  QoR-cache keys are byte-identical to the pre-fidelity cache, so existing
  caches stay warm.
* ``simulate`` — a two-level dataflow simulation of the final design
  (:func:`repro.estimation.qor.simulate_design`): bands execute
  frame-atomically inside each node, nodes pipeline internally at their
  band-chain interval, and the schedule's channel graph is simulated with
  back-pressure over a long frame horizon.  Slower, closer to cycle truth.

A :class:`PromotionPolicy` implements successive-halving-style racing:
every proposed point is evaluated at the cheap fidelity, and each
generation the top fraction — frontier membership first, then hypervolume
contribution — is *promoted* to the expensive fidelity.  The frontier is
re-ranked on the highest-fidelity record available per point.  Selection
depends only on QoR records (never timing or cache state), so fixed-seed
multi-fidelity runs stay byte-identical across worker counts.

Levels are registered like stages, workloads, targets and strategies:
``@register_fidelity`` / :func:`get_fidelity` / :func:`available_fidelities`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .pareto import (
    DEFAULT_OBJECTIVES,
    hypervolume,
    hypervolume_reference,
    pareto_frontier,
    scalarized_energies,
)

__all__ = [
    "DEFAULT_FIDELITY",
    "DEFAULT_PROMOTE_TOP",
    "FidelityLevel",
    "PromotionPolicy",
    "available_fidelities",
    "best_fidelity_records",
    "describe_fidelities",
    "fidelity_rank",
    "get_fidelity",
    "register_fidelity",
]

#: The fidelity every record is produced at unless asked otherwise — and
#: the base level every promotion race starts from.
DEFAULT_FIDELITY = "estimate"

#: Fraction of each generation promoted when ``explore(fidelity=...)`` is
#: multi-fidelity and no explicit ``promote_top`` is given.
DEFAULT_PROMOTE_TOP = 0.25


@dataclasses.dataclass(frozen=True)
class FidelityLevel:
    """One registered QoR evaluation fidelity.

    ``apply(result)`` turns a :class:`~repro.hida.pipeline.CompileResult`
    into the JSON-safe QoR payload the runner caches (``summary`` /
    ``estimate`` / ``fits``).  ``version`` is folded into the QoR-cache key
    of non-base levels, so refining a level's model invalidates only its own
    persisted records.
    """

    name: str
    #: Total order of trust/cost: higher-rank records supersede lower-rank
    #: ones for the same design point.
    rank: int
    description: str
    apply: Callable
    version: int = 1

    def cache_tag(self) -> str:
        return f"fid:{self.name}.v{self.version}"


_REGISTRY: Dict[str, FidelityLevel] = {}


def register_fidelity(level: FidelityLevel) -> FidelityLevel:
    """Add a fidelity level to the registry (name and rank must be unique)."""
    if not level.name:
        raise ValueError("fidelity level needs a name")
    existing = _REGISTRY.get(level.name)
    if existing is not None and existing is not level:
        raise ValueError(f"fidelity level {level.name!r} is already registered")
    for other in _REGISTRY.values():
        if other.name != level.name and other.rank == level.rank:
            raise ValueError(
                f"fidelity rank {level.rank} is taken by {other.name!r}; "
                "ranks must form a total order"
            )
    _REGISTRY[level.name] = level
    return level


def available_fidelities() -> List[str]:
    """Registered level names, cheapest (lowest rank) first."""
    return [
        level.name for level in sorted(_REGISTRY.values(), key=lambda l: l.rank)
    ]


def get_fidelity(name: str) -> FidelityLevel:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown fidelity level {name!r}; "
            f"options: {', '.join(available_fidelities())}"
        ) from None


def describe_fidelities() -> List[str]:
    """One rendered line per registered level (the ``--list-fidelities``
    output of both CLIs)."""
    return [
        f"{level.name:10s} rank {level.rank}  {level.description}"
        for level in (get_fidelity(name) for name in available_fidelities())
    ]


def fidelity_rank(name: Optional[str]) -> int:
    """Rank of a record's fidelity tag (untagged records are base-level)."""
    if not name:
        return 0
    level = _REGISTRY.get(str(name))
    return level.rank if level is not None else 0


def best_fidelity_records(records: Sequence[Dict]) -> List[Dict]:
    """One record per design point: the highest-fidelity non-error one.

    Order follows each point's first appearance in ``records``, so the
    result is deterministic for any worker count.  An errored re-evaluation
    never displaces a scored lower-fidelity record.
    """
    best: Dict[str, Dict] = {}
    order: List[str] = []
    for record in records:
        key = str(record.get("point_key", ""))
        previous = best.get(key)
        if previous is None:
            best[key] = record
            order.append(key)
            continue
        if "error" in record and "error" not in previous:
            continue
        replaces_error = "error" in previous and "error" not in record
        outranks = fidelity_rank(record.get("fidelity")) >= fidelity_rank(
            previous.get("fidelity")
        )
        if replaces_error or outranks:
            best[key] = record
    return [best[key] for key in order]


# ---------------------------------------------------------------------------
# Built-in levels
# ---------------------------------------------------------------------------


def _estimate_payload(result) -> Dict:
    """The analytic QoR payload — exactly what pre-fidelity sweeps cached."""
    return {
        "summary": result.summary(),
        "estimate": result.estimate.to_dict(),
        "fits": result.platform.fits(result.estimate.resources.as_dict()),
    }


def _simulate_payload(result) -> Dict:
    """Simulation-refined payload: timing from the dataflow simulator.

    Resources (and therefore ``fits`` / ``max_utilization``) are the
    analytic values — simulation refines cycle counts, not area.
    """
    from ..estimation.qor import simulate_design

    refined = simulate_design(result.schedules, result.estimate, result.platform)
    summary = result.summary()
    summary["latency_cycles"] = refined.latency
    summary["interval_cycles"] = refined.interval
    summary["throughput"] = refined.throughput
    return {
        "summary": summary,
        "estimate": refined.to_dict(),
        "fits": result.platform.fits(refined.resources.as_dict()),
    }


ESTIMATE = register_fidelity(
    FidelityLevel(
        name="estimate",
        rank=0,
        description="analytic QoR model (cheap; steers every proposal)",
        apply=_estimate_payload,
    )
)

SIMULATE = register_fidelity(
    FidelityLevel(
        name="simulate",
        rank=1,
        description=(
            "two-level dataflow simulation with back-pressure "
            "(expensive; promoted points only)"
        ),
        apply=_simulate_payload,
    )
)


# ---------------------------------------------------------------------------
# Promotion policy
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PromotionPolicy:
    """Successive-halving-style promotion between two fidelity levels.

    Each generation, :meth:`select` ranks the generation's freshly scored
    base-fidelity records against the cumulative best-fidelity context and
    promotes the top ``promote_top`` fraction (at least ``min_promote``):
    current-frontier members first, ordered by their hypervolume
    contribution within their workload group, then the remaining records by
    scalarized energy (so near-frontier designs, not lexicographic
    accidents, absorb leftover quota).  Every input the ranking consumes is
    a pure function of the observed records, so promotion is deterministic
    across worker counts and cache temperature.
    """

    target: str = "simulate"
    promote_top: float = DEFAULT_PROMOTE_TOP
    min_promote: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.promote_top <= 1.0:
            raise ValueError(
                f"promote_top must be in (0, 1] (got {self.promote_top})"
            )
        if self.min_promote < 0:
            raise ValueError(
                f"min_promote must be non-negative (got {self.min_promote})"
            )
        get_fidelity(self.target)  # fail fast on unknown levels

    def quota(self, candidates: int) -> int:
        """Global promotion quota over one round's eligible candidates."""
        if candidates <= 0:
            return 0
        return min(
            candidates, max(self.min_promote, math.ceil(self.promote_top * candidates))
        )

    def select(
        self,
        candidates: Sequence[Dict],
        context: Sequence[Dict],
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
        group_by_workload: bool = True,
    ) -> List[str]:
        """Point keys to promote, in deterministic rank order.

        ``candidates`` are the records eligible for promotion this round
        (scored, base-fidelity); ``context`` is every scored best-fidelity
        record observed so far (used for frontier membership and the
        hypervolume reference).  The ``promote_top`` quota is *global* over
        the round's candidates — never per group, or a multi-workload sweep
        with one candidate per group would promote everything — but is
        spent breadth-first across groups (each group's best candidate
        before any group's second), so no workload starves.
        """
        eligible = [
            r
            for r in candidates
            if "error" not in r
            and fidelity_rank(r.get("fidelity")) < get_fidelity(self.target).rank
        ]
        if not eligible:
            return []
        groups: Dict[str, List[Dict]] = {}
        for record in eligible:
            name = str(record.get("workload", "")) if group_by_workload else ""
            groups.setdefault(name, []).append(record)
        context_groups: Dict[str, List[Dict]] = {}
        for record in context:
            if "error" in record:
                continue
            name = str(record.get("workload", "")) if group_by_workload else ""
            context_groups.setdefault(name, []).append(record)
        #: (position within its group, group rank tuple, key) per candidate:
        #: sorting on it spends the global quota breadth-first over groups.
        pool: List[Tuple[int, Tuple, str]] = []
        for name in sorted(groups):
            scored_context = context_groups.get(name, groups[name])
            frontier = pareto_frontier(scored_context, objectives)
            frontier_keys = [str(r.get("point_key", "")) for r in frontier]
            reference = hypervolume_reference(scored_context, objectives)
            full_volume = (
                hypervolume(frontier, objectives, reference) if reference else 0.0
            )
            contributions: Dict[str, float] = {}
            for index, key in enumerate(frontier_keys):
                rest = frontier[:index] + frontier[index + 1 :]
                rest_volume = (
                    hypervolume(rest, objectives, reference) if reference else 0.0
                )
                contributions[key] = full_volume - rest_volume
            energies = scalarized_energies(groups[name], objectives)
            ranked = []
            for record, energy in zip(groups[name], energies):
                key = str(record.get("point_key", ""))
                on_frontier = key in contributions
                # Frontier members order by hypervolume contribution;
                # everything else by scalarized energy, so a near-frontier
                # (e.g. dedup-tied) design always outranks a dominated one
                # for the simulation quota.
                ranked.append(
                    (
                        (
                            0 if on_frontier else 1,
                            -contributions[key] if on_frontier else energy,
                            key,
                        ),
                        key,
                    )
                )
            ranked.sort()
            pool.extend(
                (position, rank, key)
                for position, (rank, key) in enumerate(ranked)
            )
        pool.sort()
        return [key for _, _, key in pool[: self.quota(len(pool))]]
