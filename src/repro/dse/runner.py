"""The parallel design-space exploration engine.

``explore`` fans a :class:`~repro.dse.space.DesignSpace` out across worker
processes with :mod:`concurrent.futures`.  Each worker rebuilds its
workload module from the picklable :class:`~repro.hida.pipeline.WorkloadSpec`
(IR does not cross process boundaries), consults the content-hash
:class:`~repro.dse.cache.QoRCache`, and only runs the full HIDA pipeline on
a cache miss.  Results come back as plain JSON-safe record dicts, so the
orchestrating process never unpickles IR either.

Determinism: records are re-ordered to the input point order after the
parallel map, and the Pareto extraction sorts by objective vector, so the
frontier is identical for any worker count.
"""

from __future__ import annotations

import os
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Union

from ..estimation.qor import QoREstimator
from ..evaluation.reporting import ExplorationResult
from ..ir.printer import fingerprint_op
from .cache import QoRCache
from .pareto import DEFAULT_OBJECTIVES, SUMMARY_METRICS, pareto_frontier
from .space import DesignPoint, DesignSpace

__all__ = ["evaluate_point", "explore"]

#: Per-process memo of workload-module fingerprints.  Workloads rebuild
#: deterministically from their spec, so the fingerprint is a pure function
#: of the spec for the lifetime of a process; memoizing it lets cache hits
#: skip the module build entirely.
_WORKLOAD_FINGERPRINTS: Dict = {}


def _record_for_point(point: DesignPoint) -> Dict:
    return {
        "point": point.to_dict(),
        "point_key": point.key(),
        "label": point.label(),
        "workload": point.workload,
    }


def _point_cache_key(fingerprint: str, platform: str, spec_text: str) -> str:
    """Cache key of one evaluated point.

    Keyed by *what* is compiled (the input module's printed-IR fingerprint),
    *where* it targets (the platform) and *how* it is compiled — the
    canonical printed pipeline spec, so flag-driven points and textual-spec
    points that denote the same stage sequence share cache entries.
    Includes the estimator's MODEL_VERSION so that bumping it (the
    documented way to signal an analytical-model change) invalidates every
    persisted QoR record, not just in-process estimator caches.
    """
    return (
        f"point|m{QoREstimator.MODEL_VERSION}|{fingerprint}|{platform}|{spec_text}"
    )


def evaluate_point(point: DesignPoint, cache_dir: Optional[str] = None) -> Dict:
    """Evaluate one design point; safe to call in a worker process.

    Builds the workload module, computes the content-hash cache key from the
    *input* module fingerprint plus the full option fingerprint, and either
    replays the cached QoR record or runs the compilation pipeline and
    caches its outcome.  Never raises: failures come back as records with an
    ``"error"`` field so one broken point cannot sink a whole sweep.
    """
    record = _record_for_point(point)
    started = time.perf_counter()
    try:
        compiler = point.compiler()
        spec = point.workload_spec()
        module = None
        fingerprint = _WORKLOAD_FINGERPRINTS.get(spec)
        if fingerprint is None:
            module = spec.build()
            fingerprint = fingerprint_op(module)
            _WORKLOAD_FINGERPRINTS[spec] = fingerprint
        record["module_fingerprint"] = fingerprint
        record["pipeline_spec"] = compiler.spec_text()
        cache = QoRCache(cache_dir) if cache_dir else None
        key = _point_cache_key(fingerprint, point.platform, compiler.spec_text())
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                record.update(cached)
                record["cached"] = True
                record["eval_seconds"] = time.perf_counter() - started
                return record
        if module is None:
            module = spec.build()
        result = compiler.run(module)
        payload = {
            "summary": result.summary(),
            "estimate": result.estimate.to_dict(),
            "fits": result.platform.fits(result.estimate.resources.as_dict()),
        }
        if cache is not None:
            cache.put(key, payload)
        record.update(payload)
        record["cached"] = False
    except Exception:
        record["error"] = traceback.format_exc(limit=8)
        record["cached"] = False
    record["eval_seconds"] = time.perf_counter() - started
    return record


def _replay_cached(point: DesignPoint, cache_dir: str) -> Optional[Dict]:
    """Parent-side cache probe: a completed record on a hit, else None.

    Probing before fan-out keeps fully-warm sweeps free of process-pool
    startup — a cached point costs one (memoized) workload fingerprint and
    one JSON read.
    """
    record = _record_for_point(point)
    started = time.perf_counter()
    try:
        spec = point.workload_spec()
        spec_text = point.canonical_spec()
        fingerprint = _WORKLOAD_FINGERPRINTS.get(spec)
        if fingerprint is None:
            fingerprint = fingerprint_op(spec.build())
            _WORKLOAD_FINGERPRINTS[spec] = fingerprint
        key = _point_cache_key(fingerprint, point.platform, spec_text)
        cached = QoRCache(cache_dir).get(key)
        if cached is None:
            return None
        record["module_fingerprint"] = fingerprint
        record["pipeline_spec"] = spec_text
        record.update(cached)
        record["cached"] = True
        record["eval_seconds"] = time.perf_counter() - started
        return record
    except Exception:
        # Any probe failure falls through to a full (worker) evaluation.
        return None


def _worker_init(
    src_path: Optional[str], workload_modules: Sequence[str] = ()
) -> None:
    """Make the in-tree package importable in spawned workers.

    ``workload_modules`` are the modules whose import re-registers any
    custom (non built-in) workloads swept by this exploration: under the
    ``spawn`` start method each worker holds a fresh registry, so the
    registrations must be replayed before points resolve.  Import failures
    are left to surface naturally as per-point UnknownWorkloadError records.
    """
    if src_path and src_path not in sys.path:
        sys.path.insert(0, src_path)
    import importlib

    for module in workload_modules:
        try:
            importlib.import_module(module)
        except ImportError:
            pass


def _repo_src_path() -> Optional[str]:
    path = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
    return path if os.path.isdir(path) else None


def explore(
    space: Union[DesignSpace, Sequence[DesignPoint]],
    workers: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    chunksize: int = 4,
    group_by_workload: bool = True,
    resume: bool = False,
) -> ExplorationResult:
    """Evaluate every point of ``space`` and extract the Pareto frontier.

    ``workers <= 1`` runs serially in-process (easier profiling/debugging);
    anything larger uses a :class:`ProcessPoolExecutor`.  With caching on
    (the default) each evaluated point is persisted under ``cache_dir`` (or
    the default cache root), making overlapping sweeps and re-runs nearly
    free.

    With ``resume`` the sweep never compiles: points already in the QoR
    cache stream straight into the result and every uncached point is
    *skipped* (counted in ``ExplorationResult.skipped``) — the way to turn
    an interrupted sweep's partial cache into an output JSON without
    recomputation.

    With ``group_by_workload`` (the default) the frontier is the union of
    per-workload frontiers — latency trade-offs only make sense between
    designs of the *same* computation; set it to False for a single global
    frontier when sweeping one workload under many configurations.
    """
    points: List[DesignPoint] = list(space)
    unknown = [name for name in objectives if name not in SUMMARY_METRICS]
    if unknown or not list(objectives):
        raise ValueError(
            f"unknown objective(s) {unknown or '(none)'}; "
            f"choose from {SUMMARY_METRICS}"
        )
    if resume and not use_cache:
        raise ValueError("resume=True requires the QoR cache (use_cache=True)")
    resolved_cache: Optional[str] = None
    if use_cache:
        resolved_cache = str(cache_dir) if cache_dir else str(QoRCache().root)

    started = time.perf_counter()
    records: List[Dict] = []
    pending: List[DesignPoint] = []
    if resolved_cache:
        for point in points:
            cached = _replay_cached(point, resolved_cache)
            if cached is not None:
                records.append(cached)
            else:
                pending.append(point)
    else:
        pending = points
    skipped = 0
    if resume:
        skipped = len(pending)
        pending = []
    if workers <= 1 or len(pending) <= 1:
        records.extend(evaluate_point(point, resolved_cache) for point in pending)
    elif pending:
        from ..workloads import source_modules

        workload_modules = source_modules({p.workload for p in pending})
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(_repo_src_path(), workload_modules),
        ) as pool:
            records.extend(
                pool.map(
                    evaluate_point,
                    pending,
                    [resolved_cache] * len(pending),
                    chunksize=max(1, chunksize),
                )
            )
    elapsed = time.perf_counter() - started

    # ``pool.map`` already preserves order; re-sort defensively by the input
    # point order so downstream consumers can rely on it.
    order = {point.key(): index for index, point in enumerate(points)}
    records.sort(key=lambda r: order.get(r.get("point_key"), len(order)))

    errors = [r for r in records if "error" in r]
    scored = [r for r in records if "error" not in r]
    if group_by_workload:
        groups: Dict[str, List[Dict]] = {}
        for record in scored:
            groups.setdefault(str(record.get("workload", "")), []).append(record)
        frontier = []
        for name in sorted(groups):
            frontier.extend(pareto_frontier(groups[name], objectives))
    else:
        frontier = pareto_frontier(scored, objectives)
    return ExplorationResult(
        records=records,
        frontier=frontier,
        objectives=tuple(objectives),
        workers=max(1, workers),
        elapsed_seconds=elapsed,
        cache_hits=sum(1 for r in records if r.get("cached")),
        cache_misses=sum(1 for r in records if not r.get("cached")),
        errors=errors,
        skipped=skipped,
    )
