"""The parallel design-space exploration engine.

``explore`` fans a :class:`~repro.dse.space.DesignSpace` out across worker
processes with :mod:`concurrent.futures`.  Each worker rebuilds its
workload module from the picklable :class:`~repro.hida.pipeline.WorkloadSpec`
(IR does not cross process boundaries), consults the content-hash
:class:`~repro.dse.cache.QoRCache`, and only runs the full HIDA pipeline on
a cache miss.  Results come back as plain JSON-safe record dicts, so the
orchestrating process never unpickles IR either.

Determinism: records are re-ordered to the input point order after the
parallel map, and the Pareto extraction sorts by objective vector, so the
frontier is identical for any worker count.

``explore(strategy=...)`` switches from the one-shot full sweep to an
adaptive search (see :mod:`repro.dse.search`): the strategy proposes
batches of points, each batch runs through the same cache-aware fan-out,
and the observed records steer the next batch.  ``budget`` bounds the
number of distinct points evaluated; cache hits cost no compile time but
count toward the budget, so cold and warm runs follow identical
trajectories.

``explore(fidelity="simulate", promote_top=...)`` races QoR fidelities
(see :mod:`repro.dse.fidelity`): every point is scored by the cheap
analytic model, the most promising fraction is promoted to the dataflow
simulator, and the frontier is re-ranked on the highest-fidelity record
per point.  ``patience`` stops an adaptive search once that many
consecutive generations fail to improve frontier hypervolume.
"""

from __future__ import annotations

import os
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..compiler.ircache import (
    IRSnapshotCache,
    default_ir_cache_dir,
    workload_cache_key,
)
from ..estimation.qor import QoREstimator
from ..obs.metrics import MetricsRegistry
from ..evaluation.reporting import ExplorationResult, relative_disagreement
from ..ir.printer import fingerprint_op
from .cache import QoRCache
from .fidelity import (
    DEFAULT_FIDELITY,
    DEFAULT_PROMOTE_TOP,
    PromotionPolicy,
    best_fidelity_records,
    get_fidelity,
)
from .pareto import (
    DEFAULT_OBJECTIVES,
    SUMMARY_METRICS,
    hypervolume,
    hypervolume_reference,
    pareto_frontier,
)
from .space import DesignPoint, DesignSpace

__all__ = ["evaluate_point", "explore"]

#: Per-process memo of workload-module fingerprints.  Workloads rebuild
#: deterministically from their spec, so the fingerprint is a pure function
#: of the spec for the lifetime of a process; memoizing it lets cache hits
#: skip the module build entirely.
_WORKLOAD_FINGERPRINTS: Dict = {}


def _record_for_point(point: DesignPoint) -> Dict:
    return {
        "point": point.to_dict(),
        "point_key": point.key(),
        "label": point.label(),
        "workload": point.workload,
    }


def _point_cache_key(
    fingerprint: str, platform: str, spec_text: str, fidelity: str = DEFAULT_FIDELITY
) -> str:
    """Cache key of one evaluated point.

    Keyed by *what* is compiled (the input module's printed-IR fingerprint),
    *where* it targets (the platform) and *how* it is compiled — the
    canonical printed pipeline spec, so flag-driven points and textual-spec
    points that denote the same stage sequence share cache entries.
    Includes the estimator's MODEL_VERSION so that bumping it (the
    documented way to signal an analytical-model change) invalidates every
    persisted QoR record, not just in-process estimator caches.

    Non-base fidelity levels append their versioned tag, so estimate and
    simulate records never collide; base-level keys are byte-identical to
    pre-fidelity caches, which therefore stay warm.
    """
    key = (
        f"point|m{QoREstimator.MODEL_VERSION}|{fingerprint}|{platform}|{spec_text}"
    )
    if fidelity != DEFAULT_FIDELITY:
        key = f"{key}|{get_fidelity(fidelity).cache_tag()}"
    return key


def _resolve_fingerprint(spec, ir_cache) -> tuple:
    """``(fingerprint, module, traces)`` for a workload spec.

    Resolution order: per-process memo, then the IR cache's persistent
    frontend-fingerprint memo (which makes warm processes and fresh workers
    alike skip the frontend trace entirely), then an actual trace — whose
    fingerprint is published back to both memos.  ``traces`` counts how
    many frontend traces this call performed (0 or 1).
    """
    fingerprint = _WORKLOAD_FINGERPRINTS.get(spec)
    if fingerprint is not None:
        return fingerprint, None, 0
    workload_key = workload_cache_key(spec)
    if ir_cache is not None and workload_key is not None:
        fingerprint = ir_cache.get_fingerprint(workload_key)
        if fingerprint is not None:
            _WORKLOAD_FINGERPRINTS[spec] = fingerprint
            return fingerprint, None, 0
    module = spec.build()
    fingerprint = fingerprint_op(module)
    _WORKLOAD_FINGERPRINTS[spec] = fingerprint
    if ir_cache is not None and workload_key is not None:
        ir_cache.put_fingerprint(workload_key, fingerprint)
    return fingerprint, module, 1


def evaluate_point(
    point: DesignPoint,
    cache_dir: Optional[str] = None,
    fidelity: str = DEFAULT_FIDELITY,
    ir_cache_dir: Optional[str] = None,
    trace: Optional[Dict[str, str]] = None,
) -> Dict:
    """Evaluate one design point; safe to call in a worker process.

    Builds the workload module, computes the content-hash cache key from the
    *input* module fingerprint plus the full option fingerprint, and either
    replays the cached QoR record or runs the compilation pipeline and
    caches its outcome.  ``fidelity`` selects the registered QoR level the
    payload is produced at (``"estimate"`` = analytic model, ``"simulate"``
    = dataflow simulation); the record carries the level name so consumers
    can re-rank on the most trusted record per point.  Never raises:
    failures come back as records with an ``"error"`` field so one broken
    point cannot sink a whole sweep.

    ``ir_cache_dir`` enables the stage-boundary IR snapshot cache
    (:mod:`repro.compiler.ircache`): the workload fingerprint resolves from
    the cache's frontend memo instead of a fresh trace where possible, and
    a QoR-cache miss compiles through :meth:`Compiler.run
    <repro.compiler.driver.Compiler.run>` with prefix resumption.  The
    run's reuse counters travel under the record's ``"ir_cache"`` key,
    which :func:`explore` pops into aggregate statistics — cached QoR
    records themselves stay byte-identical with the IR cache on or off.

    ``trace`` carries a serialized :class:`~repro.obs.SpanContext` into
    worker processes: the worker adopts it (so its spans stitch under the
    orchestrating span), then hands its collected events back under the
    record's ``"telemetry"`` key — popped by the parent exactly like
    ``"ir_cache"``, so traced and untraced records are byte-identical.
    """
    obs.begin_worker(trace)
    record = _record_for_point(point)
    record["fidelity"] = fidelity
    started = time.perf_counter()
    ir_stats: Optional[Dict[str, int]] = None
    with obs.span(
        "dse.point", cat="dse", label=point.label(), fidelity=fidelity
    ) as point_span:
        try:
            level = get_fidelity(fidelity)
            compiler = point.compiler()
            spec = point.workload_spec()
            ir_cache = IRSnapshotCache(ir_cache_dir) if ir_cache_dir else None
            if ir_cache is not None:
                ir_stats = {
                    "prefix_hits": 0,
                    "stages_skipped": 0,
                    "stages_run": 0,
                    "frontend_traces": 0,
                    "snapshots_stored": 0,
                }
            fingerprint, module, traces = _resolve_fingerprint(spec, ir_cache)
            if ir_stats is not None:
                ir_stats["frontend_traces"] += traces
            record["module_fingerprint"] = fingerprint
            record["pipeline_spec"] = compiler.spec_text()
            cache = QoRCache(cache_dir) if cache_dir else None
            key = _point_cache_key(
                fingerprint, point.platform, compiler.spec_text(), fidelity
            )
            cached = None
            if cache is not None:
                with obs.span("qor-cache.probe", cat="cache"):
                    cached = cache.get(key)
            if cached is not None:
                record.update(cached)
                record["cached"] = True
                record["fidelity"] = fidelity
                point_span.set_attr(cached=True)
            else:
                if ir_cache is not None:
                    # Hand the *spec* through when no module is in hand: on
                    # a prefix hit the driver rehydrates from the snapshot
                    # and the frontend never runs in this process at all.
                    result = (
                        compiler.run(
                            module,
                            ir_cache=ir_cache,
                            workload_key=workload_cache_key(spec),
                        )
                        if module is not None
                        else compiler.run(workload=spec, ir_cache=ir_cache)
                    )
                    for name, value in compiler.ir_cache_stats.items():
                        ir_stats[name] = ir_stats.get(name, 0) + value
                else:
                    if module is None:
                        module = spec.build()
                    result = compiler.run(module)
                payload = level.apply(result)
                if cache is not None:
                    cache.put(key, payload)
                record.update(payload)
                record["cached"] = False
        except Exception:
            record["error"] = traceback.format_exc(limit=8)
            record["cached"] = False
    if ir_stats is not None:
        record["ir_cache"] = ir_stats
    record["eval_seconds"] = time.perf_counter() - started
    if trace is not None:
        telemetry = obs.drain_worker()
        if telemetry is not None:
            record["telemetry"] = telemetry
    return record


def _replay_cached(
    point: DesignPoint,
    cache_dir: str,
    fidelity: str = DEFAULT_FIDELITY,
    ir_cache_dir: Optional[str] = None,
) -> Optional[Dict]:
    """Parent-side cache probe: a completed record on a hit, else None.

    Probing before fan-out keeps fully-warm sweeps free of process-pool
    startup — a cached point costs one (memoized) workload fingerprint and
    one JSON read.
    """
    record = _record_for_point(point)
    record["fidelity"] = fidelity
    started = time.perf_counter()
    try:
        spec = point.workload_spec()
        spec_text = point.canonical_spec()
        ir_cache = IRSnapshotCache(ir_cache_dir) if ir_cache_dir else None
        fingerprint, _, _ = _resolve_fingerprint(spec, ir_cache)
        key = _point_cache_key(fingerprint, point.platform, spec_text, fidelity)
        with obs.span("qor-cache.probe", cat="cache", side="parent"):
            cached = QoRCache(cache_dir).get(key)
        if cached is None:
            return None
        record["module_fingerprint"] = fingerprint
        record["pipeline_spec"] = spec_text
        record.update(cached)
        record["cached"] = True
        record["fidelity"] = fidelity
        record["eval_seconds"] = time.perf_counter() - started
        return record
    except Exception:
        # Any probe failure falls through to a full (worker) evaluation.
        return None


def _worker_init(
    src_path: Optional[str], workload_modules: Sequence[str] = ()
) -> None:
    """Make the in-tree package importable in spawned workers.

    ``workload_modules`` are the modules whose import re-registers any
    custom (non built-in) workloads swept by this exploration: under the
    ``spawn`` start method each worker holds a fresh registry, so the
    registrations must be replayed before points resolve.  Import failures
    are left to surface naturally as per-point UnknownWorkloadError records.
    """
    if src_path and src_path not in sys.path:
        sys.path.insert(0, src_path)
    import contextlib
    import importlib

    for module in workload_modules:
        with contextlib.suppress(ImportError):
            importlib.import_module(module)


def _repo_src_path() -> Optional[str]:
    path = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
    return path if os.path.isdir(path) else None


def _make_pool(workers: int, points: Sequence[DesignPoint]) -> ProcessPoolExecutor:
    """An executor whose workers can resolve every workload of ``points``.

    Worker processes spawn lazily (on first submit), so creating the pool
    up front costs nothing on fully-cached runs.
    """
    from ..workloads import source_modules

    workload_modules = source_modules({p.workload for p in points})
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(_repo_src_path(), workload_modules),
    )


def _prefix_group_order(point: DesignPoint) -> tuple:
    """Sort key grouping points that share compilation prefixes.

    Points of the same workload, platform and canonical-spec prefix land in
    adjacent ``pool.map`` chunks, so one worker compiles the shared prefix
    and its chunk-mates resume from the just-written snapshot instead of
    racing other workers to compile it.  Canonical specs sort stage-by-
    stage from the front, so the longest shared prefixes cluster tightest.
    The final record order is restored from the batch order afterwards, so
    grouping never changes any output — only which process compiles what.
    """
    return (point.workload, point.platform, point.canonical_spec(), point.key())


def _merge_ir_stats(records: List[Dict]) -> Dict[str, int]:
    """Pop per-record ``"ir_cache"`` counters and sum them.

    The counters are *popped*, not copied: records (and therefore frontier
    JSON, result files and fixed-seed comparisons) stay byte-identical with
    the IR cache on or off; reuse statistics surface only through
    :class:`~repro.evaluation.reporting.ExplorationResult` aggregates.
    """
    totals: Dict[str, int] = {}
    for record in records:
        stats = record.pop("ir_cache", None)
        if not isinstance(stats, dict):
            continue
        for name, value in stats.items():
            totals[name] = totals.get(name, 0) + int(value)
    return totals


def _merge_telemetry(records: List[Dict]) -> None:
    """Pop per-record worker telemetry and fold it into the live session.

    Popped (never copied), exactly like :func:`_merge_ir_stats`: records —
    and therefore frontier JSON and fixed-seed comparisons — stay
    byte-identical whether tracing is on or off.
    """
    for record in records:
        payload = record.pop("telemetry", None)
        if payload:
            obs.ingest(payload)


def _evaluate_batch(
    points: Sequence[DesignPoint],
    workers: int,
    resolved_cache: Optional[str],
    chunksize: int,
    resume: bool = False,
    pool: Optional[ProcessPoolExecutor] = None,
    fidelity: str = DEFAULT_FIDELITY,
    ir_cache_dir: Optional[str] = None,
) -> tuple:
    """Evaluate one batch of points at one fidelity level; records come
    back in batch order.

    Cache hits replay in the parent process (no pool startup on warm
    batches); the rest fan out across ``pool`` (or a batch-local pool when
    none is shared).  Returns ``(records, skipped, ir_stats)`` where
    ``skipped`` counts uncached points a ``resume`` run left unevaluated
    and ``ir_stats`` sums the batch's IR-snapshot reuse counters (empty
    when the IR cache is off).
    """
    records: List[Dict] = []
    pending: List[DesignPoint] = []
    if resolved_cache:
        for point in points:
            cached = _replay_cached(point, resolved_cache, fidelity, ir_cache_dir)
            if cached is not None:
                records.append(cached)
            else:
                pending.append(point)
    else:
        pending = list(points)
    skipped = 0
    if resume:
        skipped = len(pending)
        pending = []
    if ir_cache_dir:
        pending.sort(key=_prefix_group_order)
    if workers <= 1 or len(pending) <= 1:
        records.extend(
            evaluate_point(point, resolved_cache, fidelity, ir_cache_dir)
            for point in pending
        )
    elif pending:
        # Serialize the current span context so worker-side spans stitch
        # under the orchestrating span (None while tracing is disabled).
        trace_ctx = obs.propagation_context()

        def fan_out(executor: ProcessPoolExecutor) -> None:
            records.extend(
                executor.map(
                    evaluate_point,
                    pending,
                    [resolved_cache] * len(pending),
                    [fidelity] * len(pending),
                    [ir_cache_dir] * len(pending),
                    [trace_ctx] * len(pending),
                    chunksize=max(1, chunksize),
                )
            )

        if pool is not None:
            fan_out(pool)
        else:
            with _make_pool(workers, pending) as local_pool:
                fan_out(local_pool)
    _merge_telemetry(records)
    ir_stats = _merge_ir_stats(records)
    # ``pool.map`` already preserves order; re-sort by the batch point order
    # (prefix grouping reorders evaluation) so downstream consumers can
    # rely on it.
    order = {point.key(): index for index, point in enumerate(points)}
    records.sort(key=lambda r: order.get(r.get("point_key"), len(order)))
    return records, skipped, ir_stats


def _by_workload(records: Sequence[Dict]) -> Dict[str, List[Dict]]:
    groups: Dict[str, List[Dict]] = {}
    for record in records:
        groups.setdefault(str(record.get("workload", "")), []).append(record)
    return groups


def _grouped_frontier(
    scored: Sequence[Dict], objectives: Sequence[str], group_by_workload: bool
) -> List[Dict]:
    if not group_by_workload:
        return pareto_frontier(scored, objectives)
    groups = _by_workload(scored)
    frontier: List[Dict] = []
    for name in sorted(groups):
        frontier.extend(pareto_frontier(groups[name], objectives))
    return frontier


def _hv_references(
    scored: Sequence[Dict], objectives: Sequence[str], group_by_workload: bool
) -> Dict[str, Optional[tuple]]:
    """Per-group hypervolume reference points derived from ``scored``."""
    if not group_by_workload:
        return {"": hypervolume_reference(scored, objectives)}
    groups = _by_workload(scored)
    return {
        name: hypervolume_reference(groups[name], objectives) for name in groups
    }


def _grouped_hypervolume(
    scored: Sequence[Dict],
    objectives: Sequence[str],
    group_by_workload: bool,
    references: Dict[str, Optional[tuple]],
) -> float:
    """Summed per-group hypervolume against fixed per-group references.

    The references come from :func:`_hv_references` over the *final* record
    set, so per-generation values within a run form a comparable
    (non-decreasing) trajectory; cross-run comparisons should still derive
    one shared reference externally.
    """
    if not group_by_workload:
        reference = references.get("")
        return hypervolume(scored, objectives, reference) if reference else 0.0
    groups = _by_workload(scored)
    total = 0.0
    for name in sorted(groups):
        reference = references.get(name)
        if reference is not None:
            total += hypervolume(groups[name], objectives, reference)
    return total


def explore(
    space: Union[DesignSpace, Sequence[DesignPoint]],
    workers: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    chunksize: int = 4,
    group_by_workload: bool = True,
    resume: bool = False,
    strategy=None,
    budget: Optional[int] = None,
    seed: int = 0,
    strategy_options: Optional[Dict] = None,
    fidelity: str = DEFAULT_FIDELITY,
    promote_top: Optional[float] = None,
    patience: Optional[int] = None,
    ir_cache: bool = False,
    ir_cache_dir: Optional[str] = None,
    prefilter: bool = False,
    validate_frontier: bool = False,
) -> ExplorationResult:
    """Evaluate ``space`` (fully or via a search strategy) and extract the
    Pareto frontier.

    ``workers <= 1`` runs serially in-process (easier profiling/debugging);
    anything larger uses a :class:`ProcessPoolExecutor`.  With caching on
    (the default) each evaluated point is persisted under ``cache_dir`` (or
    the default cache root), making overlapping sweeps and re-runs nearly
    free.

    ``strategy`` picks an adaptive search instead of the full sweep: a
    registered name (``"exhaustive"``, ``"random"``, ``"genetic"``,
    ``"anneal"``) or a :class:`~repro.dse.search.SearchStrategy` instance.
    ``budget`` caps the number of distinct points evaluated (default: the
    space size), ``seed`` fixes the search trajectory, and
    ``strategy_options`` passes strategy-specific knobs (``population``,
    ``mutation_rate``, ``generations``, ``chains``, ...).  Per-generation
    progress lands in ``ExplorationResult.generations``.

    With ``resume`` the sweep never compiles: points already in the QoR
    cache stream straight into the result and every uncached point is
    *skipped* (counted in ``ExplorationResult.skipped``) — the way to turn
    an interrupted sweep's partial cache into an output JSON without
    recomputation.  ``resume`` is a replay of the *whole* space, so it is
    incompatible with ``strategy``.

    ``fidelity`` picks the top QoR level of a multi-fidelity run (see
    :mod:`repro.dse.fidelity`).  With ``fidelity="simulate"`` every point is
    still evaluated at the cheap analytic level first; each generation (or
    once, after a full sweep) the top ``promote_top`` fraction — frontier
    members first, ranked by hypervolume contribution — is re-evaluated by
    the dataflow simulator, strategies steer on the best-available record
    per point, and the final frontier is re-ranked on the
    highest-fidelity records.  Promotions do not consume ``budget`` (budget
    counts distinct *designs*, not evaluations), and both levels cache
    under fidelity-tagged keys, so warm reruns do zero compiles and zero
    simulations.

    ``patience`` adds hypervolume-based early stopping to an adaptive
    search: the run ends once ``patience`` consecutive generations fail to
    improve the (best-fidelity) frontier hypervolume.

    With ``group_by_workload`` (the default) the frontier is the union of
    per-workload frontiers — latency trade-offs only make sense between
    designs of the *same* computation; set it to False for a single global
    frontier when sweeping one workload under many configurations.

    ``ir_cache`` turns on the stage-boundary IR snapshot cache
    (:mod:`repro.compiler.ircache`): each generation's points are grouped
    by longest shared canonical-spec prefix so the shared prefix compiles
    once per worker batch and everything behind it resumes from printed-IR
    snapshots under ``ir_cache_dir`` (default ``~/.cache/repro/ir`` or
    ``$REPRO_IR_CACHE``).  Fixed-seed results are byte-identical with the
    cache on, off, cold or warm, for any worker count; reuse shows up only
    in ``ExplorationResult.prefix_hits`` / ``stages_skipped`` and the
    per-generation ``reuse`` column.  The cache trusts registry workload
    ids as identities, so re-registering a *different* workload under an
    id cached earlier requires clearing the cache directory.

    ``prefilter`` runs the static feasibility check of
    :mod:`repro.analysis.prefilter` over the (deduplicated) input points
    before any evaluation: points whose pipeline cannot produce a QoR
    record, or whose structural prefix the analyzer flags with an
    error-severity finding (deadlock, memory race), are dropped into
    ``ExplorationResult.rejected`` instead of being evaluated.  Rejected
    points never consume ``budget`` (adaptive searches draw candidates
    from the filtered pool), and the records of feasible points are
    byte-identical to a run without the filter.

    ``validate_frontier`` translation-validates every frontier member
    before it is reported: the point's full pipeline re-runs with the
    reference interpreter checking each stage boundary
    (:mod:`repro.analysis.tv`).  Validated records gain a ``validation``
    summary; points whose pipeline changed program behavior are dropped
    from the frontier into ``ExplorationResult.validation_failures`` —
    a promoted Pareto point is never reported on miscompiled IR.
    """
    points: List[DesignPoint] = []
    seen_keys = set()
    for point in space:
        # Dedupe by identity up front: duplicate points would collapse into
        # one slot of the order-restoring sort and interleave cached/fresh
        # results nondeterministically.
        key = point.key()
        if key not in seen_keys:
            seen_keys.add(key)
            points.append(point)
    rejected: List[Dict] = []
    if prefilter:
        from ..analysis.prefilter import filter_points

        points, rejected = filter_points(points)
    unknown = [name for name in objectives if name not in SUMMARY_METRICS]
    if unknown or not list(objectives):
        raise ValueError(
            f"unknown objective(s) {unknown or '(none)'}; "
            f"choose from {SUMMARY_METRICS}"
        )
    if resume and not use_cache:
        raise ValueError("resume=True requires the QoR cache (use_cache=True)")
    if resume and strategy is not None:
        raise ValueError("resume replays the whole space; drop strategy=...")
    if strategy is None and (budget is not None or seed or strategy_options):
        raise ValueError(
            "budget/seed/strategy_options have no effect without strategy=... "
            "(the full sweep evaluates every point)"
        )
    level = get_fidelity(str(fidelity))
    base_rank = get_fidelity(DEFAULT_FIDELITY).rank
    if level.rank < base_rank:
        raise ValueError(
            f"fidelity {level.name!r} is below the base level "
            f"{DEFAULT_FIDELITY!r}; promotion races upward only"
        )
    multi_fidelity = level.rank > base_rank
    if promote_top is not None and not multi_fidelity:
        raise ValueError(
            "promote_top has no effect at the base fidelity; "
            "pass fidelity='simulate' (or another higher level) with it"
        )
    if resume and multi_fidelity:
        raise ValueError(
            "resume replays base-fidelity cache entries only; drop fidelity=..."
        )
    policy: Optional[PromotionPolicy] = None
    if multi_fidelity:
        policy = PromotionPolicy(
            target=level.name,
            promote_top=(
                DEFAULT_PROMOTE_TOP if promote_top is None else float(promote_top)
            ),
        )
    if patience is not None:
        if strategy is None:
            raise ValueError(
                "patience stops an adaptive search early; it needs strategy=..."
            )
        patience = int(patience)
        if patience < 1:
            raise ValueError(f"patience must be >= 1 (got {patience})")
    resolved_cache: Optional[str] = None
    if use_cache:
        resolved_cache = str(cache_dir) if cache_dir else str(QoRCache().root)
    resolved_ir_cache: Optional[str] = None
    if ir_cache:
        resolved_ir_cache = (
            str(ir_cache_dir) if ir_cache_dir else str(default_ir_cache_dir())
        )
    elif ir_cache_dir:
        raise ValueError("ir_cache_dir has no effect with ir_cache=False")
    #: Run-level metrics: ``ir_cache.*`` counters aggregate the per-record
    #: dumps popped by :func:`_merge_ir_stats`; the ``prefix_hits`` /
    #: ``stages_skipped`` result fields are views over this registry.
    run_metrics = MetricsRegistry()

    def absorb_ir_stats(stats: Dict[str, int]) -> None:
        for name, value in stats.items():
            run_metrics.inc(f"ir_cache.{name}", value)

    started = time.perf_counter()
    explore_span = obs.span(
        "dse.explore",
        cat="dse",
        points=len(points),
        workers=max(1, workers),
        fidelity=level.name,
    )
    strategy_name: Optional[str] = None
    generations: List[Dict] = []
    stopped_early = False
    if strategy is None:
        # Share one pool between the base sweep and its promotion pass so
        # the workers (and their import replay) are paid for once.
        sweep_pool = (
            _make_pool(workers, points)
            if workers > 1 and policy is not None
            else None
        )
        try:
            records, skipped, batch_ir = _evaluate_batch(
                points, workers, resolved_cache, chunksize, resume,
                pool=sweep_pool, ir_cache_dir=resolved_ir_cache,
            )
            absorb_ir_stats(batch_ir)
            if policy is not None:
                scored = [r for r in records if "error" not in r]
                by_key = {point.key(): point for point in points}
                promote_keys = policy.select(
                    scored, scored, objectives, group_by_workload
                )
                promote_points = [
                    by_key[key] for key in promote_keys if key in by_key
                ]
                with obs.span(
                    "dse.promote",
                    cat="dse",
                    points=len(promote_points),
                    fidelity=level.name,
                ):
                    promoted_records, _, promote_ir = _evaluate_batch(
                        promote_points,
                        workers,
                        resolved_cache,
                        chunksize,
                        pool=sweep_pool,
                        fidelity=level.name,
                        ir_cache_dir=resolved_ir_cache,
                    )
                absorb_ir_stats(promote_ir)
                records.extend(promoted_records)
        finally:
            if sweep_pool is not None:
                sweep_pool.shutdown()
    else:
        from .search import SearchStrategy, make_strategy

        if isinstance(strategy, SearchStrategy):
            if budget is not None or seed or strategy_options:
                raise ValueError(
                    "budget/seed/strategy_options belong to the "
                    "SearchStrategy constructor when explore() is handed "
                    "an instance"
                )
            if tuple(strategy.objectives) != tuple(objectives):
                raise ValueError(
                    f"strategy steers on objectives {strategy.objectives} "
                    f"but explore() would report on {tuple(objectives)}; "
                    "pass the same objectives to both"
                )
            searcher = strategy
        else:
            searcher = make_strategy(
                str(strategy),
                points,
                objectives=objectives,
                budget=budget,
                seed=seed,
                options=strategy_options,
            )
        strategy_name = searcher.name
        budget = searcher.budget
        records = []
        skipped = 0
        evaluated_designs = 0
        stall = 0
        #: Index into ``records`` after each generation, for the final
        #: fixed-reference hypervolume pass (promotions interleave, so the
        #: design count no longer addresses the record list).
        boundaries: List[int] = []
        # One shared pool across generations: the per-batch fan-out would
        # otherwise respawn workers (and replay their imports) every
        # generation.  Strategies never mutate workload axes, so the
        # space's workload set covers every batch.
        pool = _make_pool(workers, points) if workers > 1 else None
        try:
            while evaluated_designs < budget:
                batch = searcher.propose(budget - evaluated_designs)
                if not batch:
                    break
                batch = batch[: budget - evaluated_designs]
                generation_span = obs.span(
                    "dse.generation",
                    cat="dse",
                    generation=len(generations),
                    batch=len(batch),
                )
                batch_records, _, batch_ir = _evaluate_batch(
                    batch, workers, resolved_cache, chunksize, pool=pool,
                    ir_cache_dir=resolved_ir_cache,
                )
                absorb_ir_stats(batch_ir)
                searcher.observe(batch_records)
                previous_boundary = len(records)
                records.extend(batch_records)
                evaluated_designs += len(batch_records)
                promoted_records: List[Dict] = []
                if policy is not None:
                    context = [
                        r
                        for r in best_fidelity_records(records)
                        if "error" not in r
                    ]
                    promote_keys = policy.select(
                        [r for r in batch_records if "error" not in r],
                        context,
                        objectives,
                        group_by_workload,
                    )
                    by_key = {point.key(): point for point in batch}
                    promote_points = [
                        by_key[key] for key in promote_keys if key in by_key
                    ]
                    with obs.span(
                        "dse.promote",
                        cat="dse",
                        points=len(promote_points),
                        fidelity=level.name,
                    ):
                        promoted_records, _, promote_ir = _evaluate_batch(
                            promote_points,
                            workers,
                            resolved_cache,
                            chunksize,
                            pool=pool,
                            fidelity=level.name,
                            ir_cache_dir=resolved_ir_cache,
                        )
                    absorb_ir_stats(promote_ir)
                    batch_ir = {
                        name: batch_ir.get(name, 0) + promote_ir.get(name, 0)
                        for name in set(batch_ir) | set(promote_ir)
                    }
                    searcher.observe(promoted_records, refinement=True)
                    records.extend(promoted_records)
                base_by_key = {r.get("point_key"): r for r in batch_records}
                disagreement = max(
                    (
                        relative_disagreement(
                            base_by_key[r.get("point_key")].get("summary", {}),
                            r.get("summary", {}),
                            objectives,
                        )
                        for r in promoted_records
                        if "error" not in r and r.get("point_key") in base_by_key
                    ),
                    default=0.0,
                )
                scored_so_far = [
                    r for r in best_fidelity_records(records) if "error" not in r
                ]
                generations.append(
                    {
                        "generation": len(generations),
                        "evaluated": len(batch_records),
                        "promoted": len(promoted_records),
                        "max_disagreement": disagreement,
                        "total_evaluations": evaluated_designs,
                        "frontier_size": len(
                            _grouped_frontier(
                                scored_so_far, objectives, group_by_workload
                            )
                        ),
                        "prefix_hits": batch_ir.get("prefix_hits", 0),
                        "stages_skipped": batch_ir.get("stages_skipped", 0),
                    }
                )
                generation_span.set_attr(
                    evaluated=len(batch_records), promoted=len(promoted_records)
                )
                generation_span.finish()
                boundaries.append(len(records))
                if patience is not None:
                    # Online improvement check: both prefixes are scored
                    # against references derived from the *current* record
                    # set, so the comparison is apples-to-apples even as
                    # the observed objective ranges expand.
                    current_refs = _hv_references(
                        scored_so_far, objectives, group_by_workload
                    )
                    volume_now = _grouped_hypervolume(
                        scored_so_far, objectives, group_by_workload, current_refs
                    )
                    previous_scored = [
                        r
                        for r in best_fidelity_records(records[:previous_boundary])
                        if "error" not in r
                    ]
                    volume_before = _grouped_hypervolume(
                        previous_scored, objectives, group_by_workload, current_refs
                    )
                    improved = volume_now > volume_before + 1e-9 * max(
                        abs(volume_now), 1.0
                    )
                    stall = 0 if improved else stall + 1
                    if stall >= patience:
                        stopped_early = True
                        break
        finally:
            if pool is not None:
                pool.shutdown()
        # Hypervolume per generation is filled in against references fixed
        # by the final record set — re-deriving the reference mid-run would
        # make consecutive rows incomparable (it expands whenever a new
        # worst extreme is observed).
        final_scored = [
            r for r in best_fidelity_records(records) if "error" not in r
        ]
        references = _hv_references(final_scored, objectives, group_by_workload)
        for generation, boundary in zip(generations, boundaries):
            prefix = [
                r
                for r in best_fidelity_records(records[:boundary])
                if "error" not in r
            ]
            generation["hypervolume"] = _grouped_hypervolume(
                prefix, objectives, group_by_workload, references
            )
    elapsed = time.perf_counter() - started
    explore_span.set_attr(records=len(records), elapsed_seconds=round(elapsed, 6))
    explore_span.finish()

    errors = [r for r in records if "error" in r]
    # Re-rank on the most trusted record per design point: promoted points
    # enter the frontier with their simulator-fidelity QoR.
    scored = [r for r in best_fidelity_records(records) if "error" not in r]
    frontier = _grouped_frontier(scored, objectives, group_by_workload)
    validation_failures: List[Dict] = []
    if validate_frontier:
        frontier, validation_failures = _validate_frontier(frontier, points)
    # The compile/simulate/cache-probe time split of this run, when tracing
    # is on (None otherwise, keeping result files byte-identical to seed).
    telemetry = obs.telemetry_summary() if obs.enabled() else None
    return ExplorationResult(
        records=records,
        frontier=frontier,
        objectives=tuple(objectives),
        workers=max(1, workers),
        elapsed_seconds=elapsed,
        cache_hits=sum(1 for r in records if r.get("cached")),
        cache_misses=sum(1 for r in records if not r.get("cached")),
        errors=errors,
        skipped=skipped,
        strategy=strategy_name,
        budget=budget if strategy_name is not None else None,
        generations=generations,
        fidelity=level.name,
        promote_top=policy.promote_top if policy is not None else None,
        stopped_early=stopped_early,
        prefix_hits=int(run_metrics.value("ir_cache.prefix_hits")),
        stages_skipped=int(run_metrics.value("ir_cache.stages_skipped")),
        rejected=rejected,
        validation_failures=validation_failures,
        telemetry=telemetry,
    )


def _validate_frontier(
    frontier: List[Dict], points: Sequence[DesignPoint]
) -> Tuple[List[Dict], List[Dict]]:
    """Semantics-check every frontier record's pipeline before reporting.

    Returns ``(kept frontier, failure records)``.  Records whose design
    point cannot be resolved (e.g. streamed in from a foreign cache) pass
    through unvalidated rather than being silently dropped.
    """
    from ..analysis.tv import validate_point

    by_key = {point.key(): point for point in points}
    kept: List[Dict] = []
    failures: List[Dict] = []
    for record in frontier:
        point = by_key.get(str(record.get("point_key", "")))
        if point is None:
            kept.append(record)
            continue
        report = validate_point(point)
        record["validation"] = {
            "ok": report.ok,
            "outcomes": report.outcomes(),
        }
        if report.ok:
            kept.append(record)
            continue
        failures.append(
            {
                "point_key": record.get("point_key"),
                "label": record.get("label"),
                "workload": record.get("workload"),
                "error": report.error,
                "mismatches": [
                    check.to_dict() for check in report.mismatches
                ],
            }
        )
    return kept, failures
