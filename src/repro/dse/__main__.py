"""Command-line design-space exploration driver.

Examples::

    python -m repro.dse --space small --workers 8
    python -m repro.dse --space medium --suite dnn --platform pynq-z2
    python -m repro.dse --space small --workload resnet18@batch=4 --workload 2mm
    python -m repro.dse --space small --dry-run
    python -m repro.dse --space full --sample 64 --seed 7 --json sweep.json
    python -m repro.dse --space full --resume --json partial.json
    python -m repro.dse --space full --strategy genetic --budget 200 --workers 8
    python -m repro.dse --space medium --strategy anneal --budget 64 --seed 3
    python -m repro.dse --space small --strategy genetic --budget 12 \\
        --fidelity simulate --promote-top 0.25
    python -m repro.dse --space medium --strategy genetic --budget 64 --patience 3
    python -m repro.dse --list-strategies
    python -m repro.dse --list-fidelities
    python -m repro.dse --pipeline-spec "construct-dataflow,lower-structural,parallelize{factor=8},estimate"
    python -m repro.dse --clear-cache
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .. import obs
from ..targets import UnknownTargetError, get_target
from ..workloads import UnknownWorkloadError
from .cache import QoRCache, default_cache_dir
from .fidelity import DEFAULT_FIDELITY, available_fidelities, describe_fidelities
from .pareto import DEFAULT_OBJECTIVES, SUMMARY_METRICS
from .runner import explore
from .search import available_strategies, get_strategy
from .space import (
    SPACE_PRESETS,
    build_space,
    dnn_suite,
    polybench_suite,
    suite_from_names,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="Explore HIDA design spaces in parallel with QoR caching.",
    )
    parser.add_argument(
        "--space",
        choices=sorted(SPACE_PRESETS),
        default="small",
        help="design-space preset (default: small)",
    )
    parser.add_argument(
        "--suite",
        choices=("polybench", "dnn"),
        default="polybench",
        help="workload suite to sweep (default: polybench)",
    )
    parser.add_argument(
        "--workload",
        action="append",
        dest="workloads",
        default=None,
        metavar="NAME[@PARAM=VALUE,...]",
        help="sweep these registered workloads instead of a --suite; "
        "repeatable (e.g. --workload resnet18@batch=4 --workload 2mm@n=16)",
    )
    parser.add_argument(
        "--list-workloads",
        action="store_true",
        help="list registered workload names and exit",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="resolve and print the design points without evaluating them",
    )
    parser.add_argument(
        "--platform",
        action="append",
        dest="platforms",
        default=None,
        metavar="NAME",
        help="target platform(s); repeatable (default: zu3eg)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1)"
    )
    parser.add_argument(
        "--sample",
        type=int,
        default=0,
        metavar="N",
        help="seeded subsample of N points from the space (0 = all)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="sampling / search seed (default: 0)",
    )
    parser.add_argument(
        "--strategy",
        choices=available_strategies(),
        default=None,
        help="adaptive search instead of the full sweep "
        "(genetic and anneal also search pipeline composition)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=0,
        metavar="N",
        help="max distinct design points a --strategy run evaluates "
        "(cache hits count but cost no compile; 0 = space size)",
    )
    parser.add_argument(
        "--generations",
        type=int,
        default=0,
        metavar="N",
        help="cap --strategy generations (0 = run until the budget)",
    )
    parser.add_argument(
        "--mutation-rate",
        type=float,
        default=None,
        metavar="P",
        help="per-axis mutation probability for --strategy genetic",
    )
    parser.add_argument(
        "--population",
        type=int,
        default=None,
        metavar="N",
        help="offspring batch size for --strategy genetic",
    )
    parser.add_argument(
        "--fidelity",
        choices=available_fidelities(),
        default=DEFAULT_FIDELITY,
        help="top QoR fidelity: 'estimate' scores everything with the "
        "analytic model; 'simulate' additionally promotes the most "
        "promising points to the dataflow simulator and re-ranks the "
        "frontier on the simulated records (default: estimate)",
    )
    parser.add_argument(
        "--promote-top",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fraction of each generation (or of the full sweep) promoted "
        "to the --fidelity level (default: 0.25; needs --fidelity simulate)",
    )
    parser.add_argument(
        "--patience",
        type=int,
        default=None,
        metavar="N",
        help="stop a --strategy run after N consecutive generations "
        "without a hypervolume improvement",
    )
    parser.add_argument(
        "--list-fidelities",
        action="store_true",
        help="list registered QoR fidelity levels and exit",
    )
    parser.add_argument(
        "--list-strategies",
        action="store_true",
        help="list registered search strategies with their defaults and exit",
    )
    parser.add_argument(
        "--objectives",
        default=",".join(DEFAULT_OBJECTIVES),
        help="comma-separated summary metrics, each optimized in its "
        "natural direction (throughput is maximized, everything else "
        f"minimized; default: {','.join(DEFAULT_OBJECTIVES)})",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"QoR cache directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the QoR cache"
    )
    parser.add_argument(
        "--ir-cache",
        action="store_true",
        help="enable the stage-boundary IR snapshot cache: compilations "
        "sharing a pipeline prefix resume mid-pipeline instead of "
        "recompiling from the frontend (results are byte-identical)",
    )
    parser.add_argument(
        "--no-ir-cache",
        action="store_true",
        help="explicitly disable the IR snapshot cache (the default; "
        "counterpart of --ir-cache for scripts)",
    )
    parser.add_argument(
        "--ir-cache-dir",
        default=None,
        metavar="PATH",
        help="IR snapshot cache directory (default: $REPRO_IR_CACHE or "
        "~/.cache/repro/ir; needs --ir-cache)",
    )
    parser.add_argument(
        "--prefilter",
        action="store_true",
        help="statically reject infeasible design points before evaluation "
        "(deadlock / memory-race errors on the structural prefix, specs "
        "without an estimate stage); rejections never consume --budget "
        "and land in the result's 'rejected' list",
    )
    parser.add_argument(
        "--validate-frontier",
        action="store_true",
        help="translation-validate every Pareto-frontier design point "
        "(execute its pipeline under the reference interpreter stage by "
        "stage) before reporting; failures land in the result's "
        "'validation_failures' list and fail the run",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="stream already-cached points into the result and skip the "
        "rest (no compilation; pairs with --json to export partial sweeps)",
    )
    parser.add_argument(
        "--pipeline-spec",
        action="append",
        dest="pipeline_specs",
        default=None,
        metavar="SPEC",
        help="add a textual pipeline spec as an extra design axis; "
        "repeatable (see python -m repro.compiler --list-stages)",
    )
    parser.add_argument(
        "--clear-cache", action="store_true", help="clear the cache and exit"
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the full ExplorationResult as JSON to PATH",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="print at most N frontier rows (0 = all)",
    )
    obs.add_cli_arguments(parser)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.sample < 0:
        parser.error(f"--sample must be non-negative (got {args.sample})")
    if args.workers < 0:
        parser.error(f"--workers must be non-negative (got {args.workers})")
    if args.budget < 0:
        parser.error(f"--budget must be non-negative (got {args.budget})")
    if args.generations < 0:
        parser.error(f"--generations must be non-negative (got {args.generations})")
    if args.strategy is None and (
        args.budget
        or args.generations
        or args.mutation_rate is not None
        or args.population is not None
        or args.patience is not None
    ):
        parser.error(
            "--budget/--generations/--mutation-rate/--population/--patience "
            "need --strategy"
        )
    if args.strategy and args.resume:
        parser.error("--resume replays the whole space; drop --strategy")
    if args.patience is not None and args.patience < 1:
        parser.error(f"--patience must be >= 1 (got {args.patience})")
    if args.promote_top is not None:
        if args.fidelity == DEFAULT_FIDELITY:
            parser.error("--promote-top needs a multi-fidelity run "
                         "(e.g. --fidelity simulate)")
        if not 0.0 < args.promote_top <= 1.0:
            parser.error(
                f"--promote-top must be in (0, 1] (got {args.promote_top})"
            )
    if args.resume and args.fidelity != DEFAULT_FIDELITY:
        parser.error("--resume replays the estimate fidelity only; "
                     "drop --fidelity")
    strategy_options = {}
    if args.generations:
        strategy_options["generations"] = args.generations
    if args.mutation_rate is not None:
        if args.strategy != "genetic":
            parser.error("--mutation-rate applies to --strategy genetic")
        if not 0.0 <= args.mutation_rate <= 1.0:
            parser.error(
                f"--mutation-rate must be in [0, 1] (got {args.mutation_rate})"
            )
        strategy_options["mutation_rate"] = args.mutation_rate
    if args.population is not None:
        if args.strategy != "genetic":
            parser.error("--population applies to --strategy genetic")
        if args.population < 1:
            parser.error(f"--population must be >= 1 (got {args.population})")
        strategy_options["population"] = args.population

    if args.list_workloads:
        from ..workloads import iter_workloads

        for handle in iter_workloads():
            print(f"{handle.name:14s} {handle.kind}")
        return 0

    if args.list_fidelities:
        for line in describe_fidelities():
            print(line)
        return 0

    if args.list_strategies:
        for name in available_strategies():
            cls = get_strategy(name)
            doc = (cls.__doc__ or "").strip()
            doc = doc.splitlines()[0] if doc else ""
            print(f"{name:12s} {doc}")
            for option in sorted(cls.defaults):
                print(f"  {option}={cls.defaults[option]}")
        return 0

    if args.clear_cache:
        cache = QoRCache(args.cache_dir)
        removed = cache.clear()
        print(f"cleared {removed} cached QoR entries from {cache.root}")
        return 0

    if args.resume and args.no_cache:
        parser.error("--resume needs the QoR cache; drop --no-cache")

    if args.ir_cache and args.no_ir_cache:
        parser.error("--ir-cache and --no-ir-cache are mutually exclusive")
    if args.ir_cache_dir and not args.ir_cache:
        parser.error("--ir-cache-dir needs --ir-cache")

    if args.workloads:
        try:
            suite = suite_from_names(args.workloads)
        except (UnknownWorkloadError, ValueError) as error:
            parser.error(f"--workload: {error}")
        suite_label = "custom suite"
    else:
        suite = polybench_suite() if args.suite == "polybench" else dnn_suite()
        suite_label = f"{args.suite} suite"
    try:
        platforms = tuple(
            get_target(name).name for name in (args.platforms or ("zu3eg",))
        )
    except UnknownTargetError as error:
        parser.error(f"--platform: {error}")
    pipeline_specs: tuple = (None,)
    if args.pipeline_specs:
        from ..compiler import Compiler, PipelineSpecError

        for spec in args.pipeline_specs:
            try:
                Compiler.from_spec(spec)
            except PipelineSpecError as error:
                parser.error(f"bad --pipeline-spec: {error}")
        pipeline_specs = (None, *args.pipeline_specs)
    space = build_space(
        args.space, suite=suite, platforms=platforms, pipeline_specs=pipeline_specs
    )
    if args.sample:
        space = space.sample(args.sample, seed=args.seed)
    objectives = tuple(
        name.strip() for name in args.objectives.split(",") if name.strip()
    )
    unknown = [name for name in objectives if name not in SUMMARY_METRICS]
    if unknown or not objectives:
        parser.error(
            f"unknown objective(s) {', '.join(unknown) or '(none given)'}; "
            f"choose from: {', '.join(SUMMARY_METRICS)}"
        )

    if args.dry_run:
        print(
            f"{len(space)} design points "
            f"({args.space} space, {suite_label}, platforms: {', '.join(platforms)})"
        )
        if args.strategy:
            print(
                f"(--strategy {args.strategy} would evaluate at most "
                f"{args.budget or len(space)} of these, adaptively chosen; "
                "this listing is the full space)"
            )
        for point in space:
            print(f"  {point.label()}  [{point.key()}]")
        return 0

    print(
        f"exploring {len(space)} design points "
        f"({args.space} space, {suite_label}, platforms: {', '.join(platforms)}) "
        f"with {args.workers} worker(s), cache "
        f"{'off' if args.no_cache else (args.cache_dir or str(default_cache_dir()))}"
    )
    obs.cli_configure(args)
    result = explore(
        space,
        workers=args.workers,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        objectives=objectives,
        resume=args.resume,
        strategy=args.strategy,
        budget=args.budget or None,
        # Without a strategy --seed only steers --sample (handled above).
        seed=args.seed if args.strategy else 0,
        strategy_options=strategy_options or None,
        fidelity=args.fidelity,
        promote_top=args.promote_top,
        patience=args.patience,
        ir_cache=args.ir_cache,
        ir_cache_dir=args.ir_cache_dir,
        prefilter=args.prefilter,
        validate_frontier=args.validate_frontier,
    )

    if result.strategy:
        print()
        print(result.search_table())
    if result.num_promoted:
        print()
        print(result.disagreement_table(max_rows=args.top))
    print()
    print(result.frontier_table(max_rows=args.top))
    stats = result.summary()
    print()
    evaluations = (
        f" ({result.num_points} evaluations)" if result.num_promoted else ""
    )
    print(
        f"{result.num_designs} designs{evaluations} in "
        f"{result.elapsed_seconds:.2f}s "
        f"({result.points_per_second:.1f} evals/s) — "
        f"{result.num_cached} from cache, {int(stats['errors'])} errors"
        + (f", {result.skipped} skipped (--resume)" if result.skipped else "")
        + (
            f", {result.num_promoted} promoted to {result.fidelity} fidelity"
            if result.num_promoted
            else ""
        )
        + (
            f"; strategy {result.strategy}: "
            f"{result.num_designs}/{result.budget} "
            f"budget in {len(result.generations)} generation(s)"
            + (" [stopped early]" if result.stopped_early else "")
            if result.strategy
            else ""
        )
        + (
            f"; IR cache: {result.prefix_hits} prefix hit(s), "
            f"{result.stages_skipped} stage execution(s) skipped"
            if args.ir_cache
            else ""
        )
        + (
            f"; {len(result.rejected)} point(s) statically rejected"
            if args.prefilter
            else ""
        )
        + (
            f"; frontier validated: "
            f"{len(result.validation_failures)} failure(s)"
            if args.validate_frontier
            else ""
        )
    )
    if args.prefilter and result.rejected:
        for record in result.rejected[:5]:
            print(
                f"  rejected {record.get('label', '?')}: "
                f"{record.get('reason')} — {record.get('detail')}"
            )
    if result.errors:
        for record in result.errors[:3]:
            first_line = str(record["error"]).strip().splitlines()[-1]
            print(f"  error at {record.get('label', '?')}: {first_line}")
    if result.validation_failures:
        for record in result.validation_failures[:5]:
            print(
                f"  semantic mismatch at {record.get('label', '?')}: "
                f"{record.get('error')}"
            )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(result.to_json())
        print(f"wrote {args.json}")

    summary = obs.cli_finish(args)
    if summary is not None:
        print(
            f"telemetry: {summary['spans']} spans, {summary['events']} events; "
            f"compile {summary['compile_seconds']:.2f}s, "
            f"simulate {summary['simulate_seconds']:.3f}s, "
            f"cache probes {summary['cache_probe_seconds']:.3f}s"
        )

    return (
        0
        if not result.errors
        and not result.validation_failures
        and result.frontier
        else 1
    )


if __name__ == "__main__":
    sys.exit(main())
