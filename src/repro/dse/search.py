"""Pluggable design-space search strategies.

Grid enumeration stops scaling once the space grows past a few thousand
points (``--space full`` already does); this module turns the exploration
engine into an *adaptive* search.  A :class:`SearchStrategy` proposes
batches of novel :class:`~repro.dse.space.DesignPoint`\\ s, the runner
evaluates each batch through the existing cache-aware machinery
(:func:`repro.dse.runner.explore` with ``strategy=...``), and the strategy
steers the next batch from the records it observed — non-dominated
membership and frontier hypervolume, never wall-clock noise, so a fixed
seed reproduces the exact same trajectory for any worker count.

Four strategies ship registered by name:

* ``exhaustive`` — the whole space in generation order (budget truncates);
* ``random`` — a seeded shuffle of the space;
* ``genetic`` — tournament selection over Pareto rank + scalarized energy,
  uniform crossover and per-axis mutation;
* ``anneal`` — per-workload simulated-annealing chains with a geometric
  cooling schedule.

Mutation and crossover cover both point representations.  Knob-driven
points resample axes from the per-axis domain metadata the space exposes
(:func:`repro.dse.space.axis_domains`), so offspring stay inside the swept
cross product.  Spec-driven points mutate *pipeline composition itself*:
:func:`mutate_spec` / :func:`crossover_specs` operate on parsed
:class:`~repro.compiler.spec.PipelineSpec` stage lists and re-print through
``Compiler.from_spec`` — every offspring round-trips the parser/printer and
comes back in canonical form (so equivalent spellings collapse onto one
QoR-cache entry).

Budget semantics: ``budget`` bounds the number of *distinct design points
evaluated* (records produced).  Cache hits cost no compile time but do
count toward the budget — that keeps cold and warm runs byte-identical,
which is the property the determinism tests pin.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, List, Optional, Sequence, Tuple, Type

from .pareto import DEFAULT_OBJECTIVES, pareto_frontier, scalarized_energies
from .space import DesignPoint, axis_domains

__all__ = [
    "SearchStrategy",
    "ExhaustiveSearch",
    "RandomSearch",
    "GeneticSearch",
    "AnnealSearch",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "make_strategy",
    "mutate_spec",
    "crossover_specs",
]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type["SearchStrategy"]] = {}


def register_strategy(cls: Type["SearchStrategy"]) -> Type["SearchStrategy"]:
    """Class decorator adding a strategy to the registry by ``name``."""
    if not cls.name:
        raise ValueError(f"strategy class {cls.__name__} declares no name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"strategy name {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def available_strategies() -> List[str]:
    return sorted(_REGISTRY)


def get_strategy(name: str) -> Type["SearchStrategy"]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown search strategy {name!r}; "
            f"options: {', '.join(available_strategies())}"
        ) from None


def make_strategy(
    name: str,
    points: Sequence[DesignPoint],
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    budget: Optional[int] = None,
    seed: int = 0,
    options: Optional[Dict] = None,
) -> "SearchStrategy":
    """Instantiate a registered strategy over a space (list of points)."""
    return get_strategy(name)(
        points, objectives=objectives, budget=budget, seed=seed, **(options or {})
    )


# ---------------------------------------------------------------------------
# Pipeline-spec mutation / crossover operators
# ---------------------------------------------------------------------------

#: Canonical stage ordering used to place inserted stages — derived from
#: the compiler's default pipeline so it cannot drift when stages are
#: added or reordered there (resolved lazily to keep imports light).
_STAGE_ORDER_CACHE: Optional[Tuple[str, ...]] = None


def _stage_order() -> Tuple[str, ...]:
    global _STAGE_ORDER_CACHE
    if _STAGE_ORDER_CACHE is None:
        from ..compiler import default_pipeline_spec

        _STAGE_ORDER_CACHE = tuple(
            stage.name for stage in default_pipeline_spec().stages
        )
    return _STAGE_ORDER_CACHE

#: The tables below are *search policy*, not compiler metadata: which
#: stages mutation may drop/insert and which option values are worth
#: exploring.  A stage added to the compiler joins the mutation move set
#: only when listed here.
#: Stages a valid pipeline cannot lose (the estimate stage is what makes a
#: run produce QoR at all; the others form the minimal lowering path).
_REQUIRED_STAGES = frozenset(
    {"construct-dataflow", "lower-structural", "parallelize", "estimate"}
)

#: Stages mutation may drop from / insert into a spec.
_OPTIONAL_STAGES: Tuple[str, ...] = (
    "fuse-tasks",
    "eliminate-multi-producers",
    "balance",
    "tile",
)

#: Integer stage options mutation may retarget, with their value domains.
_SPEC_INT_DOMAINS: Dict[Tuple[str, str], Tuple[int, ...]] = {
    ("parallelize", "factor"): (4, 8, 16, 32, 64, 128, 256),
    ("parallelize", "target-ii"): (1, 2, 3),
    ("tile", "size"): (4, 8, 16, 32),
}

#: Boolean stage options mutation may toggle (defaults are all true).
_SPEC_BOOL_OPTIONS: Tuple[Tuple[str, str], ...] = (
    ("parallelize", "ia"),
    ("parallelize", "ca"),
    ("estimate", "dataflow"),
)


def _canonical_spec_text(text: str) -> Optional[str]:
    """Round-trip a spec through the compiler; None when it is invalid."""
    from ..compiler import Compiler, PipelineSpecError

    try:
        return Compiler.from_spec(text).spec_text()
    except PipelineSpecError:
        return None


def _stage_rank(name: str, fallback: int) -> Tuple[int, int]:
    order = _stage_order()
    if name in order:
        return (order.index(name), 0)
    return (len(order), fallback)


def mutate_spec(spec_text: str, rng: random.Random) -> Optional[str]:
    """One structural mutation of a pipeline spec, in canonical form.

    Picks one applicable move — retarget an integer stage option, toggle a
    boolean one, drop an optional stage, or insert a missing optional stage
    at its canonical position — then re-prints through the parser so the
    offspring round-trips.  Returns ``None`` if the mutated spec fails to
    validate (the caller simply retries).
    """
    from ..compiler import PipelineSpecError, parse_pipeline
    from ..compiler.spec import StageSpec

    try:
        spec = parse_pipeline(spec_text)
    except PipelineSpecError:
        return None
    names = [stage.name for stage in spec.stages]
    moves: List[Tuple] = []
    for (stage_name, option), domain in sorted(_SPEC_INT_DOMAINS.items()):
        if stage_name in names:
            moves.append(("int", stage_name, option, domain))
    for stage_name, option in _SPEC_BOOL_OPTIONS:
        if stage_name in names:
            moves.append(("bool", stage_name, option, None))
    for stage_name in _OPTIONAL_STAGES:
        kind = "drop" if stage_name in names else "insert"
        moves.append((kind, stage_name, None, None))
    if not moves:
        return None
    kind, stage_name, option, domain = moves[rng.randrange(len(moves))]
    if kind == "int":
        stage = next(s for s in spec.stages if s.name == stage_name)
        current = stage.options.get(option, [""])[0]
        candidates = [value for value in domain if str(value) != current]
        stage.options[option] = [str(rng.choice(candidates))]
    elif kind == "bool":
        stage = next(s for s in spec.stages if s.name == stage_name)
        current = stage.options.get(option, ["1"])[0].lower()
        stage.options[option] = ["0" if current in ("1", "true", "yes") else "1"]
    elif kind == "drop":
        spec.stages = [s for s in spec.stages if s.name != stage_name]
    else:  # insert
        rank = _stage_rank(stage_name, 0)
        position = len(spec.stages)
        for index, stage in enumerate(spec.stages):
            if _stage_rank(stage.name, index) > rank:
                position = index
                break
        spec.stages.insert(position, StageSpec(name=stage_name))
    return _canonical_spec_text(spec.print())


def crossover_specs(
    a_text: str, b_text: str, rng: random.Random
) -> Optional[str]:
    """Uniform stage-wise crossover of two pipeline specs (canonical form).

    Stages present in both parents merge option-by-option (each option
    value drawn from either parent); stages present in one parent are
    inherited with probability ½ unless required.  The child re-prints
    through the parser/printer, so it always round-trips.
    """
    from ..compiler import PipelineSpecError, parse_pipeline
    from ..compiler.spec import PipelineSpec, StageSpec

    try:
        parsed_a = parse_pipeline(a_text)
        parsed_b = parse_pipeline(b_text)
    except PipelineSpecError:
        return None
    by_name_a: Dict[str, StageSpec] = {}
    by_name_b: Dict[str, StageSpec] = {}
    for stage in parsed_a.stages:
        by_name_a.setdefault(stage.name, stage)
    for stage in parsed_b.stages:
        by_name_b.setdefault(stage.name, stage)
    union: List[str] = []
    for stage in list(parsed_a.stages) + list(parsed_b.stages):
        if stage.name not in union:
            union.append(stage.name)
    ranks = {name: _stage_rank(name, index) for index, name in enumerate(union)}
    union.sort(key=lambda name: ranks[name])
    child_stages: List[StageSpec] = []
    for name in union:
        in_a, in_b = name in by_name_a, name in by_name_b
        if in_a and in_b:
            options: Dict[str, List[str]] = {}
            keys = sorted(set(by_name_a[name].options) | set(by_name_b[name].options))
            for key in keys:
                pick_a = rng.random() < 0.5
                source = by_name_a[name] if pick_a else by_name_b[name]
                other = by_name_b[name] if pick_a else by_name_a[name]
                tokens = source.options.get(key, other.options.get(key))
                if tokens:
                    options[key] = list(tokens)
            child_stages.append(StageSpec(name=name, options=options))
            continue
        parent = by_name_a.get(name) or by_name_b[name]
        if name in _REQUIRED_STAGES or rng.random() < 0.5:
            child_stages.append(
                StageSpec(
                    name=name,
                    options={k: list(v) for k, v in parent.options.items()},
                )
            )
    return _canonical_spec_text(PipelineSpec(child_stages).print())


# ---------------------------------------------------------------------------
# Strategy base class
# ---------------------------------------------------------------------------


def _point_group(point: DesignPoint) -> Tuple:
    """Identity axes a search never mutates; operators stay within a group."""
    return (
        point.workload_kind,
        point.workload,
        point.batch,
        tuple(point.workload_params),
        point.platform,
    )


class SearchStrategy:
    """Base class of the ask/tell search loop.

    The runner repeatedly calls :meth:`propose` for a batch of *novel*
    points (never previously proposed or evaluated), evaluates them, and
    feeds the resulting records back through :meth:`observe`.  An empty
    proposal ends the search; the runner separately enforces the
    evaluation budget.  All randomness flows through one seeded
    ``random.Random``, and every decision depends only on QoR summaries
    (never timings or cache state), so fixed-seed runs are deterministic
    for any worker count and cache temperature.
    """

    name: str = ""
    #: Recognized constructor options and their defaults.
    defaults: Dict[str, object] = {"generations": None}

    def __init__(
        self,
        points: Sequence[DesignPoint],
        objectives: Sequence[str] = DEFAULT_OBJECTIVES,
        budget: Optional[int] = None,
        seed: int = 0,
        **options,
    ) -> None:
        self.points: List[DesignPoint] = []
        self._by_key: Dict[str, DesignPoint] = {}
        for point in points:
            key = point.key()
            if key not in self._by_key:
                self._by_key[key] = point
                self.points.append(point)
        if not self.points:
            raise ValueError("search needs a non-empty design space")
        self.objectives = tuple(objectives)
        self.budget = len(self.points) if budget is None else int(budget)
        if self.budget <= 0:
            raise ValueError(f"budget must be positive (got {self.budget})")
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        unknown = sorted(set(options) - set(self.defaults))
        if unknown:
            raise ValueError(
                f"strategy {self.name!r} has no option(s) "
                f"{', '.join(map(repr, unknown))}; "
                f"known options: {', '.join(sorted(self.defaults))}"
            )
        for key, default in self.defaults.items():
            setattr(self, key, options.get(key, default))
        self.records: List[Dict] = []
        self.seen: set = set()
        self._record_by_key: Dict[str, Dict] = {}
        self._generation = 0
        self.domains = axis_domains(self.points)
        #: point key -> canonical pipeline-spec text (specs are immutable
        #: per point, so the compiler round-trip is paid once per point).
        self._canonical_specs: Dict[str, Optional[str]] = {}

    def _canonical_point_spec(self, key: str, point: DesignPoint) -> Optional[str]:
        if key not in self._canonical_specs:
            self._canonical_specs[key] = (
                None
                if point.pipeline_spec is None
                else _canonical_spec_text(point.pipeline_spec)
            )
        return self._canonical_specs[key]

    # ------------------------------------------------------------- ask/tell
    def propose(self, limit: int) -> List[DesignPoint]:
        """Up to ``limit`` novel points to evaluate next ([] = done)."""
        if limit <= 0:
            return []
        generations = getattr(self, "generations", None)
        if generations is not None and self._generation >= int(generations):
            return []
        return self._propose(limit)

    def _propose(self, limit: int) -> List[DesignPoint]:
        raise NotImplementedError

    def observe(self, records: Sequence[Dict], *, refinement: bool = False) -> None:
        """Feed one evaluated batch back; called once per proposal.

        With ``refinement`` the records are higher-fidelity re-evaluations
        of already-observed points (see :mod:`repro.dse.fidelity`): each one
        replaces the point's existing record in place — subsequent
        proposals steer on the best-available fidelity — and no search
        generation elapses.
        """
        if refinement:
            for record in records:
                self._refine_record(record)
            return
        for record in records:
            self.records.append(record)
            key = record.get("point_key")
            if key:
                self.seen.add(key)
                self._record_by_key[key] = record
        self._generation += 1

    def tell(self, records: Sequence[Dict], *, refinement: bool = False) -> None:
        """Ask/tell alias of :meth:`observe` (``propose`` is the ask)."""
        self.observe(records, refinement=refinement)

    def _refine_record(self, record: Dict) -> None:
        """Swap a point's record for a higher-fidelity re-evaluation."""
        key = record.get("point_key")
        previous = self._record_by_key.get(key) if key else None
        if previous is None:
            # A refinement for a point this strategy never proposed (e.g.
            # replayed from an archive): treat it as a plain observation,
            # without consuming a generation.
            self.records.append(record)
            if key:
                self.seen.add(key)
                self._record_by_key[key] = record
            return
        if "error" in record and "error" not in previous:
            return  # a failed re-evaluation never hides a scored record
        for index, existing in enumerate(self.records):
            if existing is previous:
                self.records[index] = record
                break
        self._record_by_key[key] = record

    # -------------------------------------------------------------- helpers
    def _register(self, point: DesignPoint) -> str:
        key = point.key()
        self._by_key.setdefault(key, point)
        return key

    def _group_of_record(self, record: Dict) -> Tuple:
        point = self._by_key.get(record.get("point_key"))
        if point is None:
            point = DesignPoint.from_dict(record["point"])
        return _point_group(point)

    def _scored_by_group(self) -> Dict[Tuple, List[Dict]]:
        groups: Dict[Tuple, List[Dict]] = {}
        for record in self.records:
            if "error" in record:
                continue
            groups.setdefault(self._group_of_record(record), []).append(record)
        return groups

    def _energies(self, records: Sequence[Dict]) -> List[float]:
        """Scalarized energy per record (see :func:`scalarized_energies`)."""
        return scalarized_energies(records, self.objectives)

    def _mutate_point(self, point: DesignPoint) -> Optional[DesignPoint]:
        """One-axis neighbor of a point (spec points mutate their spec)."""
        if point.pipeline_spec is not None:
            mutated = mutate_spec(point.pipeline_spec, self.rng)
            if mutated is None or mutated == point.pipeline_spec:
                return None
            return dataclasses.replace(point, pipeline_spec=mutated)
        axes = sorted(
            axis for axis, domain in self.domains.items() if len(domain) > 1
        )
        if not axes:
            return None
        axis = axes[self.rng.randrange(len(axes))]
        current = getattr(point, axis)
        candidates = [value for value in self.domains[axis] if value != current]
        if not candidates:
            return None
        return dataclasses.replace(point, **{axis: self.rng.choice(candidates)})

    def _unseen_space_order(self) -> List[DesignPoint]:
        """A stable seeded shuffle of the space for fallback top-ups."""
        order = list(self.points)
        random.Random(self.seed + 1).shuffle(order)
        return order


# ---------------------------------------------------------------------------
# Exhaustive / random baselines
# ---------------------------------------------------------------------------


@register_strategy
class ExhaustiveSearch(SearchStrategy):
    """The whole space in generation order; the budget simply truncates."""

    name = "exhaustive"
    defaults = dict(SearchStrategy.defaults)

    def _propose(self, limit: int) -> List[DesignPoint]:
        batch = []
        for point in self.points:
            if len(batch) >= limit:
                break
            if point.key() in self.seen:
                continue
            batch.append(point)
        return batch


@register_strategy
class RandomSearch(SearchStrategy):
    """A seeded shuffle of the space, evaluated until the budget runs out."""

    name = "random"
    defaults = dict(SearchStrategy.defaults)

    def __init__(self, points, **kwargs) -> None:
        super().__init__(points, **kwargs)
        self._order = list(self.points)
        self.rng.shuffle(self._order)

    def _propose(self, limit: int) -> List[DesignPoint]:
        batch = []
        for point in self._order:
            if len(batch) >= limit:
                break
            if point.key() in self.seen:
                continue
            batch.append(point)
        return batch


# ---------------------------------------------------------------------------
# Genetic search
# ---------------------------------------------------------------------------


@register_strategy
class GeneticSearch(SearchStrategy):
    """Tournament-selected genetic search over knobs and pipeline specs.

    Generation 0 is a seeded sample of the space.  Afterwards, parents are
    tournament-selected per workload group — non-dominated records first,
    scalarized energy as the tiebreak — and offspring come from uniform
    crossover plus per-axis mutation (``mutation_rate``).  When the
    operators stall (neighborhood exhausted), the batch tops up with
    not-yet-evaluated space points so the budget is always usable.
    """

    name = "genetic"
    defaults = {
        **SearchStrategy.defaults,
        "population": 8,
        "mutation_rate": 0.25,
        "tournament": 2,
    }

    def __init__(self, points, **kwargs) -> None:
        super().__init__(points, **kwargs)
        if int(self.population) < 1:
            raise ValueError(f"population must be >= 1 (got {self.population})")
        if not 0.0 <= float(self.mutation_rate) <= 1.0:
            raise ValueError(
                f"mutation_rate must be in [0, 1] (got {self.mutation_rate})"
            )

    def _propose(self, limit: int) -> List[DesignPoint]:
        count = min(int(self.population), limit)
        batch: List[DesignPoint] = []
        batch_keys: set = set()

        def take(point: DesignPoint) -> None:
            key = self._register(point)
            if key not in self.seen and key not in batch_keys:
                batch_keys.add(key)
                batch.append(point)

        if not self.records:
            order = list(self.points)
            self.rng.shuffle(order)
            for point in order:
                if len(batch) >= count:
                    break
                take(point)
            return batch

        groups = self._scored_by_group()
        group_names = sorted(groups)
        # Records are frozen while proposing, so pre-compute each group's
        # frontier membership and energies once instead of per tournament.
        fitness_context = {
            group: (
                {
                    r.get("point_key")
                    for r in pareto_frontier(groups[group], self.objectives)
                },
                self._energies(groups[group]),
            )
            for group in group_names
        }
        attempts, max_attempts = 0, 30 * count + 30
        while group_names and len(batch) < count and attempts < max_attempts:
            attempts += 1
            group = group_names[self.rng.randrange(len(group_names))]
            records = groups[group]
            frontier_keys, energies = fitness_context[group]
            first = self._tournament(records, frontier_keys, energies)
            second = self._tournament(records, frontier_keys, energies)
            child = self._offspring(first, second)
            if child is not None:
                take(child)
        if len(batch) < count:
            for point in self._unseen_space_order():
                if len(batch) >= count:
                    break
                take(point)
        return batch

    def _tournament(
        self,
        records: Sequence[Dict],
        frontier_keys: set,
        energies: Sequence[float],
    ) -> Dict:
        best = None
        for _ in range(max(1, int(self.tournament))):
            index = self.rng.randrange(len(records))
            rank = 0 if records[index].get("point_key") in frontier_keys else 1
            fitness = (rank, energies[index], index)
            if best is None or fitness < best[0]:
                best = (fitness, records[index])
        return best[1]

    def _offspring(self, first: Dict, second: Dict) -> Optional[DesignPoint]:
        parent_a = self._by_key.get(first.get("point_key"))
        parent_b = self._by_key.get(second.get("point_key"))
        if parent_a is None or parent_b is None:
            return None
        if parent_a.pipeline_spec is not None and parent_b.pipeline_spec is not None:
            # Work from canonical parent forms: offspring come back
            # canonical, so comparing against a raw parent spelling would
            # let a same-design child masquerade as novel and burn budget.
            spec_a = self._canonical_point_spec(first.get("point_key"), parent_a)
            spec_b = self._canonical_point_spec(second.get("point_key"), parent_b)
            if spec_a is None or spec_b is None:
                return None
            child_spec = crossover_specs(spec_a, spec_b, self.rng)
            if child_spec is None:
                return None
            if self.rng.random() < float(self.mutation_rate):
                mutated = mutate_spec(child_spec, self.rng)
                if mutated is not None:
                    child_spec = mutated
            if child_spec == spec_a or child_spec == spec_b:
                # Crossover collapsed onto a parent; force one mutation.
                mutated = mutate_spec(child_spec, self.rng)
                if mutated is None:
                    return None
                child_spec = mutated
            return dataclasses.replace(parent_a, pipeline_spec=child_spec)
        if parent_a.pipeline_spec is not None or parent_b.pipeline_spec is not None:
            # Mixed representations cannot crossover; mutate parent A.
            return self._mutate_point(parent_a)
        values = {}
        for axis in DesignPoint.KNOB_AXES:
            source = parent_a if self.rng.random() < 0.5 else parent_b
            values[axis] = getattr(source, axis)
        for axis, domain in sorted(self.domains.items()):
            if len(domain) > 1 and self.rng.random() < float(self.mutation_rate):
                candidates = [v for v in domain if v != values[axis]]
                values[axis] = self.rng.choice(candidates)
        return dataclasses.replace(parent_a, **values)


# ---------------------------------------------------------------------------
# Simulated annealing
# ---------------------------------------------------------------------------


@register_strategy
class AnnealSearch(SearchStrategy):
    """Per-workload simulated-annealing chains with geometric cooling.

    Each identity group (workload × platform) runs ``chains`` independent
    chains.  Every generation each chain proposes a one-axis neighbor of
    its current point (spec points mutate their pipeline spec); moves are
    accepted by the Metropolis rule on scalarized energy at the current
    temperature, which cools by ``cooling`` after every generation.
    Already-evaluated neighbors are skipped (novel proposals only), making
    the walk tabu-flavored and the budget exact.
    """

    name = "anneal"
    defaults = {
        **SearchStrategy.defaults,
        "chains": 2,
        "temperature": 1.0,
        "cooling": 0.9,
    }

    def __init__(self, points, **kwargs) -> None:
        super().__init__(points, **kwargs)
        self._chain_state: Optional[List[Dict]] = None
        self._temp = float(self.temperature)

    def _propose(self, limit: int) -> List[DesignPoint]:
        batch: List[DesignPoint] = []
        batch_keys: set = set()
        if self._chain_state is None:
            self._chain_state = []
            groups: Dict[Tuple, List[DesignPoint]] = {}
            for point in self.points:
                groups.setdefault(_point_group(point), []).append(point)
            for group in sorted(groups):
                members = list(groups[group])
                self.rng.shuffle(members)
                picked = 0
                for point in members:
                    if picked >= int(self.chains) or len(batch) >= limit:
                        break
                    key = point.key()
                    if key in self.seen or key in batch_keys:
                        continue
                    batch_keys.add(key)
                    batch.append(point)
                    self._chain_state.append(
                        {"group": group, "current": None, "proposed": key}
                    )
                    picked += 1
            return batch
        for chain in self._chain_state:
            if len(batch) >= limit:
                break
            proposal = self._chain_proposal(chain, batch_keys)
            if proposal is None:
                continue
            key = self._register(proposal)
            batch_keys.add(key)
            batch.append(proposal)
            chain["proposed"] = key
        return batch

    def _chain_proposal(
        self, chain: Dict, batch_keys: set
    ) -> Optional[DesignPoint]:
        current_key = chain.get("current")
        if current_key is None:
            # The chain never landed (seed point errored): restart it on a
            # fresh unexplored point of its group.
            for point in self._unseen_space_order():
                key = point.key()
                if _point_group(point) != chain["group"]:
                    continue
                if key in self.seen or key in batch_keys:
                    continue
                return point
            return None
        current = self._by_key[current_key]
        for _ in range(24):
            neighbor = self._mutate_point(current)
            if neighbor is None:
                return None
            key = neighbor.key()
            if key in self.seen or key in batch_keys:
                continue
            return neighbor
        return None

    def observe(self, records: Sequence[Dict], *, refinement: bool = False) -> None:
        super().observe(records, refinement=refinement)
        if refinement:
            # Replaced records re-enter the energy landscape on the next
            # generation; chain positions are unaffected by a re-score.
            return
        groups = self._scored_by_group()
        for chain in self._chain_state or []:
            proposed = chain.pop("proposed", None)
            if proposed is None:
                continue
            record = self._record_by_key.get(proposed)
            if record is None or "error" in record:
                continue
            if chain["current"] is None:
                chain["current"] = proposed
                continue
            group_records = groups.get(chain["group"], [])
            energies = self._energies(group_records)
            by_key = {
                r.get("point_key"): e for r, e in zip(group_records, energies)
            }
            energy_new = by_key.get(proposed, float("inf"))
            energy_cur = by_key.get(chain["current"], float("inf"))
            if energy_new <= energy_cur:
                chain["current"] = proposed
                continue
            scale = max(self._temp, 1e-9)
            if self.rng.random() < math.exp(-(energy_new - energy_cur) / scale):
                chain["current"] = proposed
        self._temp *= float(self.cooling)
