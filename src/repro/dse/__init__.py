"""repro.dse — parallel design-space exploration with QoR caching.

The paper's value proposition is picking good dataflow and parallelization
configurations out of an enormous space; this package turns the single-shot
pipeline into that search engine:

* :mod:`repro.dse.space` — design points and preset design spaces;
* :mod:`repro.dse.cache` — persistent content-hash QoR cache;
* :mod:`repro.dse.runner` — process-parallel exploration driver;
* :mod:`repro.dse.pareto` — Pareto frontier + hypervolume over QoR records;
* :mod:`repro.dse.search` — pluggable adaptive search strategies
  (exhaustive / random / genetic / anneal over knob axes *and* pipeline
  composition);
* :mod:`repro.dse.fidelity` — multi-fidelity QoR levels (analytic
  estimate vs dataflow simulation) with promotion racing;
* ``python -m repro.dse`` — the command-line sweep driver.
"""

from .cache import QoRCache, default_cache_dir
from .fidelity import (
    DEFAULT_FIDELITY,
    DEFAULT_PROMOTE_TOP,
    FidelityLevel,
    PromotionPolicy,
    available_fidelities,
    best_fidelity_records,
    fidelity_rank,
    get_fidelity,
    register_fidelity,
)
from .pareto import (
    DEFAULT_OBJECTIVES,
    OBJECTIVE_DIRECTIONS,
    hypervolume,
    hypervolume_reference,
    objective_direction,
    objective_vector,
    pareto_frontier,
)
from .runner import evaluate_point, explore
from .search import (
    AnnealSearch,
    ExhaustiveSearch,
    GeneticSearch,
    RandomSearch,
    SearchStrategy,
    available_strategies,
    crossover_specs,
    get_strategy,
    make_strategy,
    mutate_spec,
    register_strategy,
)
from .space import (
    SPACE_PRESETS,
    DesignPoint,
    DesignSpace,
    axis_domains,
    build_space,
    dnn_suite,
    polybench_suite,
)

__all__ = [
    "QoRCache",
    "default_cache_dir",
    "DEFAULT_FIDELITY",
    "DEFAULT_PROMOTE_TOP",
    "FidelityLevel",
    "PromotionPolicy",
    "available_fidelities",
    "best_fidelity_records",
    "fidelity_rank",
    "get_fidelity",
    "register_fidelity",
    "DEFAULT_OBJECTIVES",
    "OBJECTIVE_DIRECTIONS",
    "hypervolume",
    "hypervolume_reference",
    "objective_direction",
    "objective_vector",
    "pareto_frontier",
    "evaluate_point",
    "explore",
    "AnnealSearch",
    "ExhaustiveSearch",
    "GeneticSearch",
    "RandomSearch",
    "SearchStrategy",
    "available_strategies",
    "crossover_specs",
    "get_strategy",
    "make_strategy",
    "mutate_spec",
    "register_strategy",
    "SPACE_PRESETS",
    "DesignPoint",
    "DesignSpace",
    "axis_domains",
    "build_space",
    "dnn_suite",
    "polybench_suite",
]
